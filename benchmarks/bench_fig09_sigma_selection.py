"""Fig. 9 — TRS variance in the control set as a function of σ.

The paper's curve: decreasing to a minimum (an optimal σ), then rising
again as overfitting sets in; a good σ achieves variance < 2e-5 on their
collections.  We regenerate the sweep for a frequent term of the
StudIP-like collection, assert the U-shape, and additionally benchmark the
paper's "future work" direct σ estimator (DESIGN.md §6 ablation) against
the cross-validated optimum.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_series
from repro.core.scoring import extract_term_scores
from repro.core.sigma import (
    default_sigma_grid,
    heuristic_sigma,
    select_sigma,
    trs_variance_for_sigma,
)
from repro.stats.crossval import train_control_split


def _train_control(collection):
    """The paper's split: 30% training sample, 1/3 of it as control."""
    rng = np.random.default_rng(17)
    sample = collection.corpus.sample(0.30, rng)
    term_scores = extract_term_scores(
        collection.corpus.stats(d.doc_id) for d in sample
    )
    term = max(term_scores, key=lambda t: len(term_scores[t]))
    train, control = train_control_split(
        term_scores[term], control_fraction=1 / 3, rng=rng
    )
    return term, train, control


def test_fig09_sigma_sweep_u_shape(benchmark, studip):
    term, train, control = _train_control(studip)
    grid = default_sigma_grid(minimum=0.5, maximum=1e6, points=27)

    def measure():
        return select_sigma(train, control, grid=grid)

    selection = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [
        [f"{s:.2f}", f"{v:.3e}"]
        for s, v in zip(selection.sigmas, selection.variances)
    ]
    print_series(
        f"Fig. 9: TRS variance vs sigma (term {term!r}, "
        f"{len(train)} train / {len(control)} control scores)",
        ["sigma", "variance"],
        rows,
    )
    print_series(
        "Fig. 9: optimum",
        ["best sigma", "best variance"],
        [[f"{selection.best_sigma:.2f}", f"{selection.best_variance:.3e}"]],
    )

    # Shape: interior minimum with both extremes clearly worse.  (Strict
    # point-wise monotonicity is too brittle on the overfitting plateau,
    # where the staircase RSTF makes the variance fluctuate slightly.)
    assert 0 < selection.best_index < len(selection.sigmas) - 1
    assert selection.variances[0] > 10 * selection.best_variance
    assert selection.variances[-1] > 1.5 * selection.best_variance
    # Scale: the optimum variance is in the small-variance regime (paper:
    # < 2e-5 at their corpus scale; our control sets are far smaller and
    # hence noisier — assert < 2e-3).
    assert selection.best_variance < 2e-3


def test_fig09_direct_sigma_estimator_ablation(benchmark, studip):
    """DESIGN.md §6: the spacing heuristic lands near the CV optimum."""
    term, train, control = _train_control(studip)

    def measure():
        return heuristic_sigma(train)

    direct = benchmark.pedantic(measure, rounds=1, iterations=1)
    selection = select_sigma(train, control)
    v_direct = trs_variance_for_sigma(train, control, direct)

    print_series(
        "Fig. 9 ablation: direct estimator vs cross-validation",
        ["method", "sigma", "control variance"],
        [
            ["cross-validation", f"{selection.best_sigma:.2f}", f"{selection.best_variance:.3e}"],
            ["direct (spacing)", f"{direct:.2f}", f"{v_direct:.3e}"],
        ],
    )
    # The direct estimate must stay within an order of magnitude of the CV
    # optimum's quality — good enough to skip CV when training is costly.
    assert v_direct < 10 * selection.best_variance + 1e-6


def test_fig09_erf_vs_logistic_kind(benchmark, studip):
    """DESIGN.md §6: Eq. 8's logistic vs. the exact erf integral."""
    term, train, control = _train_control(studip)
    grid = default_sigma_grid(minimum=0.5, maximum=1e6, points=15)

    def measure():
        return {
            kind: select_sigma(train, control, grid=grid, kind=kind)
            for kind in ("logistic", "erf")
        }

    selections = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_series(
        "Fig. 9 ablation: curve family",
        ["kind", "best sigma", "best variance"],
        [
            [kind, f"{sel.best_sigma:.2f}", f"{sel.best_variance:.3e}"]
            for kind, sel in selections.items()
        ],
    )
    # Both families uniformise comparably (within 5x of each other).
    v_log = selections["logistic"].best_variance
    v_erf = selections["erf"].best_variance
    assert v_log < 5 * v_erf + 1e-6
    assert v_erf < 5 * v_log + 1e-6
