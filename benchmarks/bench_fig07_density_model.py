"""Fig. 7 — probability density accumulated from 5 training values.

The paper plots five Gaussian bells (one per training score) and their
sum: the accumulated curve must peak where training points cluster and
integrate to 1.  This bench regenerates that curve and asserts its
analytic properties.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_series
from repro.stats.gaussian import gaussian_pdf, gaussian_sum_pdf

TRAINING_VALUES = [0.10, 0.15, 0.22, 0.45, 0.50]
SIGMA = 25.0  # steepness (paper convention): bell width 1/25 = 0.04


def test_fig07_gaussian_sum_density(benchmark):
    grid = np.linspace(0.0, 0.7, 701)

    def measure():
        return gaussian_sum_pdf(grid, TRAINING_VALUES, SIGMA)

    density = benchmark.pedantic(measure, rounds=1, iterations=1)

    sample_rows = [
        [f"{x:.2f}", f"{d:.3f}"] for x, d in zip(grid[::100], density[::100])
    ]
    print_series("Fig. 7: accumulated density (samples)", ["rscore", "density"], sample_rows)

    # The sum is the mean of the individual bells.
    individual = np.stack(
        [gaussian_pdf(grid, mu=m, sigma=SIGMA) for m in TRAINING_VALUES]
    )
    assert np.allclose(density, individual.mean(axis=0))

    # Integrates to ~1 over a wide-enough window (probability density).
    mass = np.trapezoid(density, grid)
    print_series("Fig. 7: checks", ["metric", "value"], [["integral", f"{mass:.4f}"]])
    assert abs(mass - 1.0) < 0.02

    # Peaks where training points cluster: density in the 0.10-0.22 cluster
    # exceeds density in the empty 0.30-0.40 gap.
    cluster = density[(grid >= 0.10) & (grid <= 0.22)].mean()
    gap = density[(grid >= 0.30) & (grid <= 0.40)].mean()
    assert cluster > 2 * gap

    # The two-point cluster at 0.45/0.50 creates a secondary mode.
    second = density[(grid >= 0.44) & (grid <= 0.51)].mean()
    assert second > gap
