"""§6.2 — security guarantees, measured.

Three experiments matching the paper's security argument:

1. *Score-distribution attack* (threat 1): identify terms from
   server-visible scores.  Run against plain normalized-TF scores (what an
   ordinary/OPS index exposes) and against Zerber+R's TRS — accuracy must
   collapse from far-above-chance to ≈chance.
2. *Query-observation attack* (threat 2): infer the queried term from the
   follow-up request count.  Under BFM merging the identification rate
   stays near blind guessing; the greedy head+tail merge (ablation) leaks.
3. *TRS uniformity*: per-term TRS samples are indistinguishable from
   Uniform[0,1] — the RSTF's operating requirement.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_series
from repro import SystemConfig, ZerberRSystem
from repro.attacks.background import BackgroundKnowledge
from repro.attacks.query_observation import QueryObservationAttack
from repro.attacks.score_distribution import identification_accuracy
from repro.core.protocol import ResponsePolicy
from repro.core.scoring import extract_term_scores
from repro.stats.uniformness import ks_distance_to_uniform

N_TARGET_TERMS = 30
MIN_SAMPLES = 30


def _target_terms(collection):
    """Terms with enough occurrences to expose a distribution."""
    ordered = collection.vocabulary.terms_by_frequency()
    terms = [
        t
        for t in ordered
        if collection.vocabulary.document_frequency(t) >= MIN_SAMPLES
        and t in collection.system.rstf_model
    ]
    return terms[:N_TARGET_TERMS]


def test_sec62_score_distribution_attack(benchmark, studip):
    terms = _target_terms(studip)
    assert len(terms) >= 10
    term_scores = extract_term_scores(studip.corpus.all_stats())
    background = BackgroundKnowledge.from_documents(studip.corpus.all_stats())

    plain = {t: term_scores[t] for t in terms}
    model = studip.system.rstf_model
    transformed = {
        t: model.get(t).transform(np.asarray(term_scores[t])).tolist() for t in terms
    }

    def measure():
        return (
            identification_accuracy(plain, background),
            identification_accuracy(transformed, background),
        )

    acc_plain, acc_trs = benchmark.pedantic(measure, rounds=1, iterations=1)
    chance = 1.0 / len(terms)
    print_series(
        "§6.2: term identification from stored scores",
        ["index surface", "attack accuracy", "chance level"],
        [
            ["plain normalized TF", f"{acc_plain:.2f}", f"{chance:.3f}"],
            ["Zerber+R TRS", f"{acc_trs:.2f}", f"{chance:.3f}"],
        ],
    )
    # Plain scores are fully identifying (adversary has the exact corpus
    # statistics); TRS must drop near chance.
    assert acc_plain > 10 * chance
    assert acc_trs < acc_plain / 3
    assert acc_trs < 0.35


def test_sec62_query_observation_attack(benchmark, studip):
    policy = ResponsePolicy(initial_size=10)
    dfs = {t: studip.vocabulary.document_frequency(t) for t in studip.vocabulary}
    attack = QueryObservationAttack(dfs)

    def leak_stats(plan):
        leaks = [
            attack.list_leakage(list(g), 10, policy)
            for g in plan.groups
            if len(g) >= 2
        ]
        return float(np.mean(leaks)), float(np.mean([l == 0 for l in leaks]))

    greedy_system = ZerberRSystem.build(
        studip.corpus, SystemConfig(r=4.0, merge_scheme="greedy", seed=3)
    )

    def measure():
        return leak_stats(studip.system.merge_plan), leak_stats(
            greedy_system.merge_plan
        )

    (bfm_mean, bfm_zero), (greedy_mean, greedy_zero) = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    print_series(
        "§6.2: follow-up-count leakage by merge scheme (k=10, b=10)",
        ["scheme", "mean request-count spread", "share of leak-free lists"],
        [
            ["BFM (paper)", f"{bfm_mean:.2f}", f"{bfm_zero:.1%}"],
            ["greedy head+tail (ablation)", f"{greedy_mean:.2f}", f"{greedy_zero:.1%}"],
        ],
    )
    # BFM's whole point (§6.2): within-list request counts align.
    assert bfm_mean < greedy_mean
    assert bfm_zero > greedy_zero


def test_sec62_trs_uniformity(benchmark, studip):
    terms = _target_terms(studip)
    term_scores = extract_term_scores(studip.corpus.all_stats())
    model = studip.system.rstf_model

    def measure():
        distances = {}
        for t in terms:
            trs = model.get(t).transform(np.asarray(term_scores[t]))
            distances[t] = ks_distance_to_uniform(trs)
        return distances

    distances = benchmark.pedantic(measure, rounds=1, iterations=1)
    values = np.array(list(distances.values()))
    print_series(
        "§6.2: per-term TRS distance to Uniform[0,1]",
        ["statistic", "value"],
        [
            ["median KS distance", f"{np.median(values):.3f}"],
            ["max KS distance", f"{values.max():.3f}"],
            ["terms measured", len(values)],
        ],
    )
    # Typical KS for genuinely uniform samples of size 30-300 is ~0.1-0.2.
    assert float(np.median(values)) < 0.2
    assert float(values.max()) < 0.45
