"""Fetch-path microbenchmark: batched fetches + incremental readable views.

Two claims, both load-bearing for the ROADMAP's throughput goal:

1. **Batching** — a multi-term query served through
   ``ZerberRClient.query_multi_batched`` issues one server call per
   lockstep round (``max`` of the per-term round counts) instead of one
   per term per round (``sum``), with identical results and bytes.
2. **Incremental views** — a mixed insert/fetch workload no longer pays
   a full membership-filtered readable-view rebuild after every
   mutation: the ``ReadableViewIndex`` patches cached views in place
   (bisect + splice), which the server's operation counters (and a
   wall-clock comparison against forced rebuilds) demonstrate.

Standalone script (not collected by pytest):

    PYTHONPATH=src python benchmarks/bench_fetch_path.py [--quick]

``--quick`` runs a seconds-scale configuration for CI smoke checks.
Exits non-zero if either claim fails.
"""

from __future__ import annotations

import argparse
import time

from repro import SystemConfig, ZerberRSystem
from repro.core.protocol import FetchRequest
from repro.corpus import studip_like, tiny_corpus
from repro.index.postings import EncryptedPostingElement


def build_system(quick: bool) -> ZerberRSystem:
    if quick:
        corpus = tiny_corpus(seed=3)
    else:
        corpus = studip_like(num_documents=200, vocabulary_size=3000, seed=7)
    return ZerberRSystem.build(corpus, SystemConfig(r=4.0, seed=41))


def sample_queries(
    system: ZerberRSystem, num_queries: int, terms_per_query: int
) -> list[list[str]]:
    """Multi-term queries over indexed terms, preferring distinct lists."""
    by_df = [
        t
        for t in system.vocabulary.terms_by_frequency()
        if system.vocabulary.document_frequency(t) >= 2
    ]
    queries: list[list[str]] = []
    stride = max(1, len(by_df) // max(1, num_queries * terms_per_query))
    pool = by_df[::stride] + by_df
    cursor = 0
    for _ in range(num_queries):
        query: list[str] = []
        used_lists: set[int] = set()
        while len(query) < terms_per_query and cursor < len(pool):
            term = pool[cursor]
            cursor += 1
            list_id = system.merge_plan.list_of(term)
            if list_id in used_lists or term in query:
                continue
            used_lists.add(list_id)
            query.append(term)
        if len(query) == terms_per_query:
            queries.append(query)
    return queries


def measure_batching(system: ZerberRSystem, queries: list[list[str]], k: int):
    """Compare server calls: per-term sequential vs batched lockstep."""
    client = system.client_for("superuser")
    sequential_calls = 0
    batched_calls = 0
    for query in queries:
        seq_ranked = {}
        for term in query:
            result = client.query(term, k)
            sequential_calls += result.trace.num_requests
            for hit in result.hits:
                seq_ranked[hit.doc_id] = seq_ranked.get(hit.doc_id, 0.0) + hit.rscore
        batched = client.query_multi_batched(query, k)
        batched_calls += batched.batch_trace.num_rounds
        expected = sorted(seq_ranked.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
        assert list(batched.ranked) == expected, (
            "batched ranking diverged from sequential",
            query,
        )
    return sequential_calls, batched_calls


def measure_views(system: ZerberRSystem, mutations: int):
    """Interleave inserts and fetches; count rebuilds vs incremental patches.

    Also times the same workload with views force-invalidated before every
    fetch — the seed's rebuild-per-mutation behaviour — for a wall-clock
    ratio.
    """
    server = system.server
    # The longest list amplifies the O(list) rebuild cost.
    list_id = max(range(server.num_lists), key=server.list_length)
    merged = server._lists[list_id]
    template = merged.elements[0]
    group = template.group
    # Snapshot so both timed runs start from the identical list state
    # (otherwise the second run pays for the first run's inserts).
    saved_elements = list(merged.elements)
    saved_keys = list(merged._neg_trs_keys)

    def restore_list() -> None:
        merged.elements[:] = saved_elements
        merged._neg_trs_keys[:] = saved_keys
        merged.version += 1
        server._views.invalidate_list(list_id)

    def workload(invalidate: bool) -> float:
        started = time.perf_counter()
        for i in range(mutations):
            trs = (i % 997) / 997.0
            element = EncryptedPostingElement(
                ciphertext=f"bench-{invalidate}-{i}".encode(),
                group=group,
                trs=trs,
            )
            server.insert("superuser", list_id, element)
            if invalidate:
                server._views.invalidate_list(list_id)
            server.fetch(
                FetchRequest(
                    principal="superuser", list_id=list_id, offset=0, count=10
                )
            )
        return time.perf_counter() - started

    # Warm the view, then snapshot counters around the incremental run.
    server.fetch(
        FetchRequest(principal="superuser", list_id=list_id, offset=0, count=10)
    )
    builds_before = server.view_stats.full_builds
    patches_before = server.view_stats.incremental_updates
    incremental_seconds = workload(invalidate=False)
    builds = server.view_stats.full_builds - builds_before
    patches = server.view_stats.incremental_updates - patches_before
    restore_list()
    rebuild_seconds = workload(invalidate=True)
    return builds, patches, incremental_seconds, rebuild_seconds


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="seconds-scale CI configuration"
    )
    args = parser.parse_args()

    num_queries = 5 if args.quick else 25
    terms_per_query = 3
    mutations = 100 if args.quick else 1000
    k = 5

    print(f"building system ({'quick' if args.quick else 'full'} mode)...")
    system = build_system(args.quick)
    queries = sample_queries(system, num_queries, terms_per_query)
    assert queries, "could not assemble multi-term queries"

    sequential_calls, batched_calls = measure_batching(system, queries, k)
    print(f"\n== batched fetch ({len(queries)} queries x {terms_per_query} terms, k={k}) ==")
    print(f"server calls, per-list fetch : {sequential_calls}")
    print(f"server calls, batched fetch  : {batched_calls}")
    print(f"round-trips saved            : {sequential_calls - batched_calls}")

    builds, patches, incremental_seconds, rebuild_seconds = measure_views(
        system, mutations
    )
    print(f"\n== readable views ({mutations} insert+fetch cycles) ==")
    print(f"full view rebuilds           : {builds}")
    print(f"incremental view patches     : {patches}")
    print(f"incremental wall time        : {incremental_seconds * 1e3:.1f} ms")
    print(f"rebuild-per-mutation time    : {rebuild_seconds * 1e3:.1f} ms")
    if incremental_seconds > 0:
        print(f"speedup                      : {rebuild_seconds / incremental_seconds:.1f}x")

    failures = []
    if batched_calls >= sequential_calls:
        failures.append(
            f"batched fetch did not save requests "
            f"({batched_calls} >= {sequential_calls})"
        )
    # The incremental run must patch (not rebuild) on essentially every
    # mutation; a handful of rebuilds is tolerated (cold/evicted views).
    if patches < mutations:
        failures.append(f"expected >= {mutations} view patches, saw {patches}")
    if builds > 2:
        failures.append(f"expected <= 2 full rebuilds, saw {builds}")

    print()
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: batching saves round-trips; mutations no longer rebuild views")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
