"""Fig. 11 — average bandwidth overhead AvBO (Eq. 13) vs. initial response
size b, for k ∈ {1, 10, 50}, on both collections.

Paper shape: "the minimal bandwidth overhead for a top-k query in
Zerber+R can be achieved with b=k … Further enlargement of the initial
response size leads to an increased bandwidth overhead."
"""

from __future__ import annotations

from benchmarks.conftest import cached_workload_traces, print_series
from repro.evalmetrics.bandwidth import average_bandwidth_overhead

B_VALUES = [1, 2, 5, 10, 20, 50, 100]
K_VALUES = [1, 10, 50]


def _avbo_series(collection, k):
    return {
        b: average_bandwidth_overhead(cached_workload_traces(collection, k, b))
        for b in B_VALUES
    }


def test_fig11_avbo_vs_initial_response_size(benchmark, collections):
    def measure():
        return {
            (c.name, k): _avbo_series(c, k) for c in collections for k in K_VALUES
        }

    series = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for (name, k), curve in series.items():
        for b, avbo in curve.items():
            rows.append([name, k, b, f"{avbo:.2f}"])
    print_series(
        "Fig. 11: average bandwidth overhead AvBO (Eq. 13)",
        ["collection", "k", "b", "AvBO"],
        rows,
    )

    for (name, k), curve in series.items():
        # Paper: "the minimal bandwidth overhead … can be achieved with
        # b=k".  On collections where many terms have df < k the curve
        # flattens at small b (queries exhaust the readable list whatever
        # the policy), so assert *near*-optimality of b ≈ k rather than a
        # strict argmin.
        b_near_k = min(B_VALUES, key=lambda b: abs(b - k))
        best = min(curve.values())
        assert curve[b_near_k] <= 1.15 * best, (name, k, curve)
        # Oversizing hurts: the largest b costs measurably more than b ≈ k.
        assert curve[B_VALUES[-1]] > curve[b_near_k], (name, k, curve)
        # And the b=100 overhead is at least ~100/k for one-shot queries,
        # i.e. grows as k shrinks (the Fig. 11 fan-out across k curves).
        if k <= 10:
            assert curve[B_VALUES[-1]] > 100 / k * 0.5, (name, k, curve)
