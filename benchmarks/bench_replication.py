"""Replication microbenchmark: the W×R consistency matrix under lag.

Drives a Zipf-skewed write/read mix against a replicated
:class:`~repro.core.cluster.ServerCluster` for every combination of
write consistency (``one`` / ``quorum`` / ``all``), read consistency
(``one`` / ``primary`` / ``quorum``) and replication lag, and records:

* **staleness** — the fraction of reads that landed on a diverged
  replica (and the worst version gap any read observed);
* **ack latency in ticks** — how many replication ticks pass before a
  write is held by a quorum of its replicas.  ``W=quorum``/``all``
  force the acks through the log at write time (latency 0, paid as
  ``write_ack_ops`` sync work instead); ``W=one`` acks at the primary
  and lets the quorum form at lag speed.  The per-op follower ack
  latency is also read back from the telemetry registry's
  ``replication_ack_latency_ticks`` histogram (the ``fa_ticks``
  column), so the observability layer reports the same story;
* **repair traffic** — catch-up ops applied by read-repair, re-served
  slices, forced write-acks, scheduled follower deliveries and
  anti-entropy ops;
* **throughput proxy** — server calls per read (strong consistency pays
  for divergence with re-serves; ``ONE`` never does).

Claims checked (exit non-zero on failure):

1. ``lag=0`` (the default) never detects a stale read — the synchronous
   seed behaviour — and every W level acks with zero latency and zero
   forced sync work.
2. With ``lag>0`` and rotated reads, ``W=one``/``R=one`` observes
   staleness and read-repair catches the followers up.
3. ``PRIMARY`` reads always return the log-head version (strong), at the
   cost of re-serves, and ``QUORUM`` never reads staler than ``ONE``.
4. ``W=quorum``/``all`` ack with zero ticks of quorum latency at any
   lag; ``W=one`` pays the lag instead.
5. ``W=all`` makes every read at every level stale-free (each write
   leaves all replicas at the head).
6. A tighter anti-entropy period bounds the worst observed staleness.
7. After healing, one anti-entropy sweep converges every replica.

Standalone script (not collected by pytest):

    PYTHONPATH=src python benchmarks/bench_replication.py [--quick]
        [--output BENCH_replication.json]

``--quick`` runs a seconds-scale configuration for CI smoke checks.
"""

from __future__ import annotations

import argparse
import json
import random
import time

from repro.core.cluster import ServerCluster
from repro.core.protocol import FetchRequest
from repro.crypto.keys import GroupKeyService
from repro.index.postings import EncryptedPostingElement
from repro.obs import Telemetry

WRITE_LEVELS = ("one", "quorum", "all")
READ_LEVELS = ("one", "primary", "quorum")


def make_cluster(config: dict, lag: int, anti_entropy_every: int | None):
    keys = GroupKeyService(master_secret=b"bench-replication".ljust(32, b"."))
    keys.register("u", {"g"})
    return ServerCluster(
        keys,
        num_lists=config["num_lists"],
        num_servers=config["num_servers"],
        replication=config["replication"],
        lag=lag,
        read_strategy="rotate",  # reads must reach followers to observe lag
        anti_entropy_every=anti_entropy_every,
        telemetry=Telemetry(),  # per-point registry: follower ack latency
    )


def zipf_choice(rng: random.Random, n: int) -> int:
    """Zipf(1)-ish pick in [0, n): rank r with weight 1/(r+1)."""
    weights = [1.0 / (rank + 1) for rank in range(n)]
    return rng.choices(range(n), weights=weights, k=1)[0]


class _AckTracker:
    """Ticks until each write is held by a quorum of its replicas."""

    def __init__(self, cluster: ServerCluster):
        self._cluster = cluster
        self._pending: list[tuple[int, int, int]] = []  # (list, version, tick)
        self.latencies: list[int] = []

    def record_write(self, list_id: int, tick: int) -> None:
        version = self._cluster.primary_version(list_id)
        self._pending.append((list_id, version, tick))
        self.resolve(tick)  # W>1 acks resolve at the write itself

    def resolve(self, tick: int) -> None:
        still_pending = []
        for list_id, version, issued in self._pending:
            replicas = self._cluster.replicas_of(list_id)
            needed = len(replicas) // 2 + 1
            holders = sum(
                1
                for s in replicas
                if self._cluster.applied_version(list_id, s) >= version
            )
            if holders >= needed:
                self.latencies.append(tick - issued)
            else:
                still_pending.append((list_id, version, issued))
        self._pending = still_pending

    def drain(self, tick: int, max_extra_ticks: int) -> int:
        """Tick the cluster until every sampled write reached quorum."""
        for extra in range(max_extra_ticks):
            if not self._pending:
                break
            self._cluster.replication_tick()
            tick += 1
            self.resolve(tick)
        return tick


def run_mix(
    cluster: ServerCluster,
    config: dict,
    read_consistency: str,
    write_consistency: str,
    seed: int = 7,
) -> dict:
    """One write/read/tick mix; returns the measured matrix point."""
    rng = random.Random(seed)
    num_lists = config["num_lists"]
    counter = 0
    reads = 0
    tick = 0
    strong_violations = 0
    acks = _AckTracker(cluster)
    calls_before = cluster.total_calls
    started = time.perf_counter()
    for _ in range(config["rounds"]):
        for _ in range(config["writes_per_round"]):
            counter += 1
            list_id = zipf_choice(rng, num_lists)
            cluster.insert(
                "u",
                list_id,
                EncryptedPostingElement(
                    ciphertext=b"w%06d" % counter,
                    group="g",
                    trs=rng.random(),
                ),
                consistency=write_consistency,
            )
            acks.record_write(list_id, tick)
        for _ in range(config["reads_per_round"]):
            list_id = zipf_choice(rng, num_lists)
            response = cluster.fetch(
                FetchRequest(principal="u", list_id=list_id, offset=0, count=5),
                consistency=read_consistency,
            )
            reads += 1
            if (
                read_consistency == "primary"
                and response.replica_version != cluster.primary_version(list_id)
            ):
                strong_violations += 1
        cluster.replication_tick()
        tick += 1
        acks.resolve(tick)
    # Let straggling quorums form at lag speed before healing, so the
    # latency curve measures replication, not the sweep.
    acks.drain(tick, max_extra_ticks=1000)
    elapsed = time.perf_counter() - started
    # Heal and prove convergence: one sweep must zero the backlog.
    cluster.replication_manager.anti_entropy_sweep()
    converged = cluster.replication_backlog() == {}
    stats = cluster.replication_stats
    latencies = acks.latencies
    # The registry's view of the same ack path: one observation per
    # scheduled follower delivery, in ticks from log append to apply
    # (read-repair/anti-entropy syncs take a different path and are
    # deliberately not in this histogram).
    ack_series = []
    if cluster.telemetry is not None:
        ack_series = cluster.telemetry.registry.snapshot()[
            "replication_ack_latency_ticks"
        ]["series"]
    registry_acks = sum(entry["count"] for entry in ack_series)
    registry_tick_sum = sum(entry["sum"] for entry in ack_series)
    return {
        "consistency": read_consistency,
        "write_consistency": write_consistency,
        "reads": reads,
        "writes": counter,
        "stale_reads": stats.stale_reads_detected,
        "stale_fraction": stats.stale_reads_detected / max(1, reads),
        "max_staleness": stats.max_staleness_seen,
        "ack_latency_ticks_mean": sum(latencies) / max(1, len(latencies)),
        "ack_latency_ticks_max": max(latencies, default=0),
        "registry_follower_acks": registry_acks,
        "registry_follower_ack_ticks_mean": registry_tick_sum
        / max(1, registry_acks),
        "write_ack_syncs": stats.write_ack_syncs,
        "write_ack_ops": stats.write_ack_ops,
        "read_repair_ops": stats.repair_ops,
        "re_served_slices": stats.read_reserves,
        "scheduled_follower_ops": stats.follower_ops_applied,
        "anti_entropy_ops": stats.anti_entropy_ops,
        "server_calls_per_read": (cluster.total_calls - calls_before)
        / max(1, reads),
        "strong_violations": strong_violations,
        "converged_after_sweep": converged,
        "elapsed_seconds": round(elapsed, 4),
    }


def sweep(config: dict) -> dict:
    lags = config["lags"]
    results: list[dict] = []
    for lag in lags:
        for write_consistency in WRITE_LEVELS:
            for read_consistency in READ_LEVELS:
                cluster = make_cluster(
                    config,
                    lag=lag,
                    anti_entropy_every=config["anti_entropy_every"],
                )
                point = run_mix(
                    cluster, config, read_consistency, write_consistency
                )
                point["lag"] = lag
                results.append(point)
                print(
                    f"lag={lag:<3d} W={write_consistency:<7s} "
                    f"R={read_consistency:<8s} "
                    f"stale={point['stale_fraction']:.3f} "
                    f"max_gap={point['max_staleness']:<4d} "
                    f"ack_ticks={point['ack_latency_ticks_mean']:.2f} "
                    f"fa_ticks={point['registry_follower_ack_ticks_mean']:.2f} "
                    f"ack_ops={point['write_ack_ops']:<5d} "
                    f"re_serves={point['re_served_slices']:<5d} "
                    f"calls/read={point['server_calls_per_read']:.2f}"
                )
    # Anti-entropy ablation at the largest lag: tighter sweeps, lower
    # worst-case staleness for ONE readers.
    ablation: list[dict] = []
    for period in config["anti_entropy_periods"]:
        cluster = make_cluster(config, lag=max(lags), anti_entropy_every=period)
        point = run_mix(cluster, config, "one", "one")
        ablation.append(
            {
                "anti_entropy_every": period,
                "max_staleness": point["max_staleness"],
                "stale_fraction": point["stale_fraction"],
                "anti_entropy_ops": point["anti_entropy_ops"],
            }
        )
        print(
            f"anti_entropy_every={period} max_gap={point['max_staleness']} "
            f"stale={point['stale_fraction']:.3f} "
            f"ae_ops={point['anti_entropy_ops']}"
        )
    return {"curves": results, "anti_entropy_ablation": ablation}


def check_claims(measured: dict) -> list[str]:
    failures: list[str] = []
    by_key = {
        (point["lag"], point["write_consistency"], point["consistency"]): point
        for point in measured["curves"]
    }
    lags = sorted({lag for lag, _, _ in by_key})
    for write_consistency in WRITE_LEVELS:
        for read_consistency in READ_LEVELS:
            zero = by_key[(0, write_consistency, read_consistency)]
            if zero["stale_reads"] != 0:
                failures.append(
                    f"lag=0/W={write_consistency}/R={read_consistency} "
                    f"detected {zero['stale_reads']} stale reads"
                )
            if zero["ack_latency_ticks_max"] != 0:
                failures.append(
                    f"lag=0/W={write_consistency} acked with latency"
                )
            if zero["write_ack_syncs"] != 0:
                failures.append(
                    f"lag=0/W={write_consistency} forced sync work on the "
                    "synchronous path"
                )
    positive = [lag for lag in lags if lag > 0]
    for lag in positive:
        one = by_key[(lag, "one", "one")]
        primary = by_key[(lag, "one", "primary")]
        quorum = by_key[(lag, "one", "quorum")]
        if one["stale_reads"] == 0:
            failures.append(f"lag={lag}/one observed no divergence")
        if one["read_repair_ops"] == 0:
            failures.append(f"lag={lag}/one triggered no read-repair")
        if primary["strong_violations"] != 0:
            failures.append(
                f"lag={lag}/primary returned "
                f"{primary['strong_violations']} non-head reads"
            )
        if quorum["stale_fraction"] > one["stale_fraction"] + 1e-9:
            failures.append(
                f"lag={lag}: quorum read staler than ONE "
                f"({quorum['stale_fraction']:.3f} vs {one['stale_fraction']:.3f})"
            )
        if one["ack_latency_ticks_mean"] <= 0:
            failures.append(
                f"lag={lag}/W=one quorum formed instantly despite lag"
            )
        for write_consistency in ("quorum", "all"):
            for read_consistency in READ_LEVELS:
                point = by_key[(lag, write_consistency, read_consistency)]
                if point["ack_latency_ticks_max"] != 0:
                    failures.append(
                        f"lag={lag}/W={write_consistency}/R={read_consistency}"
                        f" acked {point['ack_latency_ticks_max']} ticks late"
                    )
            if by_key[(lag, write_consistency, "one")]["write_ack_ops"] == 0:
                failures.append(
                    f"lag={lag}/W={write_consistency} forced no ack syncs"
                )
        for read_consistency in READ_LEVELS:
            point = by_key[(lag, "all", read_consistency)]
            if point["stale_reads"] != 0:
                failures.append(
                    f"lag={lag}/W=all/R={read_consistency} observed "
                    f"{point['stale_reads']} stale reads"
                )
    for point in measured["curves"]:
        if not point["converged_after_sweep"]:
            failures.append(
                f"lag={point['lag']}/W={point['write_consistency']}"
                f"/R={point['consistency']} "
                "did not converge after the healing sweep"
            )
    ablation = measured["anti_entropy_ablation"]
    if len(ablation) >= 2:
        loosest, tightest = ablation[0], ablation[-1]
        if tightest["max_staleness"] > loosest["max_staleness"]:
            failures.append(
                "tighter anti-entropy period did not bound staleness "
                f"({tightest['max_staleness']} vs {loosest['max_staleness']})"
            )
        if tightest["anti_entropy_ops"] == 0:
            failures.append("anti-entropy sweep applied no ops at period 1")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="seconds-scale CI configuration"
    )
    parser.add_argument(
        "--output", default=None, help="write the measured JSON here"
    )
    args = parser.parse_args()

    if args.quick:
        config = {
            "num_lists": 8,
            "num_servers": 4,
            "replication": 2,
            "rounds": 50,
            "writes_per_round": 3,
            "reads_per_round": 6,
            "lags": [0, 1, 4],
            "anti_entropy_every": None,
            "anti_entropy_periods": [16, 4, 1],
        }
    else:
        config = {
            "num_lists": 32,
            "num_servers": 6,
            "replication": 3,
            "rounds": 300,
            "writes_per_round": 4,
            "reads_per_round": 8,
            "lags": [0, 1, 2, 4, 8],
            "anti_entropy_every": None,
            "anti_entropy_periods": [64, 16, 4, 1],
        }

    print(
        f"replication bench ({'quick' if args.quick else 'full'} mode): "
        f"{config['num_lists']} lists / {config['num_servers']} servers / "
        f"f={config['replication']}, "
        f"{config['rounds']}x({config['writes_per_round']}w+"
        f"{config['reads_per_round']}r) rounds, "
        f"W={'/'.join(WRITE_LEVELS)} x R={'/'.join(READ_LEVELS)}\n"
    )
    measured = sweep(config)
    failures = check_claims(measured)

    record = {
        "benchmark": "replication",
        "mode": "quick" if args.quick else "full",
        "config": config,
        **measured,
    }
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.output}")

    print()
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "OK: lag=0 byte-stable, divergence detected and repaired, PRIMARY "
        "strong, QUORUM <= ONE staleness, W=quorum/all ack in 0 ticks, "
        "W=all stale-free, anti-entropy bounds the gap"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
