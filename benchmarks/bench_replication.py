"""Replication microbenchmark: staleness vs. consistency vs. repair traffic.

Drives a Zipf-skewed write/read mix against a replicated
:class:`~repro.core.cluster.ServerCluster` under a sweep of replication
lags and read-consistency levels, and records:

* **staleness** — the fraction of reads that landed on a diverged
  replica (and the worst version gap any read observed);
* **repair traffic** — catch-up ops applied by read-repair, re-served
  slices, scheduled follower deliveries and anti-entropy ops;
* **throughput proxy** — server calls per read (strong consistency pays
  for divergence with re-serves; ``ONE`` never does).

Claims checked (exit non-zero on failure):

1. ``lag=0`` (the default) never detects a stale read — the synchronous
   seed behaviour.
2. With ``lag>0`` and rotated reads, ``ONE`` observes staleness and
   read-repair catches the followers up.
3. ``PRIMARY`` reads always return the log-head version (strong), at the
   cost of re-serves, and ``QUORUM`` never reads staler than ``ONE``.
4. A tighter anti-entropy period bounds the worst observed staleness.
5. After healing, one anti-entropy sweep converges every replica.

Standalone script (not collected by pytest):

    PYTHONPATH=src python benchmarks/bench_replication.py [--quick]
        [--output BENCH_replication.json]

``--quick`` runs a seconds-scale configuration for CI smoke checks.
"""

from __future__ import annotations

import argparse
import json
import math
import random
import time

from repro.core.cluster import ServerCluster
from repro.core.protocol import FetchRequest
from repro.crypto.keys import GroupKeyService
from repro.index.postings import EncryptedPostingElement


def make_cluster(config: dict, lag: int, anti_entropy_every: int | None):
    keys = GroupKeyService(master_secret=b"bench-replication".ljust(32, b"."))
    keys.register("u", {"g"})
    return ServerCluster(
        keys,
        num_lists=config["num_lists"],
        num_servers=config["num_servers"],
        replication=config["replication"],
        lag=lag,
        read_strategy="rotate",  # reads must reach followers to observe lag
        anti_entropy_every=anti_entropy_every,
    )


def zipf_choice(rng: random.Random, n: int) -> int:
    """Zipf(1)-ish pick in [0, n): rank r with weight 1/(r+1)."""
    weights = [1.0 / (rank + 1) for rank in range(n)]
    return rng.choices(range(n), weights=weights, k=1)[0]


def run_mix(
    cluster: ServerCluster,
    config: dict,
    consistency: str,
    seed: int = 7,
) -> dict:
    """One write/read/tick mix; returns the measured curve point."""
    rng = random.Random(seed)
    num_lists = config["num_lists"]
    counter = 0
    reads = 0
    strong_violations = 0
    calls_before = cluster.total_calls
    started = time.perf_counter()
    for _ in range(config["rounds"]):
        for _ in range(config["writes_per_round"]):
            counter += 1
            list_id = zipf_choice(rng, num_lists)
            cluster.insert(
                "u",
                list_id,
                EncryptedPostingElement(
                    ciphertext=b"w%06d" % counter,
                    group="g",
                    trs=rng.random(),
                ),
            )
        for _ in range(config["reads_per_round"]):
            list_id = zipf_choice(rng, num_lists)
            response = cluster.fetch(
                FetchRequest(principal="u", list_id=list_id, offset=0, count=5),
                consistency=consistency,
            )
            reads += 1
            if (
                consistency == "primary"
                and response.replica_version != cluster.primary_version(list_id)
            ):
                strong_violations += 1
        cluster.replication_tick()
    elapsed = time.perf_counter() - started
    # Heal and prove convergence: one sweep must zero the backlog.
    cluster.replication_manager.anti_entropy_sweep()
    converged = cluster.replication_backlog() == {}
    stats = cluster.replication_stats
    return {
        "consistency": consistency,
        "reads": reads,
        "writes": counter,
        "stale_reads": stats.stale_reads_detected,
        "stale_fraction": stats.stale_reads_detected / max(1, reads),
        "max_staleness": stats.max_staleness_seen,
        "read_repair_ops": stats.repair_ops,
        "re_served_slices": stats.read_reserves,
        "scheduled_follower_ops": stats.follower_ops_applied,
        "anti_entropy_ops": stats.anti_entropy_ops,
        "server_calls_per_read": (cluster.total_calls - calls_before)
        / max(1, reads),
        "strong_violations": strong_violations,
        "converged_after_sweep": converged,
        "elapsed_seconds": round(elapsed, 4),
    }


def sweep(config: dict) -> dict:
    lags = config["lags"]
    results: list[dict] = []
    for lag in lags:
        for consistency in ("one", "primary", "quorum"):
            cluster = make_cluster(
                config, lag=lag, anti_entropy_every=config["anti_entropy_every"]
            )
            point = run_mix(cluster, config, consistency)
            point["lag"] = lag
            results.append(point)
            print(
                f"lag={lag:<3d} {consistency:<8s} "
                f"stale={point['stale_fraction']:.3f} "
                f"max_gap={point['max_staleness']:<4d} "
                f"repair_ops={point['read_repair_ops']:<6d} "
                f"re_serves={point['re_served_slices']:<5d} "
                f"calls/read={point['server_calls_per_read']:.2f}"
            )
    # Anti-entropy ablation at the largest lag: tighter sweeps, lower
    # worst-case staleness for ONE readers.
    ablation: list[dict] = []
    for period in config["anti_entropy_periods"]:
        cluster = make_cluster(config, lag=max(lags), anti_entropy_every=period)
        point = run_mix(cluster, config, "one")
        ablation.append(
            {
                "anti_entropy_every": period,
                "max_staleness": point["max_staleness"],
                "stale_fraction": point["stale_fraction"],
                "anti_entropy_ops": point["anti_entropy_ops"],
            }
        )
        print(
            f"anti_entropy_every={period} max_gap={point['max_staleness']} "
            f"stale={point['stale_fraction']:.3f} "
            f"ae_ops={point['anti_entropy_ops']}"
        )
    return {"curves": results, "anti_entropy_ablation": ablation}


def check_claims(measured: dict) -> list[str]:
    failures: list[str] = []
    by_key = {
        (point["lag"], point["consistency"]): point
        for point in measured["curves"]
    }
    lags = sorted({lag for lag, _ in by_key})
    for consistency in ("one", "primary", "quorum"):
        zero = by_key[(0, consistency)]
        if zero["stale_reads"] != 0:
            failures.append(
                f"lag=0/{consistency} detected {zero['stale_reads']} stale reads"
            )
    positive = [lag for lag in lags if lag > 0]
    for lag in positive:
        one = by_key[(lag, "one")]
        primary = by_key[(lag, "primary")]
        quorum = by_key[(lag, "quorum")]
        if one["stale_reads"] == 0:
            failures.append(f"lag={lag}/one observed no divergence")
        if one["read_repair_ops"] == 0:
            failures.append(f"lag={lag}/one triggered no read-repair")
        if primary["strong_violations"] != 0:
            failures.append(
                f"lag={lag}/primary returned "
                f"{primary['strong_violations']} non-head reads"
            )
        if quorum["stale_fraction"] > one["stale_fraction"] + 1e-9:
            failures.append(
                f"lag={lag}: quorum read staler than ONE "
                f"({quorum['stale_fraction']:.3f} vs {one['stale_fraction']:.3f})"
            )
    for point in measured["curves"]:
        if not point["converged_after_sweep"]:
            failures.append(
                f"lag={point['lag']}/{point['consistency']} "
                "did not converge after the healing sweep"
            )
    ablation = measured["anti_entropy_ablation"]
    if len(ablation) >= 2:
        loosest, tightest = ablation[0], ablation[-1]
        if tightest["max_staleness"] > loosest["max_staleness"]:
            failures.append(
                "tighter anti-entropy period did not bound staleness "
                f"({tightest['max_staleness']} vs {loosest['max_staleness']})"
            )
        if tightest["anti_entropy_ops"] == 0:
            failures.append("anti-entropy sweep applied no ops at period 1")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="seconds-scale CI configuration"
    )
    parser.add_argument(
        "--output", default=None, help="write the measured JSON here"
    )
    args = parser.parse_args()

    if args.quick:
        config = {
            "num_lists": 8,
            "num_servers": 4,
            "replication": 2,
            "rounds": 50,
            "writes_per_round": 3,
            "reads_per_round": 6,
            "lags": [0, 1, 4],
            "anti_entropy_every": None,
            "anti_entropy_periods": [16, 4, 1],
        }
    else:
        config = {
            "num_lists": 32,
            "num_servers": 6,
            "replication": 3,
            "rounds": 300,
            "writes_per_round": 4,
            "reads_per_round": 8,
            "lags": [0, 1, 2, 4, 8],
            "anti_entropy_every": None,
            "anti_entropy_periods": [64, 16, 4, 1],
        }

    print(
        f"replication bench ({'quick' if args.quick else 'full'} mode): "
        f"{config['num_lists']} lists / {config['num_servers']} servers / "
        f"f={config['replication']}, "
        f"{config['rounds']}x({config['writes_per_round']}w+"
        f"{config['reads_per_round']}r) rounds\n"
    )
    measured = sweep(config)
    failures = check_claims(measured)

    record = {
        "benchmark": "replication",
        "mode": "quick" if args.quick else "full",
        "config": config,
        **measured,
    }
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.output}")

    print()
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "OK: lag=0 byte-stable, divergence detected and repaired, PRIMARY "
        "strong, QUORUM <= ONE staleness, anti-entropy bounds the gap"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
