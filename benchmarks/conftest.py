"""Shared benchmark fixtures: the two collections, systems, and workloads.

Everything heavy is session-scoped and built once:

* ``studip`` / ``odp`` — the two synthetic collections (DESIGN.md §4
  substitutes them for the paper's StudIP snapshot and ODP crawl).
* assembled Zerber+R systems, ordinary indexes, and query logs per
  collection.

Benchmarks run the paper's measurement once per figure
(``benchmark.pedantic(..., rounds=1)``) and print the paper-shaped table;
assertions encode the qualitative shape listed in DESIGN.md §3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro import OrdinaryInvertedIndex, SystemConfig, ZerberRSystem
from repro.corpus import QueryLogConfig, QueryLogGenerator, odp_like, studip_like
from repro.core.protocol import ResponsePolicy
from repro.text.vocabulary import Vocabulary

# Collection sizes: large enough to show the paper's shapes, small enough
# to keep the whole benchmark suite in the minutes range.  Paper-scale runs
# are a parameter change (see DESIGN.md §4).
STUDIP_DOCS = 400
STUDIP_VOCAB = 5000
ODP_DOCS = 600
ODP_VOCAB = 6000
# ~50 query instances per vocabulary term, the ratio of the paper's log
# (7M queries / 135k distinct terms); head dominance in Fig. 10 needs it.
WORKLOAD_QUERIES = 30000


@dataclass(frozen=True)
class Collection:
    """One evaluation collection with its derived artifacts."""

    name: str
    corpus: object
    system: ZerberRSystem
    ordinary: OrdinaryInvertedIndex
    vocabulary: Vocabulary
    query_log: object

    def workload_terms(self, max_terms: int, rng_seed: int = 5) -> list[str]:
        """Query terms sampled from the log, weighted by frequency.

        Restricted to indexed terms (the log can contain any vocabulary
        term).  Sampling *with* replacement by frequency mirrors replaying
        the workload: frequent terms appear multiple times, which is what
        Eq. 13's averaging expects.
        """
        freqs = self.query_log.term_frequencies()
        terms = [t for t in freqs if t in self.vocabulary]
        weights = np.array([freqs[t] for t in terms], dtype=float)
        weights /= weights.sum()
        rng = np.random.default_rng(rng_seed)
        chosen = rng.choice(len(terms), size=max_terms, replace=True, p=weights)
        return [terms[i] for i in chosen]


def _build_collection(name: str) -> Collection:
    if name == "studip":
        corpus = studip_like(
            num_documents=STUDIP_DOCS, vocabulary_size=STUDIP_VOCAB, seed=7
        )
    else:
        corpus = odp_like(num_documents=ODP_DOCS, vocabulary_size=ODP_VOCAB, seed=11)
    system = ZerberRSystem.build(corpus, SystemConfig(r=4.0, seed=41))
    ordinary = OrdinaryInvertedIndex.from_documents(corpus.all_stats())
    vocabulary = ordinary.vocabulary
    query_log = QueryLogGenerator(
        vocabulary, QueryLogConfig(num_queries=WORKLOAD_QUERIES, seed=13)
    ).generate()
    return Collection(
        name=name,
        corpus=corpus,
        system=system,
        ordinary=ordinary,
        vocabulary=vocabulary,
        query_log=query_log,
    )


@pytest.fixture(scope="session")
def studip() -> Collection:
    return _build_collection("studip")


@pytest.fixture(scope="session")
def odp() -> Collection:
    return _build_collection("odp")


@pytest.fixture(scope="session")
def collections(studip, odp) -> list[Collection]:
    return [studip, odp]


def run_topk_workload(
    collection: Collection,
    terms: list[str],
    k: int,
    initial_size: int,
) -> list:
    """Execute single-term top-k queries and return their traces."""
    policy = ResponsePolicy(initial_size=initial_size)
    client = collection.system.client_for("superuser")
    traces = []
    for term in terms:
        result = client.query(term, k=k, policy=policy)
        traces.append(result.trace)
    return traces


# Workload size per (collection, k, b) configuration for Figs. 11-13.
WORKLOAD_SAMPLE_TERMS = 80

_trace_cache: dict[tuple[str, int, int], list] = {}


def cached_workload_traces(collection: Collection, k: int, initial_size: int) -> list:
    """Traces for a frequency-weighted workload sample, cached per config.

    Figs. 11, 12 and 13 aggregate the *same* query executions three ways;
    the cache ensures each configuration runs once per session.
    """
    key = (collection.name, k, initial_size)
    cached = _trace_cache.get(key)
    if cached is None:
        terms = collection.workload_terms(WORKLOAD_SAMPLE_TERMS)
        cached = run_topk_workload(collection, terms, k, initial_size)
        _trace_cache[key] = cached
    return cached


def print_series(title: str, header: list[str], rows: list[list]) -> None:
    """Print one paper-shaped table under a banner."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
