"""Fig. 13 — distribution of the query-answering efficiency QRatioeff
(Eq. 14) over the workload for k=10 and b ∈ {10, 20, 50}.

Paper shape: with b=10, roughly the top 60% of queries achieve
QRatioeff = 1 (ordinary-index parity) and the tail degrades; b=20 caps
the best case at 0.5, b=50 at 0.2 — oversizing uniformly wastes bandwidth.

Batching note: QRatioeff is a *bandwidth* ratio (k / elements shipped),
so serving the same workload through the batched fetch protocol must not
move any point of the curve — batching collapses round-trips, never
bytes.  The companion test asserts that invariant on live sessions.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import cached_workload_traces, print_series
from repro.evalmetrics.bandwidth import efficiency_at_percentile, efficiency_curve

K = 10
B_VALUES = [10, 20, 50]
PERCENTILES = [0, 10, 25, 50, 60, 75, 90]


def test_fig13_efficiency_distribution(benchmark, collections):
    def measure():
        return {
            (c.name, b): efficiency_curve(cached_workload_traces(c, K, b))
            for c in collections
            for b in B_VALUES
        }

    curves = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for (name, b), curve in curves.items():
        for p in PERCENTILES:
            rows.append([name, b, f"{p}%", f"{efficiency_at_percentile(curve, p):.3f}"])
    print_series(
        f"Fig. 13: QRatioeff distribution (k={K})",
        ["collection", "b", "workload percentile", "QRatioeff"],
        rows,
    )

    for c in collections:
        curve_10 = curves[(c.name, 10)]
        curve_20 = curves[(c.name, 20)]
        curve_50 = curves[(c.name, 50)]

        # b=10: a large head of the workload reaches parity (the paper
        # reports ~60%; our synthetic corpora are smaller, so require a
        # clear majority-feature: >= 40% at QRatioeff = 1).
        parity_share = float(np.mean(np.asarray(curve_10) >= 1.0 - 1e-9))
        print_series(
            f"Fig. 13 check ({c.name})",
            ["metric", "value"],
            [["share of workload at QRatioeff=1 (b=10)", f"{parity_share:.1%}"]],
        )
        assert parity_share >= 0.4, (c.name, parity_share)

        # Best case is capped by b: k/b exactly when one request suffices.
        assert max(curve_20) <= K / 20 + 1e-9
        assert max(curve_50) <= K / 50 + 1e-9

        # Oversizing degrades the workload on average (individual queries
        # can flip — a 2-request b=20 session ships 60 elements while one
        # b=50 request ships 50 — but the mean ordering is the paper's
        # message: b=10 best, then 20, then 50).
        mean_10 = float(np.mean(curve_10))
        mean_20 = float(np.mean(curve_20))
        mean_50 = float(np.mean(curve_50))
        assert mean_20 < mean_10
        assert mean_50 < mean_20


def test_fig13_batching_preserves_efficiency(collections):
    """Batched sessions ship exactly the bytes sequential ones do."""
    for c in collections:
        terms = c.workload_terms(30, rng_seed=17)
        client = c.system.client_for("superuser")
        rows = []
        for i in range(0, len(terms), 3):
            query = terms[i : i + 3]
            sequential_per_term = [
                client.query(t, k=K).trace.elements_transferred for t in query
            ]
            batched = client.query_multi_batched(query, k=K)
            batched_per_term = [
                t.elements_transferred for t in batched.traces
            ]
            rows.append(
                [
                    " ".join(query)[:40],
                    sum(sequential_per_term),
                    sum(batched_per_term),
                ]
            )
            # Identical per-term slices -> identical per-term QRatioeff:
            # every Fig. 13 curve point survives batching untouched.
            assert batched_per_term == sequential_per_term, query
        print_series(
            f"Fig. 13 batching invariance ({c.name})",
            ["query", "sequential elements", "batched elements"],
            rows,
        )
