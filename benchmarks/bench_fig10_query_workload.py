"""Fig. 10 — query frequency vs. cumulative top-10 workload (Eq. 9).

The paper's observation on its 7M-query log: "The most frequent queries
constitute nearly the whole query workload."  We regenerate the cumulative
workload curve over the synthetic log and assert head dominance.
"""

from __future__ import annotations

from benchmarks.conftest import print_series
from repro.evalmetrics.workload import cumulative_workload_curve, workload_cost

K = 10


def test_fig10_cumulative_workload_head_dominates(benchmark, studip):
    dfs = {
        t: studip.vocabulary.document_frequency(t) for t in studip.vocabulary
    }
    query_freqs = {
        t: c
        for t, c in studip.query_log.term_frequencies().items()
        if t in studip.vocabulary
    }

    def measure():
        return cumulative_workload_curve(
            studip.system.merge_plan, dfs, query_freqs, K
        )

    curve = benchmark.pedantic(measure, rounds=1, iterations=1)

    n = len(curve)
    checkpoints = [0.001, 0.01, 0.05, 0.10, 0.25, 0.50, 1.0]
    rows = []
    for fraction in checkpoints:
        index = min(max(int(n * fraction) - 1, 0), n - 1)
        rows.append([f"{fraction:.1%}", f"{curve[index][1]:.1%}"])
    print_series(
        f"Fig. 10: cumulative top-{K} workload vs query rank "
        f"({n} distinct queried terms)",
        ["top terms (by query freq)", "share of workload cost Q"],
        rows,
    )

    total = workload_cost(studip.system.merge_plan, dfs, query_freqs, K)
    print_series(
        "Fig. 10: totals",
        ["metric", "value"],
        [["total workload cost Q (elements)", f"{total:.0f}"]],
    )

    # Head dominance: the top 10% of terms carry well over half the cost,
    # and the curve is monotone to 1.
    index_10 = min(max(int(n * 0.10) - 1, 0), n - 1)
    assert curve[index_10][1] > 0.5
    fractions = [f for _, f in curve]
    assert fractions == sorted(fractions)
    assert abs(fractions[-1] - 1.0) < 1e-9
