"""Fetch hot-path benchmark: vectorized crypto, O(log n) views, e2e latency.

Three claims, all load-bearing for the ROADMAP's "as fast as the hardware
allows" goal, plus the repo's first recorded perf trajectory point:

1. **Decrypt-skim throughput** — skimming a Zipf-style query workload
   (the same hot head slices fetched by successive queries, as in the
   paper's Fig. 10 mix and ``bench_router``'s shared hot term) through
   the optimized cipher (XOF keystream squeezed in one call, big-int
   XOR, precomputed MAC states, ``try_decrypt_many`` batching, verified
   decrypt memo for re-skimmed elements) is >= 5x faster than the pre-PR
   straight-line code (HMAC re-keyed per 32-byte block, one Python XOR
   iteration per byte, per-element ``try_decrypt`` calls, no memo), with
   byte-identical recovered plaintexts.  The cold single-pass speedup is
   reported alongside.
2. **View-patch scaling** — patching a cached readable view for one
   insert/delete is O(log n) on the order-statistic skip list: growing
   the list 10x must cost at most 2x per patch (the old bisect+splice
   representation paid an O(view) memmove).
3. **End-to-end** — coordinator-driven concurrent queries return results
   identical to the direct per-client path; their latency is recorded.
4. **Instrumentation overhead** — running the same coordinator workload
   with full telemetry (metrics registry + tracer + monitor) instead of
   the Null instruments costs at most 5% extra wall clock, so the
   observability layer can stay on in production deployments.

Results are written as JSON (default ``BENCH_hotpath.json``) so later PRs
can compare their curves against this baseline.

Standalone script (not collected by pytest):

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--quick] [--output PATH]

``--quick`` runs a seconds-scale configuration for CI smoke checks.
Exits non-zero if any claim fails.
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import hmac
import json
import platform
import time

from repro import SystemConfig, ZerberRSystem
from repro.core.ordstat import OrderStatList
from repro.core.views import ReadableViewIndex
from repro.corpus import studip_like, tiny_corpus
from repro.crypto.cipher import StreamCipher
from repro.crypto.keys import GroupKeyService
from repro.index.postings import EncryptedPostingElement, MergedPostingList, PostingElement
from repro.obs import Telemetry

# Telemetry must stay cheap enough to leave on: full instrumentation may
# cost at most this fraction of the uninstrumented coordinator path.
INSTRUMENTATION_BUDGET = 0.05


# -- the frozen pre-PR implementation (reference for speed and identity) ------


class _ReferencePrf:
    """The seed's PRF: one ``hmac.new`` (full key schedule) per block."""

    def __init__(self, key: bytes) -> None:
        self._key = key

    def evaluate(self, message: bytes) -> bytes:
        return hmac.new(self._key, message, hashlib.sha256).digest()

    def keystream(self, nonce: bytes, length: int) -> bytes:
        blocks = []
        counter = 0
        produced = 0
        while produced < length:
            block = self.evaluate(nonce + counter.to_bytes(8, "big"))
            blocks.append(block)
            produced += len(block)
            counter += 1
        return b"".join(blocks)[:length]


def _reference_derive(master_key: bytes, label: str) -> bytes:
    return hmac.new(
        master_key, b"derive:" + label.encode(), hashlib.sha256
    ).digest()


class _ReferenceCipher:
    """The seed's stream cipher: HMAC-CTR keystream, per-byte XOR."""

    def __init__(self, master_key: bytes) -> None:
        self._enc = _ReferencePrf(_reference_derive(master_key, "enc"))
        self._mac = _ReferencePrf(_reference_derive(master_key, "mac"))

    def encrypt(self, plaintext: bytes, nonce: bytes) -> bytes:
        stream = self._enc.keystream(nonce, len(plaintext))
        body = bytes(p ^ s for p, s in zip(plaintext, stream))
        tag = self._mac.evaluate(nonce + body)[:16]
        return nonce + body + tag

    def try_decrypt(self, ciphertext: bytes) -> bytes | None:
        if len(ciphertext) < 32:
            return None
        nonce = ciphertext[:16]
        body = ciphertext[16:-16]
        tag = ciphertext[-16:]
        if not hmac.compare_digest(tag, self._mac.evaluate(nonce + body)[:16]):
            return None
        stream = self._enc.keystream(nonce, len(body))
        return bytes(b ^ s for b, s in zip(body, stream))


# -- claim 1: decrypt-skim throughput -----------------------------------------


def _skim_workload(num_elements: int) -> list[bytes]:
    """Plaintexts of a realistic fetched slice, at real wire sizes.

    In Zerber+R the server's access-controlled readable views already
    filter out other groups' elements, so a fetched slice decrypts
    end-to-end — the skim hot path is the all-success path.  (The
    reject path, which Zerber's download-everything baseline still
    exercises, is measured separately.)
    """
    plaintexts: list[bytes] = []
    for i in range(num_elements):
        element = PostingElement(
            term=f"term{i % 97}",
            doc_id=f"doc-{i:08d}",
            tf=1 + (i % 13),
            doc_length=200 + (i % 57),
        )
        plaintexts.append(element.to_bytes())
    return plaintexts


def _workload_indices(num_elements: int, rounds: int) -> list[list[int]]:
    """The skim sequence of a Zipf-style query mix, as index lists.

    Round 0 skims every element cold (the first query to touch the list);
    each later round re-skims the hot head (the first half — successive
    queries share the head terms and their top-TRS slices) plus a
    rotating cold quarter of the tail (each query's own long-tail terms).
    """
    passes = [list(range(num_elements))]
    head = list(range(num_elements // 2))
    quarter = max(1, num_elements // 4)
    for r in range(1, rounds):
        tail_start = num_elements // 2 + (r - 1) * quarter % max(
            1, num_elements - num_elements // 2
        )
        tail = [
            num_elements // 2 + (tail_start + i) % (num_elements - num_elements // 2)
            for i in range(quarter)
        ] if num_elements > 1 else []
        passes.append(head + tail)
    return passes


def measure_crypto(num_elements: int, rounds: int, repeats: int) -> dict:
    """Skim the same workload through the reference and optimized ciphers."""
    readable_key = b"readable-group-master-key-0001!!"
    other_key = b"unreadable-group-master-key-01!!"
    plaintexts = _skim_workload(num_elements)
    passes = _workload_indices(num_elements, rounds)
    skims_total = sum(len(p) for p in passes)

    def nonce(i: int) -> bytes:
        return hashlib.sha256(b"nonce%d" % i).digest()[:16]

    ref_mine = _ReferenceCipher(readable_key)
    ref_cts = [
        ref_mine.encrypt(pt, nonce(i)) for i, pt in enumerate(plaintexts)
    ]
    opt_encrypt = StreamCipher(readable_key)
    opt_cts = [
        opt_encrypt.encrypt(pt, nonce(i)) for i, pt in enumerate(plaintexts)
    ]
    # Reject path: the same ciphertexts skimmed under the wrong group key
    # (Zerber's download-everything baseline pays this per element).
    ref_other = _ReferenceCipher(other_key)
    opt_other = StreamCipher(other_key)

    def run_reference() -> list[bytes | None]:
        out: list[bytes | None] = []
        for indices in passes:
            out = [ref_mine.try_decrypt(ref_cts[i]) for i in indices]
        return out

    def fresh_optimized() -> StreamCipher:
        return StreamCipher(readable_key)  # cold memo per timed run

    def run_optimized(cipher: StreamCipher) -> list[bytes | None]:
        out: list[bytes | None] = []
        for indices in passes:
            out = cipher.try_decrypt_many([opt_cts[i] for i in indices])
        return out

    # Best-of-N to shave scheduler noise off the ratio.
    ref_seconds = min(_timed(run_reference) for _ in range(repeats))
    opt_seconds = min(
        _timed(lambda cipher=fresh_optimized(): run_optimized(cipher))
        for _ in range(repeats)
    )
    cold_ref_seconds = min(
        _timed(lambda: [ref_mine.try_decrypt(ct) for ct in ref_cts])
        for _ in range(repeats)
    )
    cold_opt_seconds = min(
        _timed(lambda: StreamCipher(readable_key).try_decrypt_many(opt_cts))
        for _ in range(repeats)
    )
    ref_reject_seconds = min(
        _timed(lambda: [ref_other.try_decrypt(ct) for ct in ref_cts])
        for _ in range(repeats)
    )
    opt_reject_seconds = min(
        _timed(lambda: opt_other.try_decrypt_many(opt_cts))
        for _ in range(repeats)
    )

    # Byte-identity: every pass of both paths recovers the same plaintexts.
    for indices in passes:
        expected = [plaintexts[i] for i in indices]
        assert [
            ref_mine.try_decrypt(ref_cts[i]) for i in indices
        ] == expected, "reference skim produced wrong plaintexts"
        assert (
            fresh_optimized().try_decrypt_many([opt_cts[i] for i in indices])
            == expected
        ), "optimized skim diverged from the reference plaintexts"
    warm = fresh_optimized()
    for indices in passes:
        assert warm.try_decrypt_many([opt_cts[i] for i in indices]) == [
            plaintexts[i] for i in indices
        ], "memoised skim diverged from the cold path"
    assert opt_other.try_decrypt_many(opt_cts) == [None] * num_elements

    total_bytes = sum(len(plaintexts[i]) for p in passes for i in p)
    return {
        "elements": num_elements,
        "workload_rounds": rounds,
        "workload_skims": skims_total,
        "payload_bytes_total": total_bytes,
        "reference_seconds": ref_seconds,
        "optimized_seconds": opt_seconds,
        "reference_mb_per_s": total_bytes / ref_seconds / 1e6,
        "optimized_mb_per_s": total_bytes / opt_seconds / 1e6,
        "speedup": ref_seconds / opt_seconds,
        "cold_speedup": cold_ref_seconds / cold_opt_seconds,
        "reject_speedup": ref_reject_seconds / opt_reject_seconds,
    }


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


# -- claim 2: view-patch scaling ----------------------------------------------


def _build_view(num_elements: int) -> tuple[ReadableViewIndex, MergedPostingList]:
    keys = GroupKeyService(master_secret=b"bench-hotpath-views-secret!!!!!!")
    keys.register("reader", {"g"})
    views = ReadableViewIndex(keys, capacity=4)
    merged = MergedPostingList(list_id=0)
    merged.bulk_load_sorted_by_trs(
        EncryptedPostingElement(
            ciphertext=b"seed-%d" % i, group="g", trs=(i % 9973) / 9973.0
        )
        for i in range(num_elements)
    )
    views.slice(merged, "reader", 0, 10)  # warm (and build) the cached view
    return views, merged


def measure_view_patches(num_elements: int, num_patches: int) -> dict:
    """Per-patch cost of insert+delete pairs against a warm cached view.

    Only the ``note_insert``/``note_delete`` patching is timed — the
    merged list's own C-level splice is the same in both representations
    and not what this PR changes.  Insert/delete pairs keep the view size
    stable so the measurement is at a fixed n.
    """
    views, merged = _build_view(num_elements)
    patch_seconds = 0.0
    slice_seconds = 0.0
    perf_counter = time.perf_counter
    for i in range(num_patches):
        element = EncryptedPostingElement(
            ciphertext=b"patch-%d" % i, group="g", trs=(i % 997) / 997.0
        )
        position = merged.add_sorted_by_trs(element)
        started = perf_counter()
        views.note_insert(merged, element)
        patch_seconds += perf_counter() - started

        started = perf_counter()
        views.slice(merged, "reader", (i * 37) % num_elements, 10)
        slice_seconds += perf_counter() - started

        # add_sorted_by_trs returned the position and nothing mutated the
        # list since, so the element can be removed without the O(n)
        # find_by_ciphertext scan (which would trash the cache between
        # timed patches and measure the harness, not the structure).
        merged.pop_at(position)
        started = perf_counter()
        views.note_delete(merged, element)
        patch_seconds += perf_counter() - started
    stats = views.stats
    assert stats.incremental_updates == 2 * num_patches, (
        "patches fell back to rebuilds",
        stats,
    )
    assert stats.full_builds == 1, ("view was rebuilt mid-run", stats)
    return {
        "view_size": num_elements,
        "patches": 2 * num_patches,
        "patch_us": patch_seconds / (2 * num_patches) * 1e6,
        "slice_us": slice_seconds / num_patches * 1e6,
    }


def measure_view_scaling(base_size: int, num_patches: int, repeats: int) -> dict:
    small = [
        measure_view_patches(base_size, num_patches) for _ in range(repeats)
    ]
    large = [
        measure_view_patches(base_size * 10, num_patches) for _ in range(repeats)
    ]
    small_us = min(r["patch_us"] for r in small)
    large_us = min(r["patch_us"] for r in large)
    return {
        "small": min(small, key=lambda r: r["patch_us"]),
        "large": min(large, key=lambda r: r["patch_us"]),
        "patch_cost_ratio_10x": large_us / small_us,
    }


# -- claim 3: end-to-end coordinator latency ----------------------------------


def build_system(quick: bool) -> ZerberRSystem:
    if quick:
        corpus = tiny_corpus(seed=3)
    else:
        corpus = studip_like(num_documents=200, vocabulary_size=3000, seed=7)
    return ZerberRSystem.build(corpus, SystemConfig(r=4.0, seed=41))


def sample_queries(
    system: ZerberRSystem, num_queries: int, terms_per_query: int
) -> list[list[str]]:
    """Multi-term queries over indexed terms (hot head term shared)."""
    by_df = [
        t
        for t in system.vocabulary.terms_by_frequency()
        if system.vocabulary.document_frequency(t) >= 2
    ]
    hot = by_df[0]
    queries: list[list[str]] = []
    cursor = 1
    while len(queries) < num_queries and cursor + terms_per_query - 1 < len(by_df):
        tail = by_df[cursor : cursor + terms_per_query - 1]
        cursor += terms_per_query - 1
        queries.append([hot, *tail])
    distinct = len(queries)
    while queries and len(queries) < num_queries:  # small corpora: recycle
        queries.append(list(queries[len(queries) % distinct]))
    return queries[:num_queries]


def measure_end_to_end(system: ZerberRSystem, queries: list[list[str]], k: int) -> dict:
    """Coordinator-driven concurrent queries: latency + result identity.

    Each path gets its own freshly deployed cluster and one untimed
    warmup round, so both are measured at the same steady state (warm
    readable views and decrypt memos) — timing one path against caches
    the other just filled would bias the committed baseline.
    """
    num_users = 4
    groups = set(system.corpus.groups())
    for i in range(num_users):
        system.register_user(f"bench-user{i}", groups)

    def jobs_on(cluster):
        return [
            (
                system.client_for(f"bench-user{i % num_users}", server=cluster),
                query,
                k,
            )
            for i, query in enumerate(queries)
        ]

    direct_cluster, _ = system.deploy_cluster(num_servers=3)
    direct_jobs = jobs_on(direct_cluster)
    [client.query_multi_batched(query, k) for client, query, k in direct_jobs]
    started = time.perf_counter()
    direct = [
        client.query_multi_batched(query, k) for client, query, k in direct_jobs
    ]
    direct_seconds = time.perf_counter() - started

    coord_cluster, coordinator = system.deploy_cluster(num_servers=3)
    coord_jobs = jobs_on(coord_cluster)
    coordinator.run_queries(coord_jobs)
    started = time.perf_counter()
    coalesced = coordinator.run_queries(coord_jobs)
    coordinator_seconds = time.perf_counter() - started

    for d, c in zip(direct, coalesced):
        assert list(c.ranked) == list(d.ranked), (
            "coordinator ranking diverged from direct path",
            d.ranked,
            c.ranked,
        )
    return {
        "num_queries": len(queries),
        "terms_per_query": len(queries[0]),
        "k": k,
        "warm_caches": True,
        "direct_ms_per_query": direct_seconds / len(queries) * 1e3,
        "coordinator_ms_per_query": coordinator_seconds / len(queries) * 1e3,
    }


# -- claim 4: instrumentation overhead ----------------------------------------


def measure_instrumentation_overhead(quick: bool) -> dict:
    """Full telemetry vs the Null instruments on the coordinator path.

    Without a :class:`Telemetry` the whole stack runs on the Null
    singletons (no-op counters, a tracer that opens nothing), so timing
    the same warm coordinator workload both ways isolates what the
    metrics registry, span tree and monitor cost on the hot path.

    The budget is a claim about *production-shaped* queries, so the
    workload is its own: a studip-like corpus with 6-term queries at
    k=20, where each round carries real decrypt/parse work per term
    slice.  On a warm micro-corpus a query bottoms out around 0.2 ms
    while telemetry emits the same ~27 events, so the 5% budget would
    demand ~0.4 us per event *including call sites* — unreachable in
    CPython and not what "telemetry can stay on in production" means.

    The estimator fights two noise sources that each exceed the budget:

    * **Heap-layout bias.**  Two deployments of identical code differ
      by several percent depending on where the allocator placed their
      views and memo tables, so comparing an instrumented deployment
      against a separate uninstrumented one measures the layout lottery
      as much as the telemetry.  Instead each deployment is compared
      against *itself*: the :meth:`Telemetry.suspend` kill switch flips
      the very same objects between live and Null instruments, so the
      on/off pair shares every byte of layout.
    * **Scheduler preemption and CPU drift.**  On a small (possibly
      single-core) box, background load randomly inflates individual
      samples by far more than the budget, and it can hit either state.
      Each round therefore times the two states back-to-back as a
      *pair* (order alternating by round parity) and records their
      ratio; a preempted sample turns its pair into an outlier ratio,
      and the reported figure is the trimmed mean of the central half
      of all pair ratios, which discards outliers in both directions
      instead of hoping a best-of-N dodges them.
    """
    corpus = studip_like(num_documents=150, vocabulary_size=2500, seed=7)
    system = ZerberRSystem.build(corpus, SystemConfig(r=4.0, seed=41))
    queries = sample_queries(system, 8, 6)
    assert queries, "could not assemble instrumentation-overhead queries"
    k = 20
    deploys = 3 if quick else 5
    rounds = 40 if quick else 48

    def warm_deployment():
        telemetry = Telemetry()
        cluster, coordinator = system.deploy_cluster(
            num_servers=3, telemetry=telemetry
        )
        client = system.client_for("superuser", server=cluster)
        jobs = [(client, list(query), k) for query in queries]
        coordinator.run_queries(jobs)  # untimed warmup: views + memos
        telemetry.suspend()
        coordinator.run_queries(jobs)  # warm the suspended state too
        telemetry.resume()
        return telemetry, coordinator, jobs

    deployments = [warm_deployment() for _ in range(deploys)]

    def sample(coordinator, jobs) -> float:
        # The untimed run re-warms the interpreter's per-call-site
        # specializations after a toggle flipped the instrument types.
        coordinator.run_queries(jobs)
        started = time.perf_counter()
        coordinator.run_queries(jobs)
        return time.perf_counter() - started

    # Collector pauses land on whichever sample is unlucky; parking the
    # collector keeps them out of the on/off comparison (steady-state
    # telemetry holds no cyclic garbage, so nothing accumulates).
    pair_ratios: list[float] = []
    best_off = best_on = float("inf")
    gc.collect()
    gc.disable()
    try:
        for round_index in range(rounds):
            for i, (telemetry, coordinator, jobs) in enumerate(deployments):
                on_seconds = off_seconds = 0.0
                on_first = (round_index + i) % 2 == 0
                for state in ("on", "off") if on_first else ("off", "on"):
                    if state == "on":
                        on_seconds = sample(coordinator, jobs)
                    else:
                        telemetry.suspend()
                        off_seconds = sample(coordinator, jobs)
                        telemetry.resume()
                pair_ratios.append(on_seconds / off_seconds)
                best_on = min(best_on, on_seconds)
                best_off = min(best_off, off_seconds)
    finally:
        gc.enable()
    pair_ratios.sort()
    quartile = len(pair_ratios) // 4
    central = pair_ratios[quartile : len(pair_ratios) - quartile]
    trimmed_mean = sum(central) / len(central)
    return {
        "num_queries": len(queries),
        "terms_per_query": len(queries[0]),
        "k": k,
        "deployments": deploys,
        "interleaved_rounds": rounds,
        "paired_samples": len(pair_ratios),
        "instrumented_ms_per_query": best_on / len(queries) * 1e3,
        "uninstrumented_ms_per_query": best_off / len(queries) * 1e3,
        "overhead_iqr": [
            round(pair_ratios[quartile] - 1.0, 4),
            round(pair_ratios[-1 - quartile] - 1.0, 4),
        ],
        "overhead_fraction": trimmed_mean - 1.0,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="seconds-scale CI configuration"
    )
    parser.add_argument(
        "--output",
        default="BENCH_hotpath.json",
        help="where to write the JSON perf record",
    )
    args = parser.parse_args()

    crypto_elements = 1500 if args.quick else 5000
    crypto_rounds = 4
    view_base = 2000 if args.quick else 20000
    view_patches = 500 if args.quick else 1500
    repeats = 3 if args.quick else 5
    num_queries = 8
    terms_per_query = 3
    k = 5

    mode = "quick" if args.quick else "full"
    print(
        f"== decrypt-skim throughput ({crypto_elements} elements, "
        f"{crypto_rounds}-round Zipf workload) =="
    )
    crypto = measure_crypto(crypto_elements, crypto_rounds, repeats)
    print(f"pre-PR reference  : {crypto['reference_mb_per_s']:.2f} MB/s")
    print(f"optimized         : {crypto['optimized_mb_per_s']:.2f} MB/s")
    print(f"workload speedup  : {crypto['speedup']:.2f}x")
    print(f"cold-pass speedup : {crypto['cold_speedup']:.2f}x")
    print(f"reject-path speedup: {crypto['reject_speedup']:.2f}x")

    print(f"\n== view-patch scaling ({view_base} vs {view_base * 10} elements) ==")
    views = measure_view_scaling(view_base, view_patches, repeats)
    print(f"patch at n={views['small']['view_size']:<7}: {views['small']['patch_us']:.2f} us")
    print(f"patch at n={views['large']['view_size']:<7}: {views['large']['patch_us']:.2f} us")
    print(f"10x-size cost ratio: {views['patch_cost_ratio_10x']:.2f}x")
    print(f"slice (count=10) at n={views['large']['view_size']}: {views['large']['slice_us']:.2f} us")

    print(f"\n== end-to-end coordinator queries ({mode} corpus) ==")
    system = build_system(args.quick)
    queries = sample_queries(system, num_queries, terms_per_query)
    assert queries, "could not assemble multi-term queries"
    end_to_end = measure_end_to_end(system, queries, k)
    print(f"direct path       : {end_to_end['direct_ms_per_query']:.2f} ms/query")
    print(f"coordinator path  : {end_to_end['coordinator_ms_per_query']:.2f} ms/query")

    print("\n== instrumentation overhead (telemetry on vs Null instruments) ==")
    instrumentation = measure_instrumentation_overhead(args.quick)
    print(
        f"uninstrumented    : "
        f"{instrumentation['uninstrumented_ms_per_query']:.3f} ms/query"
    )
    print(
        f"instrumented      : "
        f"{instrumentation['instrumented_ms_per_query']:.3f} ms/query"
    )
    print(
        f"overhead          : {instrumentation['overhead_fraction'] * 100:.2f}% "
        f"(budget {INSTRUMENTATION_BUDGET * 100:.0f}%)"
    )

    record = {
        "benchmark": "hotpath",
        "schema_version": 1,
        "mode": mode,
        "python": platform.python_version(),
        "crypto": crypto,
        "views": views,
        "end_to_end": end_to_end,
        "instrumentation": instrumentation,
    }
    with open(args.output, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {args.output}")

    failures = []
    if crypto["speedup"] < 5.0:
        failures.append(
            f"decrypt-skim speedup {crypto['speedup']:.2f}x < 5x target"
        )
    if views["patch_cost_ratio_10x"] > 2.0:
        failures.append(
            f"view patches are not sublinear: 10x size cost "
            f"{views['patch_cost_ratio_10x']:.2f}x > 2x"
        )
    if instrumentation["overhead_fraction"] > INSTRUMENTATION_BUDGET:
        failures.append(
            f"telemetry overhead {instrumentation['overhead_fraction'] * 100:.2f}% "
            f"blows the {INSTRUMENTATION_BUDGET * 100:.0f}% budget"
        )

    print()
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "OK: >=5x decrypt-skim, sublinear view patches, "
        "coordinator results identical to the direct path, "
        "telemetry within its overhead budget"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
