"""§6.3 — storage overhead: none, compared with an ordinary inverted index.

"Zerber+R attaches a transformed relevance score TRS to each posting
element, which is sufficient for effective posting element ranking on the
server side.  Thus it does not introduce any storage overhead compared
with an ordinary inverted index."
"""

from __future__ import annotations

from benchmarks.conftest import print_series
from repro.evalmetrics.storage import TRS_BITS, compare_storage


def test_sec63_storage_overhead(benchmark, collections):
    def measure():
        return {
            c.name: compare_storage(c.ordinary, c.system.server)
            for c in collections
        }

    reports = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for name, report in reports.items():
        rows.append(
            [
                name,
                report.ordinary_elements,
                f"{report.score_slots_per_element_ordinary:.0f}",
                f"{report.score_slots_per_element_zerber_r:.0f}",
                f"{report.ranking_overhead_bits_per_element:+.0f}",
            ]
        )
    print_series(
        "§6.3: ranking-storage accounting",
        [
            "collection",
            "posting elements",
            "score slots/element (ordinary)",
            "score slots/element (Zerber+R)",
            "ranking overhead bits/element",
        ],
        rows,
    )

    for name, report in reports.items():
        # Identical element counts and exactly one score slot each.
        assert report.ordinary_elements == report.zerber_r_elements, name
        assert report.ordinary_score_slots == report.ordinary_elements
        assert report.zerber_r_score_slots == report.zerber_r_elements
        # The §6.3 claim: zero ranking overhead (one TRS replaces one score).
        assert report.ranking_overhead_bits_per_element == 0.0

        # Transparency: the *encryption* overhead (a Zerber property that
        # exists with or without ranking) is what separates total bits.
        cipher_bits = report.zerber_r_bits - report.zerber_r_elements * TRS_BITS
        print_series(
            f"§6.3 detail ({name})",
            ["component", "bits/element"],
            [
                ["plaintext element (ordinary)", 64],
                ["TRS (Zerber+R ranking)", TRS_BITS],
                [
                    "ciphertext (Zerber encryption, not ranking)",
                    f"{cipher_bits / report.zerber_r_elements:.0f}",
                ],
            ],
        )
