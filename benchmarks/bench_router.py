"""Coordinator microbenchmark: coalescing + heat-aware shards + read balance.

Three claims, all load-bearing for the ROADMAP's concurrent-traffic goal:

1. **Cross-query coalescing** — N concurrent multi-term queries served
   through a :class:`~repro.core.router.Coordinator` cost one envelope
   per touched shard server per scheduling tick, instead of one batched
   call per touched server *per query* when every client talks to the
   cluster directly.  Results stay byte-identical to the direct path,
   and the coalesce ratio re-derived from the telemetry registry's
   ``coordinator_envelope_slices`` histogram must agree with the
   coordinator's own counters.
2. **Heat-aware placement** — under a Zipf-skewed single-term workload,
   rebalancing with :class:`~repro.core.placement.HeatWeightedPlacement`
   yields a lower max/mean per-server load ratio than static round-robin,
   and the migration (placement epoch bump) does not change any query's
   results.
3. **Replica read balancing** — the seed served every fetch from the
   first live replica, so with replication f > 1 the trailing replicas
   idled while each list's whole read load hit its primary.  Rotating
   reads across caught-up replicas
   (:class:`~repro.core.placement.RotatingReads`) cuts the max/mean
   per-server load ratio without changing any result.

A fourth, event-loop claim runs under ``--arrival-mode=open-loop``:

4. **Open-loop arrivals + backpressure** — sessions arrive on the
   coordinator's virtual clock at a Poisson-ish rate (seeded from the
   loop's own RNG) instead of being submitted as one closed batch.
   Past saturation the bounded queue *sheds* the excess with
   deterministic retry hints — the open-loop contract: a refused
   arrival was never acknowledged, every admitted session completes,
   and admitted-work latency stays bounded by the queue depth instead
   of growing with the offered load.  Deferred deliveries
   (``round_latency``) overlap the decrypt of round *n* with the
   envelope of round *n + 1* (``pipeline_overlap``).  Reported as
   per-rate p50/p95/p99 session latencies in virtual ticks.  (The
   shed-then-retry admission path is exercised by the
   ``tests/test_eventloop_backpressure.py`` property suite.)

Standalone script (not collected by pytest):

    PYTHONPATH=src python benchmarks/bench_router.py [--quick]
        [--arrival-mode {closed-loop,open-loop}] [--output PATH]

``--quick`` runs a seconds-scale configuration for CI smoke checks.
``--arrival-mode=open-loop`` runs claim 4 only; ``--output`` writes the
JSON perf record (committed as ``BENCH_router.json``).
Exits non-zero if any claim fails.
"""

from __future__ import annotations

import argparse
import json
import math

from repro import ResponsePolicy, SystemConfig, ZerberRSystem
from repro.core.placement import (
    HeatWeightedPlacement,
    RoundRobinPlacement,
    max_over_mean,
)
from repro.corpus import studip_like, tiny_corpus
from repro.evalmetrics.workload import coalesced_workload_requests
from repro.obs import Telemetry


def build_system(quick: bool) -> ZerberRSystem:
    if quick:
        corpus = tiny_corpus(seed=3)
    else:
        corpus = studip_like(num_documents=200, vocabulary_size=3000, seed=7)
    return ZerberRSystem.build(corpus, SystemConfig(r=4.0, seed=41))


def sample_queries(
    system: ZerberRSystem, num_queries: int, terms_per_query: int
) -> list[list[str]]:
    """Multi-term queries sharing a hot head term (the Fig. 10 skew)."""
    by_df = [
        t
        for t in system.vocabulary.terms_by_frequency()
        if system.vocabulary.document_frequency(t) >= 2
    ]
    hot = by_df[0]
    queries: list[list[str]] = []
    cursor = 1
    while len(queries) < num_queries and cursor + terms_per_query - 1 < len(by_df):
        tail = by_df[cursor : cursor + terms_per_query - 1]
        cursor += terms_per_query - 1
        queries.append([hot, *tail])
    distinct = len(queries)
    while queries and len(queries) < num_queries:  # small corpora: recycle
        queries.append(list(queries[len(queries) % distinct]))
    return queries[:num_queries]


def measure_coalescing(system: ZerberRSystem, queries: list[list[str]], k: int):
    """Server calls + result identity: direct per-client vs coordinator."""
    num_users = 4
    groups = set(system.corpus.groups())
    for i in range(num_users):
        system.register_user(f"bench-user{i}", groups)
    telemetry = Telemetry()
    cluster, coordinator = system.deploy_cluster(num_servers=3, telemetry=telemetry)
    jobs = []
    for i, query in enumerate(queries):
        client = system.client_for(f"bench-user{i % num_users}", server=cluster)
        jobs.append((client, query, k))

    before = cluster.total_calls
    direct = [client.query_multi_batched(query, k) for client, query, k in jobs]
    direct_calls = cluster.total_calls - before

    before = cluster.total_calls
    coalesced = coordinator.run_queries(jobs)
    coalesced_calls = cluster.total_calls - before

    for d, c in zip(direct, coalesced):
        assert list(c.ranked) == list(d.ranked), (
            "coordinator ranking diverged from direct path",
            d.ranked,
            c.ranked,
        )
        assert [t.elements_transferred for t in c.traces] == [
            t.elements_transferred for t in d.traces
        ], "coordinator shipped different bytes than the direct path"

    model_direct, model_coalesced = coalesced_workload_requests(
        system.merge_plan,
        queries,
        {
            term: system.vocabulary.document_frequency(term)
            for term in system.vocabulary
        },
        k,
        ResponsePolicy(initial_size=k),
        cluster.num_servers,
    )
    # The same coalescing measured from the telemetry registry: the
    # coordinator_envelope_slices histogram sees one observation per
    # envelope (count) carrying its slice payload (sum), so the mean is
    # the coalesce ratio and both must agree with the coordinator's own
    # counters.
    envelope_series = telemetry.registry.snapshot()[
        "coordinator_envelope_slices"
    ]["series"]
    envelopes = sum(entry["count"] for entry in envelope_series)
    slices = sum(entry["sum"] for entry in envelope_series)
    registry_coalesce = {
        "envelopes": envelopes,
        "slices": int(slices),
        "slices_per_envelope": slices / max(1, envelopes),
    }
    return (
        direct_calls,
        coalesced_calls,
        coordinator.stats,
        (model_direct, model_coalesced),
        registry_coalesce,
    )


def zipf_workload(system: ZerberRSystem, num_terms: int, scale: int) -> list[str]:
    """Single-term fetch workload with Zipf-ish frequencies over hot terms."""
    by_df = [
        t
        for t in system.vocabulary.terms_by_frequency()
        if system.vocabulary.document_frequency(t) >= 2
    ][:num_terms]
    workload: list[str] = []
    for rank, term in enumerate(by_df):
        workload.extend([term] * max(1, math.ceil(scale / (rank + 1))))
    return workload


def measure_placement(system: ZerberRSystem, workload: list[str], k: int):
    """Max/mean per-server load: static round-robin vs heat-weighted."""
    num_servers = 4
    rr_cluster, _ = system.deploy_cluster(
        num_servers=num_servers, placement=RoundRobinPlacement()
    )
    hw_cluster, _ = system.deploy_cluster(
        num_servers=num_servers, placement=HeatWeightedPlacement()
    )
    rr_client = system.client_for("superuser", server=rr_cluster)
    hw_client = system.client_for("superuser", server=hw_cluster)

    # Warm-up: accumulate heat on both clusters (round-robin ignores it).
    warm_results = {}
    for term in workload:
        rr_client.query(term, k)
        warm_results[term] = hw_client.query(term, k).doc_ids()

    moves = hw_cluster.rebalance()
    epoch = hw_cluster.placement_epoch

    # Results must survive the migration / epoch bump byte-identically.
    for term in dict.fromkeys(workload):
        assert hw_client.query(term, k).doc_ids() == warm_results[term], (
            "migration changed query results",
            term,
        )

    # Measurement window: same workload again, loads counted per server.
    rr_before = rr_cluster.per_server_load()
    hw_before = hw_cluster.per_server_load()
    for term in workload:
        rr_client.query(term, k)
        hw_client.query(term, k)
    rr_loads = [a - b for a, b in zip(rr_cluster.per_server_load(), rr_before)]
    hw_loads = [a - b for a, b in zip(hw_cluster.per_server_load(), hw_before)]
    return rr_loads, hw_loads, len(moves), epoch


def measure_read_balancing(system: ZerberRSystem, workload: list[str], k: int):
    """Max/mean per-server load with primary-only vs rotated replica reads."""
    num_servers, replication = 4, 3
    primary_cluster, _ = system.deploy_cluster(
        num_servers=num_servers, replication=replication
    )
    rotated_cluster, _ = system.deploy_cluster(
        num_servers=num_servers, replication=replication, read_strategy="rotate"
    )
    primary_client = system.client_for("superuser", server=primary_cluster)
    rotated_client = system.client_for("superuser", server=rotated_cluster)
    for term in workload:
        expected = primary_client.query(term, k).doc_ids()
        assert rotated_client.query(term, k).doc_ids() == expected, (
            "rotated replica reads changed query results",
            term,
        )
    return primary_cluster.per_server_load(), rotated_cluster.per_server_load()


def _percentile(sorted_values: list[int], q: float) -> int:
    """Nearest-rank percentile of an already-sorted latency sample."""
    if not sorted_values:
        return 0
    index = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def _probe_saturation(
    system: ZerberRSystem, queries: list[list[str]], k: int, round_latency: int
) -> float:
    """Sessions completed per virtual tick with a full closed batch.

    The coordinator coalesces everything that is ready, so a saturated
    batch is its best case — the rate it sustains here is the ``1x``
    anchor for the open-loop arrival sweep.
    """
    cluster, coordinator = system.deploy_cluster(
        num_servers=3, round_latency=round_latency
    )
    client = system.client_for("superuser", server=cluster)
    # initial_size=1 forces the paper's doubling rule to take several
    # rounds per session, so sessions finish at staggered ticks and the
    # open-loop sweep can actually exhibit round pipelining.
    policy = ResponsePolicy(initial_size=1)
    sessions = [client.open_multi_session(q, k, policy=policy) for q in queries]
    for session in sessions:
        coordinator.submit_arrival(session, at=0)
    ticks = coordinator.drain()
    return len(sessions) / max(1, ticks)


def measure_open_loop(
    system: ZerberRSystem,
    queries: list[list[str]],
    k: int,
    *,
    rate: float,
    horizon: int,
    round_latency: int,
    max_queue_depth: int,
) -> dict[str, object]:
    """Drive seeded open-loop arrivals at *rate* sessions/tick."""
    from repro.core.eventloop import MAINTENANCE

    cluster, coordinator = system.deploy_cluster(
        num_servers=3,
        round_latency=round_latency,
        max_queue_depth=max_queue_depth,
    )
    client = system.client_for("superuser", server=cluster)
    rng = coordinator.loop.rng  # seeded: the sweep is reproducible
    policy = ResponsePolicy(initial_size=1)  # multi-round sessions

    tracked: dict[int, tuple[object, int]] = {}
    latencies: list[int] = []

    def reap() -> None:
        now = coordinator.loop.now
        for key in [key for key, (s, _) in tracked.items() if s.done]:
            _, arrived = tracked.pop(key)
            latencies.append(now - arrived)

    coordinator.loop.every(
        1, reap, name="latency-probe", priority=MAINTENANCE
    )

    arrivals = 0
    accumulator = 0.0
    for tick in range(horizon):
        accumulator += rate
        due = int(accumulator)
        accumulator -= due
        # Bernoulli on the fractional remainder keeps the long-run rate
        # honest without synchronizing arrivals to integer boundaries.
        if accumulator > 0 and rng.random() < accumulator:
            due += 1
            accumulator = 0.0
        for _ in range(due):
            session = client.open_multi_session(
                queries[rng.randrange(len(queries))], k, policy=policy
            )
            tracked[id(session)] = (session, tick)
            # Open-loop contract: a shed arrival is refused outright (it
            # was never acknowledged); the caller-owned retry path is
            # covered by the backpressure property suite.
            coordinator.submit_arrival(session, at=tick, retry_on_shed=False)
            arrivals += 1
    ticks = coordinator.drain()
    reap()  # sessions finishing on the final tick
    for key, (session, _) in list(tracked.items()):
        if not session.done:  # shed, never admitted: not a latency sample
            del tracked[key]
    latencies.sort()
    sheds = coordinator.stats.backpressure_sheds
    return {
        "rate_sessions_per_tick": round(rate, 4),
        "arrivals": arrivals,
        "admitted": arrivals - sheds,
        "completed": coordinator.stats.sessions_completed,
        "unfinished": len(tracked),
        "sheds": sheds,
        "pipeline_overlap": coordinator.stats.pipeline_overlap,
        "ticks": ticks,
        "latency_p50_ticks": _percentile(latencies, 0.50),
        "latency_p95_ticks": _percentile(latencies, 0.95),
        "latency_p99_ticks": _percentile(latencies, 0.99),
    }


def run_open_loop_claim(
    system: ZerberRSystem, queries: list[list[str]], k: int, quick: bool
) -> tuple[dict[str, object], list[str]]:
    round_latency = 2
    horizon = 24 if quick else 60
    saturation = _probe_saturation(system, queries, k, round_latency)
    # The queue bound sits well under the 2x backlog so overload visibly
    # sheds, but far enough above steady 0.5x occupancy to admit it.
    max_queue_depth = max(2, len(queries) // 2)
    sweep = []
    for multiplier in (0.5, 1.0, 2.0):
        result = measure_open_loop(
            system,
            queries,
            k,
            rate=saturation * multiplier,
            horizon=horizon,
            round_latency=round_latency,
            max_queue_depth=max_queue_depth,
        )
        result["rate_multiplier"] = multiplier
        sweep.append(result)

    print(
        f"\n== open-loop arrivals (saturation {saturation:.2f} sessions/tick, "
        f"horizon {horizon} ticks, round_latency {round_latency}, "
        f"queue depth {max_queue_depth}) =="
    )
    for result in sweep:
        print(
            f"  {result['rate_multiplier']:>3}x: "
            f"{result['arrivals']:>3} arrivals "
            f"({result['admitted']:>3} admitted, {result['sheds']:>3} shed), "
            f"overlap {result['pipeline_overlap']:>3}, "
            f"latency p50/p95/p99 = {result['latency_p50_ticks']}/"
            f"{result['latency_p95_ticks']}/{result['latency_p99_ticks']} ticks "
            f"({result['ticks']} ticks total)"
        )

    failures = []
    overloaded = sweep[-1]
    for result in sweep:
        if result["unfinished"] or result["completed"] != result["admitted"]:
            failures.append(
                f"open-loop at {result['rate_multiplier']}x lost admitted "
                f"work ({result['completed']}/{result['admitted']} completed)"
            )
    if overloaded["sheds"] == 0:
        failures.append(
            "no backpressure sheds at 2x saturation — the queue bound "
            "never engaged"
        )
    if overloaded["pipeline_overlap"] == 0:
        failures.append(
            "no pipeline overlap at 2x saturation despite round_latency > 0"
        )
    # Graceful degradation: admitted-work tail latency is bounded by the
    # queue, not by the offered load — 2x overload must not push the p99
    # past the sweep horizon.
    if overloaded["latency_p99_ticks"] > horizon:
        failures.append(
            f"admitted-work p99 latency {overloaded['latency_p99_ticks']} "
            f"ticks exceeds the {horizon}-tick horizon at 2x saturation"
        )
    record = {
        "saturation_sessions_per_tick": round(saturation, 4),
        "horizon_ticks": horizon,
        "round_latency": round_latency,
        "max_queue_depth": max_queue_depth,
        "sweep": sweep,
    }
    return record, failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="seconds-scale CI configuration"
    )
    parser.add_argument(
        "--arrival-mode",
        choices=("closed-loop", "open-loop"),
        default="closed-loop",
        help="closed-loop runs the three coalescing/placement claims; "
        "open-loop runs the event-driven arrival + backpressure claim",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="optional path for the JSON perf record "
        "(e.g. BENCH_router.json)",
    )
    args = parser.parse_args()

    num_queries = 8
    terms_per_query = 3
    k = 5

    print(f"building system ({'quick' if args.quick else 'full'} mode)...")
    system = build_system(args.quick)
    queries = sample_queries(system, num_queries, terms_per_query)
    assert len(queries) == num_queries, "could not assemble concurrent queries"

    if args.arrival_mode == "open-loop":
        record, failures = run_open_loop_claim(system, queries, k, args.quick)
        if args.output:
            with open(args.output, "w") as handle:
                json.dump(
                    {
                        "benchmark": "router",
                        "mode": "open-loop",
                        "quick": args.quick,
                        "open_loop": record,
                    },
                    handle,
                    indent=2,
                    sort_keys=True,
                )
                handle.write("\n")
            print(f"\nwrote {args.output}")
        print()
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        print(
            "OK: open-loop arrivals pipeline rounds (overlap > 0) and the "
            "overloaded queue sheds with retry hints without losing work"
        )
        return 0

    direct_calls, coalesced_calls, stats, model, registry = measure_coalescing(
        system, queries, k
    )
    print(
        f"\n== cross-query coalescing "
        f"({num_queries} concurrent x {terms_per_query} terms, k={k}) =="
    )
    print(f"server calls, direct per-client batching : {direct_calls}")
    print(f"server calls, coordinator envelopes      : {coalesced_calls}")
    print(f"slices shared across sessions            : {stats.slices_shared}")
    print(f"analytic model (direct, coalesced)       : {model}")
    print(
        f"registry envelopes / slices              : "
        f"{registry['envelopes']} / {registry['slices']}"
    )
    print(
        f"registry coalesce ratio (slices/envelope): "
        f"{registry['slices_per_envelope']:.2f}"
    )

    workload = zipf_workload(
        system, num_terms=8 if args.quick else 24, scale=6 if args.quick else 24
    )
    rr_loads, hw_loads, num_moves, epoch = measure_placement(system, workload, k)
    rr_ratio, hw_ratio = max_over_mean(rr_loads), max_over_mean(hw_loads)
    print(f"\n== heat-aware placement (Zipf workload, {len(workload)} queries) ==")
    print(f"round-robin per-server load  : {rr_loads} (max/mean {rr_ratio:.2f})")
    print(f"heat-weighted per-server load: {hw_loads} (max/mean {hw_ratio:.2f})")
    print(f"lists migrated               : {num_moves} (placement epoch {epoch})")

    primary_loads, rotated_loads = measure_read_balancing(system, workload, k)
    primary_ratio = max_over_mean(primary_loads)
    rotated_ratio = max_over_mean(rotated_loads)
    print(f"\n== replica read balancing (replication=3, {len(workload)} queries) ==")
    print(
        f"primary-only per-server load : {primary_loads} "
        f"(max/mean {primary_ratio:.2f})"
    )
    print(
        f"rotated per-server load      : {rotated_loads} "
        f"(max/mean {rotated_ratio:.2f})"
    )

    failures = []
    if (
        registry["envelopes"] != stats.server_calls
        or registry["slices"] != stats.slices_sent
    ):
        failures.append(
            f"telemetry registry disagrees with coordinator counters "
            f"(envelopes {registry['envelopes']} vs {stats.server_calls}, "
            f"slices {registry['slices']} vs {stats.slices_sent})"
        )
    if coalesced_calls * 2 > direct_calls:
        failures.append(
            f"coordinator did not halve server calls "
            f"({coalesced_calls} vs {direct_calls})"
        )
    if hw_ratio >= rr_ratio:
        failures.append(
            f"heat-weighted placement did not beat round-robin "
            f"(max/mean {hw_ratio:.3f} vs {rr_ratio:.3f})"
        )
    if num_moves == 0:
        failures.append("rebalance moved no lists despite skewed heat")
    if rotated_ratio >= primary_ratio:
        failures.append(
            f"rotated replica reads did not beat primary-only routing "
            f"(max/mean {rotated_ratio:.3f} vs {primary_ratio:.3f})"
        )

    print()
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "OK: coordinator >=2x fewer server calls, identical results; "
        "heat-weighted placement balances the Zipf workload; rotated "
        "replica reads cut the per-server read skew"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
