"""§6.6 — network bandwidth model, fed with measured element counts.

The paper's calculation on ODP data: ~85 posting elements returned per
query term on average, 64-bit elements ⇒ ~0.7 KB per query-term response;
2.4 terms/query; 250 B snippets ⇒ ~2.5 KB of snippets; total ≈3.5 KB per
top-10 answer vs. Google 15 KB / Altavista 37 KB / Yahoo 59 KB; a
100 Mb/s server link sustains ≈750 queries/s.

We measure elements-per-query-term on the synthetic ODP collection (top-10
queries at the paper's b=10 policy) and run the same arithmetic.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import cached_workload_traces, print_series
from repro.evalmetrics.netmodel import COMPETITOR_RESPONSE_KB, NetworkModel

K = 10
B = 10


def test_sec66_network_bandwidth(benchmark, odp):
    traces = cached_workload_traces(odp, K, B)

    def measure():
        return float(np.mean([t.elements_transferred for t in traces]))

    elements_per_term = benchmark.pedantic(measure, rounds=1, iterations=1)
    model = NetworkModel()

    table = model.comparison_table(elements_per_term, K)
    print_series(
        f"§6.6: top-{K} response sizes (measured {elements_per_term:.1f} "
        "elements per query term)",
        ["system", "response KB"],
        [[name, f"{kb:.1f}"] for name, kb in table],
    )
    print_series(
        "§6.6: derived throughput",
        ["metric", "value"],
        [
            [
                "per-term response KB",
                f"{model.per_term_response_kb(elements_per_term):.2f}",
            ],
            ["snippets KB (top-10)", f"{model.snippets_kb(K):.2f}"],
            ["queries/second @100Mb/s", f"{model.queries_per_second(elements_per_term):.0f}"],
            ["modem download seconds", f"{model.modem_seconds(elements_per_term, K):.2f}"],
        ],
    )

    zerber_kb = dict(table)["Zerber+R"]
    # The paper's qualitative claims: a Zerber+R answer is a few KB —
    # smaller than every competitor's page — and the server sustains at
    # least the paper's ~750 queries/s.
    assert zerber_kb < COMPETITOR_RESPONSE_KB["Google"]
    assert zerber_kb < 10.0
    assert model.queries_per_second(elements_per_term) >= 750
    assert model.modem_seconds(elements_per_term, K) < 2.0

    # And the measured elements-per-term is in the paper's order of
    # magnitude (tens, not thousands): the TRS protocol prunes the lists.
    assert elements_per_term < 300
