"""Extension ablation — bucketed IDF for multi-term queries.

The paper drops IDF entirely (§3.2: exact IDF leaks collection
statistics) and flags its confidential inclusion as future work.  This
bench sweeps the bucket count of :class:`repro.core.idf.BucketedIdf` and
measures, on multi-term queries over the StudIP-like collection:

* accuracy — top-10 overlap with the exact-TFxIDF reference ranking of
  the ordinary index;
* leakage — worst-case published bits per term (log2 #buckets), vs. the
  log2(N) bits exact IDF exposes.

Expected shape: accuracy grows monotonically from the paper's no-IDF
baseline towards the exact-IDF ceiling, while leakage stays a handful of
bits.
"""

from __future__ import annotations

import math

import numpy as np

from benchmarks.conftest import print_series
from repro.core.idf import BucketedIdf, aggregate_with_idf
from repro.evalmetrics.retrieval import overlap_at_k

K = 10
N_QUERIES = 30
BUCKET_SWEEP = [1, 2, 4, 8, 16]


def _multi_term_queries(collection, rng):
    """Two-term queries pairing a frequent with a mid-frequency term."""
    ordered = collection.vocabulary.terms_by_frequency()
    head = [t for t in ordered[:80] if t in collection.system.rstf_model]
    mid = [
        t
        for t in ordered[200:1200]
        if collection.vocabulary.document_frequency(t) >= 5
        and t in collection.system.rstf_model
    ]
    queries = []
    for _ in range(N_QUERIES):
        queries.append(
            (
                head[int(rng.integers(0, len(head)))],
                mid[int(rng.integers(0, len(mid)))],
            )
        )
    return queries


def test_ext_idf_bucket_sweep(benchmark, studip):
    rng = np.random.default_rng(33)
    queries = _multi_term_queries(studip, rng)
    client = studip.system.client_for("superuser")
    training_docs = [
        studip.corpus.stats(d.doc_id)
        for d in studip.corpus.sample(0.30, np.random.default_rng(34))
    ]

    def measure():
        per_query_hits = []
        references = []
        for terms in queries:
            hits = {
                term: client.query(term, k=4 * K).hits for term in set(terms)
            }
            per_query_hits.append(hits)
            reference = [
                d for d, _ in studip.ordinary.top_k_multi(list(set(terms)), K)
            ]
            references.append(reference)
        results = {}
        # Paper baseline: plain summation, no IDF.
        results["none"] = _mean_overlap(per_query_hits, references, idf=None)
        for buckets in BUCKET_SWEEP:
            idf = BucketedIdf.train(training_docs, num_buckets=buckets)
            results[buckets] = _mean_overlap(per_query_hits, references, idf=idf)
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    n_docs = len(studip.corpus)
    rows = [["no IDF (paper)", f"{results['none']:.3f}", "0.0"]]
    for buckets in BUCKET_SWEEP:
        rows.append(
            [
                f"{buckets} buckets",
                f"{results[buckets]:.3f}",
                f"{math.log2(buckets):.1f}",
            ]
        )
    rows.append(["exact IDF (leaks df)", "1.000*", f"{math.log2(n_docs):.1f}"])
    print_series(
        f"Extension: bucketed IDF — top-{K} overlap with exact TFxIDF vs leakage "
        "(* by definition of the reference)",
        ["IDF variant", "overlap@10", "published bits/term"],
        rows,
    )

    # Shape: enough buckets beat the no-IDF baseline, and the best bucketed
    # variant closes most of the gap to the exact reference at a few bits.
    best_bucketed = max(results[b] for b in BUCKET_SWEEP)
    assert best_bucketed >= results["none"]
    assert best_bucketed > 0.6
    # 1 bucket == no information == (near) the no-IDF ranking behaviour.
    assert math.isclose(
        results[1], results["none"], abs_tol=0.15
    ), (results[1], results["none"])


def _mean_overlap(per_query_hits, references, idf):
    overlaps = []
    for hits, reference in zip(per_query_hits, references):
        ranked = aggregate_with_idf(hits, idf=idf)
        got = [d for d, _ in ranked[:K]]
        overlaps.append(overlap_at_k(got, reference, K))
    return float(np.mean(overlaps))
