"""Cross-system comparison (the paper's Table-free headline claims).

Not a numbered figure, but the paper's §1/§3/§7 comparisons in one bench:

* ordinary index — exact top-k, k elements/query, no confidentiality;
* μ-Serv — false positives, whole posting set per query, degraded precision;
* OPS mapping [21] — server-side top-k but exposed document frequency and
  rebuild-on-insert;
* Zerber — r-confidential but whole-merged-list downloads;
* Zerber+R — r-confidential with near-ordinary bandwidth.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_series
from repro.baselines.mu_serv import MuServConfig, MuServIndex
from repro.baselines.ops_index import OrderPreservingIndex
from repro.baselines.zerber import ZerberSystem
from repro.core.protocol import ResponsePolicy

K = 10
N_TERMS = 40


def test_baseline_bandwidth_and_precision(benchmark, studip):
    terms = [
        t
        for t in studip.workload_terms(N_TERMS * 2)
        if studip.vocabulary.document_frequency(t) >= 1
    ][:N_TERMS]

    zerber = ZerberSystem.build(studip.corpus, r=4.0, seed=31)
    mu_serv = MuServIndex.build(studip.corpus, MuServConfig(false_positive_rate=1.0))
    ops = OrderPreservingIndex.build(studip.corpus)
    policy = ResponsePolicy(initial_size=K)

    def measure():
        per_system = {"ordinary": [], "mu-serv": [], "ops": [], "zerber": [], "zerber+r": []}
        precisions = []
        for term in terms:
            per_system["ordinary"].append(
                studip.ordinary.top_k(term, K) and min(
                    K, studip.vocabulary.document_frequency(term)
                )
            )
            outcome = mu_serv.query(term)
            per_system["mu-serv"].append(outcome.elements_transferred)
            precisions.append(outcome.precision)
            per_system["ops"].append(min(K, ops.visible_document_frequency(term)))
            per_system["zerber"].append(
                zerber.query(term, K).trace.elements_transferred
            )
            per_system["zerber+r"].append(
                studip.system.query(term, K, policy=policy).trace.elements_transferred
            )
        return per_system, float(np.mean(precisions))

    per_system, mu_precision = benchmark.pedantic(measure, rounds=1, iterations=1)

    means = {name: float(np.mean(vals)) for name, vals in per_system.items()}
    rows = [
        ["ordinary", f"{means['ordinary']:.1f}", "none", "exact"],
        ["mu-serv", f"{means['mu-serv']:.1f}", "probabilistic", f"precision {mu_precision:.2f}"],
        ["OPS [21]", f"{means['ops']:.1f}", "df exposed", "exact"],
        ["Zerber", f"{means['zerber']:.1f}", "r-confidential", "exact (client ranks)"],
        ["Zerber+R", f"{means['zerber+r']:.1f}", "r-confidential", "exact"],
    ]
    print_series(
        f"Cross-system: mean elements transferred per top-{K} query "
        f"({N_TERMS} workload terms)",
        ["system", "elements/query", "confidentiality", "result quality"],
        rows,
    )

    # Headline orderings:
    # Zerber+R ships far less than Zerber (server-side top-k works) ...
    assert means["zerber+r"] < means["zerber"] / 2
    # ... while staying within a small multiple of the ordinary index.
    assert means["zerber+r"] < 12 * means["ordinary"]
    # μ-Serv degrades precision below 1 (false positives).
    assert mu_precision < 0.999

    # OPS insert pathology: inserting fresh documents rebuilds term lists.
    doc_stats = studip.corpus.stats(studip.corpus.doc_ids()[0])
    fresh = type(doc_stats).from_counts(
        "brand-new-doc", dict(list(doc_stats.counts.items())[:20])
    )
    rebuilt = ops.insert(fresh)
    print_series(
        "OPS insert cost",
        ["metric", "value"],
        [["term lists rebuilt by one insert", rebuilt]],
    )
    assert rebuilt >= 0
