"""Fig. 12 — average number of requests to obtain the top-k, vs. initial
response size b, for k ∈ {1, 10, 50}, on both collections.

Paper shape: requests decrease in b; "with an initial response size of
approximately 10 elements most of the query terms return the top-10
results within 2 requests"; pushing requests to 1 for all terms needs a
much larger (and bandwidth-wasteful) b.

The batched section re-counts requests honestly for multi-term queries:
per-term request counts (the figure's statistic) stay unchanged, but the
server calls a session actually issues collapse to the lockstep round
count, which is what a latency budget buys.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import cached_workload_traces, print_series
from repro.evalmetrics.bandwidth import (
    average_num_requests,
    average_round_trips,
    batched_request_reduction,
    total_server_requests,
)

B_VALUES = [1, 2, 5, 10, 20, 50, 100]
K_VALUES = [1, 10, 50]
# The paper's query log averages 2.4 terms/query (§6.6); 3-term samples
# keep the batched accounting on the conservative side of that.
MULTI_TERM_QUERIES = 25
TERMS_PER_QUERY = 3


def test_fig12_requests_vs_initial_response_size(benchmark, collections):
    def measure():
        return {
            (c.name, k): {
                b: average_num_requests(cached_workload_traces(c, k, b))
                for b in B_VALUES
            }
            for c in collections
            for k in K_VALUES
        }

    series = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [
        [name, k, b, f"{mean_requests:.2f}"]
        for (name, k), curve in series.items()
        for b, mean_requests in curve.items()
    ]
    print_series(
        "Fig. 12: average number of requests for top-k",
        ["collection", "k", "b", "avg requests"],
        rows,
    )

    for (name, k), curve in series.items():
        values = [curve[b] for b in B_VALUES]
        # Monotone non-increasing in b (larger first responses can only
        # reduce follow-ups), modulo tiny sampling noise.
        assert all(a >= b - 0.05 for a, b in zip(values, values[1:])), (name, k)
        # The paper's b=10/k=10 observation: ~2 requests on average.
        if k == 10:
            assert curve[10] <= 2.5, (name, curve[10])
        # b=1 needs strictly more requests than b=100.
        assert curve[1] > curve[100] - 1e-9, (name, k)

    # Mean top-10 transfer at b=10 stays near the paper's "30 posting
    # elements in total" ballpark (1-3 doubling rounds).
    for c in collections:
        traces = cached_workload_traces(c, 10, 10)
        mean_elements = float(np.mean([t.elements_transferred for t in traces]))
        print_series(
            f"Fig. 12 check ({c.name}): top-10 @ b=10",
            ["metric", "value"],
            [["mean elements transferred", f"{mean_elements:.1f}"]],
        )
        assert mean_elements <= 70.0


def test_fig12_batched_request_counts(collections):
    """Multi-term sessions: batched server calls vs per-term requests."""
    for c in collections:
        terms = c.workload_terms(MULTI_TERM_QUERIES * TERMS_PER_QUERY)
        queries = [
            terms[i : i + TERMS_PER_QUERY]
            for i in range(0, len(terms), TERMS_PER_QUERY)
        ]
        client = c.system.client_for("superuser")
        batch_traces = [
            client.query_multi_batched(query, k=10).batch_trace
            for query in queries
        ]
        per_term_requests = sum(t.num_subfetches for t in batch_traces)
        batched_requests = total_server_requests(batch_traces)
        reduction = batched_request_reduction(batch_traces)
        print_series(
            f"Fig. 12 batched ({c.name}): {len(queries)} x "
            f"{TERMS_PER_QUERY}-term queries, k=10",
            ["metric", "value"],
            [
                ["per-term server requests", per_term_requests],
                ["batched server requests", batched_requests],
                ["avg round-trips/session", f"{average_round_trips(batch_traces):.2f}"],
                ["request reduction", f"{reduction:.1%}"],
            ],
        )
        # Lockstep rounds can never exceed the per-term total, and with
        # multi-term queries they must strictly undercut it.
        assert batched_requests < per_term_requests
        # With 3 terms per query each round carries ~3 slices; even with
        # skewed per-term round counts a solid quarter of the round-trips
        # must disappear.
        assert reduction >= 0.25
