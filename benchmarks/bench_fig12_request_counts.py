"""Fig. 12 — average number of requests to obtain the top-k, vs. initial
response size b, for k ∈ {1, 10, 50}, on both collections.

Paper shape: requests decrease in b; "with an initial response size of
approximately 10 elements most of the query terms return the top-10
results within 2 requests"; pushing requests to 1 for all terms needs a
much larger (and bandwidth-wasteful) b.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import cached_workload_traces, print_series
from repro.evalmetrics.bandwidth import average_num_requests

B_VALUES = [1, 2, 5, 10, 20, 50, 100]
K_VALUES = [1, 10, 50]


def test_fig12_requests_vs_initial_response_size(benchmark, collections):
    def measure():
        return {
            (c.name, k): {
                b: average_num_requests(cached_workload_traces(c, k, b))
                for b in B_VALUES
            }
            for c in collections
            for k in K_VALUES
        }

    series = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [
        [name, k, b, f"{mean_requests:.2f}"]
        for (name, k), curve in series.items()
        for b, mean_requests in curve.items()
    ]
    print_series(
        "Fig. 12: average number of requests for top-k",
        ["collection", "k", "b", "avg requests"],
        rows,
    )

    for (name, k), curve in series.items():
        values = [curve[b] for b in B_VALUES]
        # Monotone non-increasing in b (larger first responses can only
        # reduce follow-ups), modulo tiny sampling noise.
        assert all(a >= b - 0.05 for a, b in zip(values, values[1:])), (name, k)
        # The paper's b=10/k=10 observation: ~2 requests on average.
        if k == 10:
            assert curve[10] <= 2.5, (name, curve[10])
        # b=1 needs strictly more requests than b=100.
        assert curve[1] > curve[100] - 1e-9, (name, k)

    # Mean top-10 transfer at b=10 stays near the paper's "30 posting
    # elements in total" ballpark (1-3 doubling rounds).
    for c in collections:
        traces = cached_workload_traces(c, 10, 10)
        mean_elements = float(np.mean([t.elements_transferred for t in traces]))
        print_series(
            f"Fig. 12 check ({c.name}): top-10 @ b=10",
            ["metric", "value"],
            [["mean elements transferred", f"{mean_elements:.1f}"]],
        )
        assert mean_elements <= 70.0
