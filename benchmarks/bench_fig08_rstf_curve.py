"""Fig. 8 — an example RSTF for one term ("Vergütung" in the paper).

Regenerates the input-score -> TRS curve for a mid-frequency term of the
StudIP-like collection: monotonically increasing, range (0, 1), steep in
score regions dense with training values and flat in empty regions.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_series
from repro.core.scoring import extract_term_scores
from repro.core.sigma import heuristic_sigma
from repro.core.rstf import train_rstf


def _training_scores(collection):
    """Scores of a mid-frequency term from the 30% training sample."""
    rng = np.random.default_rng(3)
    sample = collection.corpus.sample(0.30, rng)
    term_scores = extract_term_scores(
        collection.corpus.stats(d.doc_id) for d in sample
    )
    candidates = sorted(
        (t for t in term_scores if len(term_scores[t]) >= 15),
        key=lambda t: len(term_scores[t]),
    )
    term = candidates[len(candidates) // 2]
    return term, term_scores[term]


def test_fig08_example_rstf_curve(benchmark, studip):
    term, scores = _training_scores(studip)
    sigma = heuristic_sigma(scores)
    rstf = train_rstf(scores, sigma=sigma)
    grid = np.linspace(0.0, max(scores) * 1.3, 400)

    def measure():
        return rstf.transform(grid)

    curve = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [[f"{x:.4f}", f"{y:.4f}"] for x, y in zip(grid[::50], curve[::50])]
    print_series(
        f"Fig. 8: RSTF for term {term!r} ({len(scores)} training scores, "
        f"sigma={sigma:.1f})",
        ["rscore", "TRS"],
        rows,
    )

    # Monotone increasing over the whole domain.
    assert np.all(np.diff(curve) >= 0)
    # Range (0, 1): strictly inside at the extremes of the plotted window.
    assert curve[0] < 0.05
    assert curve[-1] > 0.9
    # Training scores map ~uniformly: the transformed training set covers
    # the unit interval (min near 0, max near 1, median near 0.5).
    trained = np.sort(rstf.transform(np.asarray(scores)))
    assert trained[0] < 0.2
    assert trained[-1] > 0.8
    assert 0.3 < np.median(trained) < 0.7
    # Steeper where data is dense: compare the slope at the densest score
    # decile against the slope far above the maximum score.
    dense_x = float(np.median(scores))
    step = grid[1] - grid[0]
    slope_at = lambda x: float(
        (rstf.transform(x + step) - rstf.transform(x - step)) / (2 * step)
    )
    assert slope_at(dense_x) > 5 * slope_at(max(scores) * 1.25)
