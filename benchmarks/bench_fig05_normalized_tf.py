"""Fig. 5 — log-log plot of *normalized* TF distributions: term specific,
but (unlike raw TF) not a power law.

The paper's point: normalized TF still identifies terms (an attacker
knowing typical distribution patterns could reverse-engineer them), which
is why the RSTF is needed — but its shape differs from raw TF's clean
power law.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_series
from repro.stats.distributions import fit_power_law
from repro.stats.uniformness import ks_distance


def _normalized_tf_histogram(collection, term, bins=20):
    scores = [
        collection.corpus.stats(d).rscore(term)
        for d in collection.corpus.doc_ids()
        if collection.corpus.stats(d).tf(term) > 0
    ]
    scores = np.asarray(scores)
    counts, edges = np.histogram(scores, bins=bins)
    centres = (edges[:-1] + edges[1:]) / 2
    return scores, centres, counts.astype(float)


def _pick_terms(collection):
    ordered = collection.vocabulary.terms_by_frequency()
    frequent = ordered[0]
    rare = next(
        t
        for t in ordered[len(ordered) // 50 :]
        if collection.vocabulary.document_frequency(t) >= 20
    )
    return frequent, rare


def test_fig05_normalized_tf_term_specific_not_power_law(benchmark, studip):
    frequent, rare = _pick_terms(studip)

    def measure():
        return {
            term: _normalized_tf_histogram(studip, term)
            for term in (frequent, rare)
        }

    histograms = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for label, term in (("frequent", frequent), ("rare", rare)):
        scores, centres, counts = histograms[term]
        for c, n in list(zip(centres, counts))[:8]:
            rows.append([label, term, f"{c:.4f}", int(n)])
    print_series(
        "Fig. 5: normalized TF histograms (head)",
        ["class", "term", "normalized tf", "#docs"],
        rows,
    )

    # Term specificity: the two terms' score distributions are clearly
    # distinguishable (large two-sample KS distance) — the attack surface
    # Fig. 5 illustrates.
    freq_scores = histograms[frequent][0]
    rare_scores = histograms[rare][0]
    specificity = ks_distance(freq_scores, rare_scores)
    print_series(
        "Fig. 5: term specificity",
        ["metric", "value"],
        [["two-sample KS distance", f"{specificity:.3f}"]],
    )
    assert specificity > 0.3

    # Not a power law: fitting counts vs. score on the log-log scale must
    # explain the data clearly worse than the raw-TF fit of Fig. 4 does.
    scores, centres, counts = histograms[frequent]
    mask = counts > 0
    fit = fit_power_law(centres[mask], counts[mask])
    print_series(
        "Fig. 5: log-log fit quality (should be poor)",
        ["term", "r^2"],
        [[frequent, f"{fit.r_squared:.3f}"]],
    )
    assert fit.r_squared < 0.9
