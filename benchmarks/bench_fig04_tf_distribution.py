"""Fig. 4 — log-log plot of raw TF distributions for a frequent and a rare
term: both follow a power law, separated by slope and value range.

Paper example: German "nicht" (frequent) vs. "management" (less frequent)
on the StudIP collection.  We pick the analogous df-rank terms from the
synthetic collection and regenerate the (tf, #documents) series.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_series
from repro.stats.distributions import fit_power_law


def _tf_distribution(collection, term):
    """(tf value, #docs with that tf, CCDF at that tf), tf >= 1.

    The CCDF ``P(TF >= v)`` is the robust way to check log-log linearity:
    a least-squares fit on raw counts is dominated by the sparse count-1
    tail, whereas a power law's CCDF is a clean straight line.
    """
    tfs = [
        collection.corpus.stats(d).tf(term)
        for d in collection.corpus.doc_ids()
        if collection.corpus.stats(d).tf(term) > 0
    ]
    values, counts = np.unique(tfs, return_counts=True)
    total = counts.sum()
    ccdf = 1.0 - np.concatenate([[0.0], np.cumsum(counts[:-1])]) / total
    return values.astype(float), counts.astype(float), ccdf


def _pick_terms(collection):
    ordered = collection.vocabulary.terms_by_frequency()
    frequent = ordered[0]  # the "nicht" analogue
    # The "management" analogue: a mid-frequency term with enough documents
    # to expose a distribution (df >= 20).
    rare = next(
        t
        for t in ordered[len(ordered) // 50 :]
        if collection.vocabulary.document_frequency(t) >= 20
    )
    return frequent, rare


def test_fig04_tf_distributions_follow_power_law(benchmark, studip):
    frequent, rare = _pick_terms(studip)

    def measure():
        return {
            term: _tf_distribution(studip, term) for term in (frequent, rare)
        }

    distributions = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    fits = {}
    for label, term in (("frequent", frequent), ("rare", rare)):
        values, counts, ccdf = distributions[term]
        fit = fit_power_law(values, ccdf)
        fits[label] = (term, values, counts, fit)
        for v, c in zip(values[:8], counts[:8]):
            rows.append([label, term, int(v), int(c)])
    print_series(
        "Fig. 4: raw TF distribution (log-log head)",
        ["class", "term", "tf", "#docs"],
        rows,
    )
    print_series(
        "Fig. 4: power-law fits on the TF CCDF (log-log linearity)",
        ["class", "term", "slope", "r^2", "max tf"],
        [
            [label, term, f"{fit.slope:.2f}", f"{fit.r_squared:.3f}", int(values[-1])]
            for label, (term, values, counts, fit) in fits.items()
        ],
    )

    # Shape assertions: both distributions are decreasing power laws in
    # log-log space; the frequent term spans a wider TF range (Fig. 4's
    # "slope and value range" separation).
    freq_fit = fits["frequent"][3]
    rare_fit = fits["rare"][3]
    assert freq_fit.slope < 0 and rare_fit.slope < 0
    assert freq_fit.r_squared > 0.8
    assert rare_fit.r_squared > 0.8
    freq_range = fits["frequent"][1][-1]
    rare_range = fits["rare"][1][-1]
    assert freq_range > rare_range
