"""Train/control splitting used for σ selection (paper §5.1.3, §6.1.2).

The paper: "we randomly selected 30% of the documents from each data set as
a training set.  We randomly chose about one third from the initial sample
for the control set and used the rest as training data and minimized
variance among the TRS values using cross-validation."
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TypeVar

import numpy as np

T = TypeVar("T")


def train_control_split(
    items: Sequence[T],
    control_fraction: float = 1.0 / 3.0,
    rng: np.random.Generator | None = None,
) -> tuple[list[T], list[T]]:
    """Randomly partition *items* into (training, control) sets.

    ``control_fraction`` of the items (rounded down, but at least one item
    on each side when ``len(items) >= 2``) go to the control set.
    """
    if not 0.0 < control_fraction < 1.0:
        raise ValueError("control_fraction must be in (0, 1)")
    rng = rng if rng is not None else np.random.default_rng()
    n = len(items)
    if n < 2:
        return list(items), []
    n_control = int(n * control_fraction)
    n_control = min(max(n_control, 1), n - 1)
    perm = rng.permutation(n)
    control_idx = set(perm[:n_control].tolist())
    train = [items[i] for i in range(n) if i not in control_idx]
    control = [items[i] for i in range(n) if i in control_idx]
    return train, control


def k_fold_indices(
    n: int, k: int, rng: np.random.Generator | None = None
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Shuffled k-fold split of ``range(n)`` into (train, validation) pairs."""
    if k < 2:
        raise ValueError("k must be >= 2")
    if n < k:
        raise ValueError("need at least k items")
    rng = rng if rng is not None else np.random.default_rng()
    perm = rng.permutation(n)
    folds = np.array_split(perm, k)
    splits: list[tuple[np.ndarray, np.ndarray]] = []
    for i, fold in enumerate(folds):
        train = np.concatenate([f for j, f in enumerate(folds) if j != i])
        splits.append((np.sort(train), np.sort(fold)))
    return splits
