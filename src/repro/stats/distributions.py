"""Zipf/power-law sampling and fitting.

Two uses in the reproduction:

* the synthetic corpus generator draws term ranks from Zipf laws so that raw
  TF distributions follow a power law (paper Fig. 4) and document
  frequencies have the usual heavy head;
* the Fig. 4/5 benchmarks *fit* a power law to measured distributions to
  assert the log-log-linearity claim quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def zipf_probabilities(n: int, exponent: float = 1.0) -> np.ndarray:
    """Normalised Zipf probabilities over ranks ``1..n``: ``p_r ∝ r^-s``."""
    if n <= 0:
        raise ValueError("n must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


class ZipfSampler:
    """Draw term ranks from a (finite-support) Zipf distribution.

    Sampling is done by inverse-CDF lookup on a precomputed cumulative
    table, which makes drawing a full synthetic corpus O(tokens · log V).
    """

    def __init__(self, n: int, exponent: float = 1.0, rng: np.random.Generator | None = None):
        self.n = n
        self.exponent = exponent
        self._probs = zipf_probabilities(n, exponent)
        self._cum = np.cumsum(self._probs)
        self._rng = rng if rng is not None else np.random.default_rng()

    @property
    def probabilities(self) -> np.ndarray:
        """The rank probabilities ``p_1..p_n`` (copy)."""
        return self._probs.copy()

    def sample(self, size: int) -> np.ndarray:
        """Draw *size* ranks in ``0..n-1`` (0-based)."""
        if size < 0:
            raise ValueError("size must be non-negative")
        u = self._rng.random(size)
        return np.searchsorted(self._cum, u, side="left")

    def sample_counts(self, size: int) -> np.ndarray:
        """Draw *size* tokens and return per-rank counts (length ``n``).

        Equivalent to ``np.bincount(self.sample(size), minlength=n)`` but
        uses a single multinomial draw, which is much faster for long
        documents.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        return self._rng.multinomial(size, self._probs)


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``log10 y = slope * log10 x + intercept``.

    Attributes
    ----------
    slope / intercept:
        Fit coefficients in log-log space.
    r_squared:
        Coefficient of determination of the log-log fit; close to 1 means
        the data is well described by a power law (straight line on a
        log-log plot — the visual criterion of paper Fig. 4).
    """

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x) -> np.ndarray:
        """Evaluate the fitted power law at *x*."""
        x = np.asarray(x, dtype=float)
        return 10.0 ** (self.slope * np.log10(x) + self.intercept)


def fit_power_law(x, y) -> PowerLawFit:
    """Fit a power law to positive data by least squares in log-log space."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError("x and y must have the same shape")
    mask = (x > 0) & (y > 0)
    if mask.sum() < 2:
        raise ValueError("need at least two positive points to fit")
    lx = np.log10(x[mask])
    ly = np.log10(y[mask])
    slope, intercept = np.polyfit(lx, ly, 1)
    pred = slope * lx + intercept
    ss_res = float(((ly - pred) ** 2).sum())
    ss_tot = float(((ly - ly.mean()) ** 2).sum())
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(slope=float(slope), intercept=float(intercept), r_squared=r_squared)
