"""Uniformness measures for TRS distributions (paper §5.1.3, Fig. 9).

The paper's criterion: "we compute the variance in the distribution of the
TRS values of a particular term in the control set with respect to a uniform
distribution, that is, how far the TRS distribution is from a uniform
distribution."

We realise that as the mean squared deviation between the sorted control TRS
values and the order statistics of the uniform distribution on [0, 1]
(``E[U_(i)] = i / (n + 1)``).  A perfectly uniform sample scores ~0; the
paper reports achievable values below 2e-5.  A Kolmogorov–Smirnov distance
is provided as a second, scale-free check used by the attack modules.
"""

from __future__ import annotations

import numpy as np


def uniformness_variance(values) -> float:
    """Mean squared deviation of sorted *values* from uniform order statistics.

    Values must lie in [0, 1]; raises :class:`ValueError` otherwise (a TRS
    outside the range indicates an RSTF bug, not a statistical outcome).
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one value")
    if np.any(arr < -1e-12) or np.any(arr > 1.0 + 1e-12):
        raise ValueError("values must lie in [0, 1]")
    arr = np.sort(np.clip(arr, 0.0, 1.0))
    n = arr.size
    expected = np.arange(1, n + 1, dtype=float) / (n + 1)
    return float(((arr - expected) ** 2).mean())


def empirical_cdf(values, grid) -> np.ndarray:
    """Empirical CDF of *values* evaluated on *grid*."""
    arr = np.sort(np.asarray(values, dtype=float))
    grid = np.asarray(grid, dtype=float)
    return np.searchsorted(arr, grid, side="right") / arr.size


def ks_distance_to_uniform(values) -> float:
    """Kolmogorov–Smirnov distance between *values* and Uniform[0, 1]."""
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        raise ValueError("need at least one value")
    n = arr.size
    i = np.arange(1, n + 1, dtype=float)
    d_plus = np.max(i / n - arr)
    d_minus = np.max(arr - (i - 1) / n)
    return float(max(d_plus, d_minus))


def ks_distance(a, b) -> float:
    """Two-sample Kolmogorov–Smirnov distance between samples *a* and *b*."""
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    data = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, data, side="right") / a.size
    cdf_b = np.searchsorted(b, data, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))
