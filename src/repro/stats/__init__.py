"""Statistics substrate: Gaussian-sum models, Zipf laws, CV, uniformness."""

from repro.stats.gaussian import (
    gaussian_pdf,
    gaussian_cdf,
    logistic_cdf,
    gaussian_sum_pdf,
    gaussian_sum_cdf,
    logistic_sum_cdf,
)
from repro.stats.distributions import (
    ZipfSampler,
    zipf_probabilities,
    fit_power_law,
    PowerLawFit,
)
from repro.stats.crossval import train_control_split, k_fold_indices
from repro.stats.uniformness import (
    uniformness_variance,
    ks_distance_to_uniform,
    empirical_cdf,
)

__all__ = [
    "gaussian_pdf",
    "gaussian_cdf",
    "logistic_cdf",
    "gaussian_sum_pdf",
    "gaussian_sum_cdf",
    "logistic_sum_cdf",
    "ZipfSampler",
    "zipf_probabilities",
    "fit_power_law",
    "PowerLawFit",
    "train_control_split",
    "k_fold_indices",
    "uniformness_variance",
    "ks_distance_to_uniform",
    "empirical_cdf",
]
