"""Gaussian-sum density and CDF machinery behind the RSTF (paper §5.1).

The paper models the relevance-score density of a term as a sum of Gaussian
bells, one per training value (Eq. 5)::

    f(x) = (1/N) * sum_i  N(x; mu_i, sigma)

and the RSTF as its integral (Eq. 6).  Eq. 7 approximates the Gaussian
integral with a logistic curve, giving the closed form of Eq. 8::

    RSTF(x) ~= (1/N) * sum_i  1 / (1 + exp(-sigma * (x - mu_i)))

Note the paper's σ convention: in Eq. 8 σ acts as the *steepness* of the
logistic — "Smaller σ means a broader Gaussian bell … Higher σ value means a
narrower bell" (§5.1.3).  We follow that convention throughout: ``sigma`` is
a steepness (inverse-scale) parameter, and the exact error-function variant
uses bell width ``1/sigma``.

All functions accept scalars or numpy arrays and broadcast.
"""

from __future__ import annotations

import math

import numpy as np

_SQRT2 = math.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)


def _as_array(x) -> np.ndarray:
    return np.asarray(x, dtype=float)


def gaussian_pdf(x, mu: float = 0.0, sigma: float = 1.0) -> np.ndarray:
    """Density of N(mu, (1/sigma)^2) at *x*, with σ as steepness.

    With the paper's convention the bell *width* is ``1/sigma``, so the
    standard formula with scale ``s = 1/sigma`` applies.
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    scale = 1.0 / sigma
    z = (_as_array(x) - mu) / scale
    return _INV_SQRT_2PI / scale * np.exp(-0.5 * z * z)


def gaussian_cdf(x, mu: float = 0.0, sigma: float = 1.0) -> np.ndarray:
    """CDF of N(mu, (1/sigma)^2) at *x* via the error function (Eq. 7 exact)."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    scale = 1.0 / sigma
    z = (_as_array(x) - mu) / (scale * _SQRT2)
    # np.vectorize'd math.erf is slower than the polynomial route below for
    # large arrays; scipy is optional, so use the numpy-native erf fallback.
    return 0.5 * (1.0 + _erf(z))


def _erf(z: np.ndarray) -> np.ndarray:
    """Vectorised error function.

    Uses :func:`math.erf` elementwise; accurate to double precision, and the
    array sizes involved in RSTF evaluation (training sets of at most a few
    thousand points) keep this fast enough.
    """
    z = _as_array(z)
    if z.ndim == 0:
        return np.asarray(math.erf(float(z)))
    flat = np.array([math.erf(v) for v in z.ravel()])
    return flat.reshape(z.shape)


def logistic_cdf(x, mu: float = 0.0, sigma: float = 1.0) -> np.ndarray:
    """Logistic approximation of the Gaussian integral (paper Eq. 7/8).

    ``1 / (1 + exp(-sigma * (x - mu)))`` — monotonically increasing in *x*,
    range (0, 1), steepness σ.
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    z = -sigma * (_as_array(x) - mu)
    # Clip to avoid overflow in exp for extreme inputs; the result saturates
    # to 0/1 well before the clip boundary matters.
    z = np.clip(z, -700.0, 700.0)
    return 1.0 / (1.0 + np.exp(z))


def gaussian_sum_pdf(x, mus, sigma: float) -> np.ndarray:
    """Gaussian-sum density (Eq. 5): mean of bells centred at ``mus``."""
    mus = _as_array(mus)
    if mus.size == 0:
        raise ValueError("at least one training value is required")
    x = _as_array(x)
    # Broadcast: result[i] = mean_j pdf(x[i]; mus[j], sigma)
    diffs = x[..., None] - mus[None, ...] if x.ndim else x - mus
    scale = 1.0 / sigma
    z = diffs / scale
    vals = _INV_SQRT_2PI / scale * np.exp(-0.5 * z * z)
    return vals.mean(axis=-1)


def gaussian_sum_cdf(x, mus, sigma: float) -> np.ndarray:
    """Exact integral of the Gaussian-sum density (Eq. 6)."""
    mus = _as_array(mus)
    if mus.size == 0:
        raise ValueError("at least one training value is required")
    x = _as_array(x)
    diffs = x[..., None] - mus[None, ...] if x.ndim else x - mus
    scale = 1.0 / sigma
    z = diffs / (scale * _SQRT2)
    return (0.5 * (1.0 + _erf(z))).mean(axis=-1)


def logistic_sum_cdf(x, mus, sigma: float) -> np.ndarray:
    """Closed-form RSTF of Eq. 8: mean of logistic curves at ``mus``.

    This is the function Zerber+R publishes per term at index
    initialisation time.
    """
    mus = _as_array(mus)
    if mus.size == 0:
        raise ValueError("at least one training value is required")
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    x = _as_array(x)
    diffs = x[..., None] - mus[None, ...] if x.ndim else x - mus
    z = np.clip(-sigma * diffs, -700.0, 700.0)
    return (1.0 / (1.0 + np.exp(z))).mean(axis=-1)
