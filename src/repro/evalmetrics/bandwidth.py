"""Bandwidth and efficiency metrics over query traces (paper §6.4–6.5).

* Eq. 12 — total response size after n follow-ups: ``TRes = b * Σ 2^i``
  (:func:`total_response_size`; traces record the measured value, which can
  be smaller when a list runs out).
* Eq. 13 — average bandwidth overhead over a workload:
  ``AvBO = mean(TRes(q) / k)`` (:func:`average_bandwidth_overhead`).
* Eq. 14 — per-query efficiency ``QRatioeff = k / TRes``
  (:func:`query_efficiency`); Fig. 13 plots its sorted curve
  (:func:`efficiency_curve`).

Batched sessions: a multi-term query served over the batch fetch protocol
records a :class:`~repro.core.protocol.BatchQueryTrace` whose
``num_rounds`` counts actual server calls while ``num_subfetches`` counts
the slices those calls carried.  :func:`total_server_requests` sums
honest request counts over mixed trace populations, and
:func:`average_round_trips` / :func:`batched_request_reduction` quantify
the round-trip savings of batching (what the §6.6 request-count
discussion is really about once queries have several terms).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.protocol import BatchQueryTrace, QueryTrace, ResponsePolicy


def total_response_size(policy: ResponsePolicy, num_requests: int) -> int:
    """Eq. 12 for an un-truncated session under *policy*."""
    return policy.total_after(num_requests)


def query_efficiency(trace: QueryTrace) -> float:
    """Eq. 14: ``k / TRes`` for one trace."""
    return trace.query_efficiency()


def average_bandwidth_overhead(traces: Sequence[QueryTrace]) -> float:
    """Eq. 13: mean of ``TRes / k`` over the workload traces."""
    if not traces:
        raise ValueError("no traces")
    return sum(t.bandwidth_overhead() for t in traces) / len(traces)


def average_num_requests(traces: Sequence[QueryTrace]) -> float:
    """Mean requests per query (the Fig. 12 statistic)."""
    if not traces:
        raise ValueError("no traces")
    return sum(t.num_requests for t in traces) / len(traces)


def efficiency_curve(traces: Sequence[QueryTrace]) -> list[float]:
    """QRatioeff per trace, sorted descending (Fig. 13's X-axis ordering).

    Fig. 13 orders "the query terms in the workload (in %), ordered by
    QRatioeff"; index i of the returned list corresponds to the
    ``100*i/len`` percentile of the workload.
    """
    if not traces:
        raise ValueError("no traces")
    return sorted((t.query_efficiency() for t in traces), reverse=True)


def efficiency_at_percentile(curve: Sequence[float], percent: float) -> float:
    """Value of a (descending) efficiency curve at a workload percentile."""
    if not curve:
        raise ValueError("empty curve")
    if not 0.0 <= percent <= 100.0:
        raise ValueError("percent must be in [0, 100]")
    index = min(int(len(curve) * percent / 100.0), len(curve) - 1)
    return curve[index]


def satisfied_fraction(traces: Sequence[QueryTrace]) -> float:
    """Fraction of queries that assembled their full top-k."""
    if not traces:
        raise ValueError("no traces")
    return sum(1 for t in traces if t.satisfied) / len(traces)


def total_server_requests(
    traces: Sequence[QueryTrace | BatchQueryTrace],
) -> int:
    """Client round-trips issued over a mixed trace population.

    A :class:`QueryTrace` contributes its per-term request count; a
    :class:`BatchQueryTrace` contributes its round count (each round is
    one client call no matter how many slices it bundled).  Against a
    sharded :class:`~repro.core.cluster.ServerCluster` one round fans
    out to one sub-batch per touched shard server, so this counts what
    the *client* pays in latency, not per-server load — read per-shard
    load off each server's observation log instead.
    """
    if not traces:
        raise ValueError("no traces")
    return sum(t.num_requests for t in traces)


def average_round_trips(traces: Sequence[BatchQueryTrace]) -> float:
    """Mean server round-trips per batched multi-term session."""
    if not traces:
        raise ValueError("no traces")
    return sum(t.num_rounds for t in traces) / len(traces)


def batched_request_reduction(traces: Sequence[BatchQueryTrace]) -> float:
    """Fraction of round-trips batching saved: ``1 - rounds/subfetches``.

    0.0 means batching never helped (every round carried one slice — the
    single-term case); approaching 1.0 means many slices per call.
    """
    if not traces:
        raise ValueError("no traces")
    rounds = sum(t.num_rounds for t in traces)
    subfetches = sum(t.num_subfetches for t in traces)
    if subfetches == 0:
        raise ValueError("no sub-fetches recorded")
    return 1.0 - rounds / subfetches
