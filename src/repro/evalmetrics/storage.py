"""Storage accounting (paper §6.3).

"Zerber+R attaches a transformed relevance score TRS to each posting
element … Thus it does not introduce any storage overhead compared with an
ordinary inverted index."  The comparable quantity is *score slots per
posting element*: both systems store exactly one score per element.  We
also report raw bits, where the encrypted payload (a Zerber property, not
a Zerber+R addition) dominates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.ordinary import PLAINTEXT_ELEMENT_BITS
from repro.core.server import ZerberRServer
from repro.index.inverted import OrdinaryInvertedIndex

TRS_BITS = 64  # one double per element, same as a plaintext score slot


@dataclass(frozen=True)
class StorageReport:
    """Side-by-side storage accounting of the two systems."""

    ordinary_elements: int
    ordinary_score_slots: int
    ordinary_bits: int
    zerber_r_elements: int
    zerber_r_score_slots: int
    zerber_r_bits: int

    @property
    def score_slots_per_element_ordinary(self) -> float:
        return self.ordinary_score_slots / max(self.ordinary_elements, 1)

    @property
    def score_slots_per_element_zerber_r(self) -> float:
        return self.zerber_r_score_slots / max(self.zerber_r_elements, 1)

    @property
    def ranking_overhead_bits_per_element(self) -> float:
        """Extra *ranking* bits per element Zerber+R stores vs. ordinary.

        The §6.3 claim is that this is zero: one 64-bit TRS replaces one
        64-bit score.  (Ciphertext overhead belongs to Zerber's encryption,
        present with or without ranking support.)
        """
        return TRS_BITS - PLAINTEXT_ELEMENT_BITS


def compare_storage(
    ordinary: OrdinaryInvertedIndex, server: ZerberRServer
) -> StorageReport:
    """Build the §6.3 report for one corpus indexed by both systems."""
    return StorageReport(
        ordinary_elements=ordinary.num_posting_elements,
        ordinary_score_slots=ordinary.storage_score_slots(),
        ordinary_bits=ordinary.num_posting_elements * PLAINTEXT_ELEMENT_BITS,
        zerber_r_elements=server.num_elements,
        zerber_r_score_slots=server.storage_score_slots(),
        zerber_r_bits=server.storage_bits(),
    )
