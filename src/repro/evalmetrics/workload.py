"""Analytic workload cost model (paper Eq. 9–11, Fig. 10).

For a term ``t`` in merged list ``L`` whose elements are TRS-sorted (and
per-term uniform over the list by construction):

* Eq. 10 — its best element's expected first position:
  ``pos1(t) = Σ_{t_i ∈ L} n_d(t_i) / n_d(t)``
* Eq. 11 — elements to retrieve for its top-k: ``N = k · pos1(t)``
* Eq. 9 — total workload cost over a query log:
  ``Q ≈ Σ_L Σ_{j ∈ L} q_j · N_j(L)``

Request-count extensions for the batched fetch protocol: under the
doubling policy a term needs :func:`expected_num_requests` server calls
to cover its Eq. 11 retrieval count.  For a *multi-term* query served in
batched lockstep the rounds overlap — the session costs the **max** of
the per-term round counts, not their sum.
:func:`batched_workload_requests` evaluates both totals over a workload
of multi-term queries, which is the honest request-count model behind the
Fig. 12/13 discussion once queries stop being single-term.

Shared-call extension for the coordinator topology:
:func:`coalesced_workload_requests` models N queries running
*concurrently* over a sharded cluster — each tick of the coordinator's
schedule costs one server call per *touched shard*, shared by every
in-flight query, versus one call per touched shard *per query* when each
client batches alone.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

from repro.core.protocol import ResponsePolicy
from repro.index.merge import MergePlan


def expected_first_position(
    term: str, list_terms: Sequence[str], document_frequencies: Mapping[str, int]
) -> float:
    """Eq. 10 — expected rank of the term's best element in its merged list."""
    df = document_frequencies[term]
    if df <= 0:
        raise ValueError(f"term {term!r} has zero document frequency")
    total = sum(document_frequencies[t] for t in list_terms)
    return total / df


def expected_retrieval_count(
    term: str,
    list_terms: Sequence[str],
    document_frequencies: Mapping[str, int],
    k: int,
) -> float:
    """Eq. 11 — expected elements to fetch for the term's top-k.

    Capped at the list's total element count: one can never need to fetch
    more elements than the merged list holds.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    position = expected_first_position(term, list_terms, document_frequencies)
    total_elements = sum(document_frequencies[t] for t in list_terms)
    return min(k * position, float(total_elements))


def expected_num_requests(
    term: str,
    list_terms: Sequence[str],
    document_frequencies: Mapping[str, int],
    k: int,
    policy: ResponsePolicy,
    max_requests: int = 64,
) -> int:
    """Expected server calls for one term under the follow-up *policy*.

    The smallest ``n`` with ``policy.total_after(n)`` covering the Eq. 11
    expected retrieval count (itself capped at the list length).
    """
    needed = expected_retrieval_count(term, list_terms, document_frequencies, k)
    needed = int(math.ceil(needed))
    for num_requests in range(1, max_requests + 1):
        if policy.total_after(num_requests) >= needed:
            return num_requests
    return max_requests


def batched_workload_requests(
    plan: MergePlan,
    queries: Sequence[Sequence[str]],
    document_frequencies: Mapping[str, int],
    k: int,
    policy: ResponsePolicy,
) -> tuple[int, int]:
    """Expected request totals for a multi-term query workload.

    Returns ``(per_list_requests, batched_requests)``: the first sums
    every term's expected calls (one slice per call — the unbatched
    protocol), the second charges each query the *max* of its terms'
    round counts (lockstep rounds share one batched call).  Terms absent
    from the plan are skipped, mirroring :func:`workload_cost`.
    """
    per_list_total = 0
    batched_total = 0
    for query in queries:
        rounds_per_term: list[int] = []
        for term in query:
            try:
                list_terms = plan.terms_of(plan.list_of(term))
            except KeyError:
                continue
            rounds_per_term.append(
                expected_num_requests(
                    term, list(list_terms), document_frequencies, k, policy
                )
            )
        if not rounds_per_term:
            continue
        per_list_total += sum(rounds_per_term)
        batched_total += max(rounds_per_term)
    return per_list_total, batched_total


def coalesced_workload_requests(
    plan: MergePlan,
    queries: Sequence[Sequence[str]],
    document_frequencies: Mapping[str, int],
    k: int,
    policy: ResponsePolicy,
    num_servers: int,
    max_requests: int = 64,
) -> tuple[int, int]:
    """Expected *server calls* for serving *queries* CONCURRENTLY.

    Returns ``(direct_calls, coalesced_calls)``.  Both sides run the
    lockstep doubling protocol over a cluster of ``num_servers`` shards
    with the default round-robin placement (list ``l`` primaried on
    ``l % num_servers``):

    * *direct* — each query is its own client: every round costs one
      batched call per shard server its still-active terms touch, summed
      over queries (the PR-1 topology).
    * *coalesced* — all queries tick together behind a coordinator: a
      scheduling tick costs one envelope per server touched by ANY
      query's still-active terms, so concurrent queries share calls.

    Terms absent from the plan are skipped, mirroring
    :func:`batched_workload_requests`.
    """
    if num_servers < 1:
        raise ValueError("num_servers must be >= 1")
    per_query: list[list[tuple[int, int]]] = []
    for query in queries:
        entries: list[tuple[int, int]] = []
        for term in query:
            try:
                list_id = plan.list_of(term)
                list_terms = plan.terms_of(list_id)
            except KeyError:
                continue
            rounds = expected_num_requests(
                term,
                list(list_terms),
                document_frequencies,
                k,
                policy,
                max_requests,
            )
            entries.append((list_id % num_servers, rounds))
        if entries:
            per_query.append(entries)
    if not per_query:
        return 0, 0
    horizon = max(rounds for entries in per_query for _, rounds in entries)
    direct_calls = 0
    coalesced_calls = 0
    for tick in range(1, horizon + 1):
        touched_any: set[int] = set()
        for entries in per_query:
            touched = {server for server, rounds in entries if rounds >= tick}
            direct_calls += len(touched)
            touched_any |= touched
        coalesced_calls += len(touched_any)
    return direct_calls, coalesced_calls


def workload_cost(
    plan: MergePlan,
    document_frequencies: Mapping[str, int],
    query_frequencies: Mapping[str, int],
    k: int,
) -> float:
    """Eq. 9 — total elements shipped to serve the whole query workload.

    Query terms absent from the plan (never indexed) contribute nothing,
    mirroring an engine that answers them with an empty result.
    """
    total = 0.0
    for group in plan.groups:
        group_terms = list(group)
        for term in group_terms:
            q = query_frequencies.get(term, 0)
            if q == 0:
                continue
            total += q * expected_retrieval_count(
                term, group_terms, document_frequencies, k
            )
    return total


def cumulative_workload_curve(
    plan: MergePlan,
    document_frequencies: Mapping[str, int],
    query_frequencies: Mapping[str, int],
    k: int,
) -> list[tuple[str, float]]:
    """Fig. 10 — terms by descending query frequency with cumulative cost share.

    Returns ``(term, cumulative_fraction_of_Q)`` for each queried term in
    descending query-frequency order; the paper's observation is that the
    curve saturates within the first few percent of terms.
    """
    per_term_cost: dict[str, float] = {}
    for group in plan.groups:
        group_terms = list(group)
        for term in group_terms:
            q = query_frequencies.get(term, 0)
            if q == 0:
                continue
            per_term_cost[term] = q * expected_retrieval_count(
                term, group_terms, document_frequencies, k
            )
    if not per_term_cost:
        raise ValueError("no queried terms intersect the merge plan")
    ordered = sorted(
        per_term_cost,
        key=lambda t: (-query_frequencies.get(t, 0), t),
    )
    total = sum(per_term_cost.values())
    curve: list[tuple[str, float]] = []
    running = 0.0
    for term in ordered:
        running += per_term_cost[term]
        curve.append((term, running / total))
    return curve
