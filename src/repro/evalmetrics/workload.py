"""Analytic workload cost model (paper Eq. 9–11, Fig. 10).

For a term ``t`` in merged list ``L`` whose elements are TRS-sorted (and
per-term uniform over the list by construction):

* Eq. 10 — its best element's expected first position:
  ``pos1(t) = Σ_{t_i ∈ L} n_d(t_i) / n_d(t)``
* Eq. 11 — elements to retrieve for its top-k: ``N = k · pos1(t)``
* Eq. 9 — total workload cost over a query log:
  ``Q ≈ Σ_L Σ_{j ∈ L} q_j · N_j(L)``
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.index.merge import MergePlan


def expected_first_position(
    term: str, list_terms: Sequence[str], document_frequencies: Mapping[str, int]
) -> float:
    """Eq. 10 — expected rank of the term's best element in its merged list."""
    df = document_frequencies[term]
    if df <= 0:
        raise ValueError(f"term {term!r} has zero document frequency")
    total = sum(document_frequencies[t] for t in list_terms)
    return total / df


def expected_retrieval_count(
    term: str,
    list_terms: Sequence[str],
    document_frequencies: Mapping[str, int],
    k: int,
) -> float:
    """Eq. 11 — expected elements to fetch for the term's top-k.

    Capped at the list's total element count: one can never need to fetch
    more elements than the merged list holds.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    position = expected_first_position(term, list_terms, document_frequencies)
    total_elements = sum(document_frequencies[t] for t in list_terms)
    return min(k * position, float(total_elements))


def workload_cost(
    plan: MergePlan,
    document_frequencies: Mapping[str, int],
    query_frequencies: Mapping[str, int],
    k: int,
) -> float:
    """Eq. 9 — total elements shipped to serve the whole query workload.

    Query terms absent from the plan (never indexed) contribute nothing,
    mirroring an engine that answers them with an empty result.
    """
    total = 0.0
    for group in plan.groups:
        group_terms = list(group)
        for term in group_terms:
            q = query_frequencies.get(term, 0)
            if q == 0:
                continue
            total += q * expected_retrieval_count(
                term, group_terms, document_frequencies, k
            )
    return total


def cumulative_workload_curve(
    plan: MergePlan,
    document_frequencies: Mapping[str, int],
    query_frequencies: Mapping[str, int],
    k: int,
) -> list[tuple[str, float]]:
    """Fig. 10 — terms by descending query frequency with cumulative cost share.

    Returns ``(term, cumulative_fraction_of_Q)`` for each queried term in
    descending query-frequency order; the paper's observation is that the
    curve saturates within the first few percent of terms.
    """
    per_term_cost: dict[str, float] = {}
    for group in plan.groups:
        group_terms = list(group)
        for term in group_terms:
            q = query_frequencies.get(term, 0)
            if q == 0:
                continue
            per_term_cost[term] = q * expected_retrieval_count(
                term, group_terms, document_frequencies, k
            )
    if not per_term_cost:
        raise ValueError("no queried terms intersect the merge plan")
    ordered = sorted(
        per_term_cost,
        key=lambda t: (-query_frequencies.get(t, 0), t),
    )
    total = sum(per_term_cost.values())
    curve: list[tuple[str, float]] = []
    running = 0.0
    for term in ordered:
        running += per_term_cost[term]
        curve.append((term, running / total))
    return curve
