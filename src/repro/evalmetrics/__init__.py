"""Evaluation metrics: bandwidth (Eq. 12-14), workload (Eq. 9-11),
retrieval quality, storage accounting, and the §6.6 network model."""

from repro.evalmetrics.bandwidth import (
    average_bandwidth_overhead,
    average_num_requests,
    efficiency_curve,
    query_efficiency,
    total_response_size,
)
from repro.evalmetrics.workload import (
    cumulative_workload_curve,
    expected_first_position,
    expected_retrieval_count,
    workload_cost,
)
from repro.evalmetrics.retrieval import (
    kendall_tau,
    overlap_at_k,
    precision_at_k,
)
from repro.evalmetrics.storage import StorageReport, compare_storage
from repro.evalmetrics.netmodel import NetworkModel, COMPETITOR_RESPONSE_KB

__all__ = [
    "average_bandwidth_overhead",
    "average_num_requests",
    "efficiency_curve",
    "query_efficiency",
    "total_response_size",
    "cumulative_workload_curve",
    "expected_first_position",
    "expected_retrieval_count",
    "workload_cost",
    "kendall_tau",
    "overlap_at_k",
    "precision_at_k",
    "StorageReport",
    "compare_storage",
    "NetworkModel",
    "COMPETITOR_RESPONSE_KB",
]
