"""Retrieval-quality metrics: overlap, precision, rank correlation.

Used to verify the paper's accuracy claims: Zerber+R single-term rankings
must equal the ordinary index's exactly (monotonic RSTF), and multi-term
accuracy degrades only mildly when IDF is dropped (§3.2's trade-off).
"""

from __future__ import annotations

from collections.abc import Sequence


def overlap_at_k(result_a: Sequence[str], result_b: Sequence[str], k: int) -> float:
    """|top-k(A) ∩ top-k(B)| / k — the symmetric set-overlap measure."""
    if k < 1:
        raise ValueError("k must be >= 1")
    a = set(result_a[:k])
    b = set(result_b[:k])
    return len(a & b) / k


def precision_at_k(result: Sequence[str], relevant: Sequence[str], k: int) -> float:
    """Fraction of the first k results that appear in *relevant*."""
    if k < 1:
        raise ValueError("k must be >= 1")
    head = list(result[:k])
    if not head:
        return 0.0
    truth = set(relevant)
    return sum(1 for doc in head if doc in truth) / len(head)


def kendall_tau(ranking_a: Sequence[str], ranking_b: Sequence[str]) -> float:
    """Kendall rank correlation between two rankings of the same item set.

    Items present in only one ranking are dropped; ties are impossible in
    a ranking.  Returns a value in [-1, 1]; 1 means identical order.
    """
    common = [item for item in ranking_a if item in set(ranking_b)]
    if len(common) < 2:
        raise ValueError("need at least two common items")
    position_b = {item: i for i, item in enumerate(ranking_b)}
    concordant = 0
    discordant = 0
    for i in range(len(common)):
        for j in range(i + 1, len(common)):
            if position_b[common[i]] < position_b[common[j]]:
                concordant += 1
            else:
                discordant += 1
    total = concordant + discordant
    return (concordant - discordant) / total
