"""The §6.6 network bandwidth model.

The paper's back-of-envelope: 85 posting elements per query term on
average from the ODP index, 64 bits per element ⇒ ≈0.7 KB per query-term
response; 2.4 terms per query; 250 B per snippet ⇒ 2.5 KB for top-10
snippets; total ≈3.5 KB per top-10 answer — versus Google 15 KB,
Altavista 37 KB, Yahoo 59 KB.  A 100 Mb/s server link then sustains ≈750
queries/s; a 56 Kb/s modem user downloads an answer in ≈0.5 s.

:class:`NetworkModel` reproduces the calculation from *measured* element
counts, so the §6.6 benchmark can plug in our synthetic-ODP numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

# Literature values quoted by the paper (KB per top-10 response page).
COMPETITOR_RESPONSE_KB: dict[str, float] = {
    "Google": 15.0,
    "Altavista": 37.0,
    "Yahoo": 59.0,
}

BITS_PER_KB = 8 * 1024.0


@dataclass(frozen=True)
class NetworkModel:
    """§6.6 constants, overridable for sensitivity studies.

    Attributes mirror the paper's setup: 64-bit posting elements, 250 B
    XML snippets, 2.4 query terms on average, 56 Kb/s client modem,
    100 Mb/s server LAN.
    """

    element_bits: int = 64
    snippet_bytes: int = 250
    terms_per_query: float = 2.4
    modem_bps: float = 56_000.0
    lan_bps: float = 100_000_000.0

    def per_term_response_kb(self, elements_per_term: float) -> float:
        """KB of posting elements returned per query term."""
        if elements_per_term < 0:
            raise ValueError("elements_per_term must be non-negative")
        return elements_per_term * self.element_bits / BITS_PER_KB

    def snippets_kb(self, k: int) -> float:
        """KB of result snippets for a top-k answer."""
        if k < 1:
            raise ValueError("k must be >= 1")
        return k * self.snippet_bytes * 8 / BITS_PER_KB

    def total_response_kb(self, elements_per_term: float, k: int) -> float:
        """Posting elements for all query terms plus the top-k snippets."""
        return (
            self.terms_per_query * self.per_term_response_kb(elements_per_term)
            + self.snippets_kb(k)
        )

    def queries_per_second(self, elements_per_term: float) -> float:
        """Server throughput bound by LAN bandwidth on posting elements."""
        bits_per_query = (
            self.terms_per_query * elements_per_term * self.element_bits
        )
        if bits_per_query <= 0:
            raise ValueError("query must transfer a positive number of bits")
        return self.lan_bps / bits_per_query

    def modem_seconds(self, elements_per_term: float, k: int) -> float:
        """Client-side download time of one full answer over the modem."""
        kb = self.total_response_kb(elements_per_term, k)
        return kb * BITS_PER_KB / self.modem_bps

    def comparison_table(
        self, elements_per_term: float, k: int = 10
    ) -> list[tuple[str, float]]:
        """(system, response KB) rows: Zerber+R vs. the paper's competitors."""
        rows = [("Zerber+R", self.total_response_kb(elements_per_term, k))]
        rows.extend(sorted(COMPETITOR_RESPONSE_KB.items(), key=lambda kv: kv[1]))
        return rows
