"""Corpus substrate: document model, synthetic collections, query logs."""

from repro.corpus.documents import Corpus, Document
from repro.corpus.synthetic import (
    SyntheticCorpusConfig,
    SyntheticCorpusGenerator,
    studip_like,
    odp_like,
    tiny_corpus,
)
from repro.corpus.querylog import Query, QueryLog, QueryLogConfig, QueryLogGenerator

__all__ = [
    "Corpus",
    "Document",
    "SyntheticCorpusConfig",
    "SyntheticCorpusGenerator",
    "studip_like",
    "odp_like",
    "tiny_corpus",
    "Query",
    "QueryLog",
    "QueryLogConfig",
    "QueryLogGenerator",
]
