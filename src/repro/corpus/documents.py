"""Document and corpus model.

A :class:`Document` carries raw text or precomputed term counts plus the
access-control *group* it belongs to (the paper's collaboration groups:
StudIP courses, ODP topics).  A :class:`Corpus` is an ordered collection of
documents with a shared :class:`~repro.text.Vocabulary` built lazily.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field

from repro.text.analysis import DocumentStats
from repro.text.tokenizer import Tokenizer

DEFAULT_GROUP = "public"


@dataclass(frozen=True)
class Document:
    """One access-controlled document.

    Exactly one of *text* or *counts* must be provided; synthetic corpora
    supply counts directly to avoid materialising token streams.
    """

    doc_id: str
    group: str = DEFAULT_GROUP
    text: str | None = None
    counts: Mapping[str, int] | None = None
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if (self.text is None) == (self.counts is None):
            raise ValueError("provide exactly one of text= or counts=")

    def stats(self, tokenizer: Tokenizer | None = None) -> DocumentStats:
        """Term statistics for this document."""
        if self.counts is not None:
            return DocumentStats.from_counts(self.doc_id, self.counts)
        tokenizer = tokenizer if tokenizer is not None else Tokenizer()
        assert self.text is not None
        return DocumentStats.from_tokens(self.doc_id, tokenizer.tokens(self.text))


class Corpus:
    """An ordered, group-partitioned document collection."""

    def __init__(
        self,
        documents: Iterable[Document] = (),
        tokenizer: Tokenizer | None = None,
        name: str = "corpus",
    ) -> None:
        self.name = name
        self._tokenizer = tokenizer if tokenizer is not None else Tokenizer()
        self._documents: list[Document] = []
        self._by_id: dict[str, int] = {}
        self._stats_cache: dict[str, DocumentStats] = {}
        for doc in documents:
            self.add(doc)

    # -- construction ------------------------------------------------------

    def add(self, doc: Document) -> None:
        """Append a document; ids must be unique within the corpus."""
        if doc.doc_id in self._by_id:
            raise ValueError(f"duplicate document id: {doc.doc_id!r}")
        self._by_id[doc.doc_id] = len(self._documents)
        self._documents.append(doc)

    # -- access ------------------------------------------------------------

    @property
    def tokenizer(self) -> Tokenizer:
        return self._tokenizer

    def document(self, doc_id: str) -> Document:
        """Look up a document by id."""
        try:
            return self._documents[self._by_id[doc_id]]
        except KeyError:
            raise KeyError(f"no such document: {doc_id!r}") from None

    def stats(self, doc_id: str) -> DocumentStats:
        """Term statistics for one document (cached)."""
        cached = self._stats_cache.get(doc_id)
        if cached is None:
            cached = self.document(doc_id).stats(self._tokenizer)
            self._stats_cache[doc_id] = cached
        return cached

    def all_stats(self) -> list[DocumentStats]:
        """Term statistics for every document, in corpus order."""
        return [self.stats(doc.doc_id) for doc in self._documents]

    def groups(self) -> set[str]:
        """The set of access-control groups present."""
        return {doc.group for doc in self._documents}

    def documents_in_group(self, group: str) -> list[Document]:
        """All documents belonging to *group*."""
        return [doc for doc in self._documents if doc.group == group]

    def doc_ids(self) -> list[str]:
        """All document ids in corpus order."""
        return [doc.doc_id for doc in self._documents]

    def sample(self, fraction: float, rng) -> list[Document]:
        """A random sample of ``fraction`` of the documents (paper §6.1.2)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        n = max(1, int(len(self._documents) * fraction))
        idx = rng.choice(len(self._documents), size=n, replace=False)
        return [self._documents[i] for i in sorted(idx.tolist())]

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def __contains__(self, doc_id: object) -> bool:
        return doc_id in self._by_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Corpus(name={self.name!r}, documents={len(self._documents)})"


def corpus_from_texts(
    texts: Sequence[str],
    groups: Sequence[str] | None = None,
    tokenizer: Tokenizer | None = None,
    name: str = "corpus",
) -> Corpus:
    """Convenience constructor: build a corpus from raw strings."""
    if groups is not None and len(groups) != len(texts):
        raise ValueError("groups must match texts in length")
    docs = [
        Document(
            doc_id=f"d{i:06d}",
            group=groups[i] if groups is not None else DEFAULT_GROUP,
            text=text,
        )
        for i, text in enumerate(texts)
    ]
    return Corpus(docs, tokenizer=tokenizer, name=name)
