"""Synthetic web-search query workload (paper §6.1.3, Fig. 10).

The paper uses a commercial web search engine log: 7M queries, 2.4 terms on
average, 135k distinct query terms, with the head of the frequency-ranked
terms dominating the cumulative top-k workload (Fig. 10).  Two facts drive
the Zerber+R experiments:

* query frequencies are heavily skewed (power law), and
* query frequency correlates with document frequency, with outliers —
  "some frequent terms are rarely queried (e.g., 'although')" [15].

The generator samples query-term weights as ``df(t)^alpha * lognormal
noise``, demotes a configurable fraction of head terms to model the
'although' effect, and draws query lengths as ``1 + Poisson(mean - 1)`` to
hit the 2.4 terms/query average.  Multi-term queries are executed by
Zerber+R as sequences of single-term queries (paper §3.2), so the log also
exposes the flattened single-term workload.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.text.vocabulary import Vocabulary


@dataclass(frozen=True)
class Query:
    """One keyword query (tuple of distinct terms, order irrelevant)."""

    terms: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError("a query must contain at least one term")
        if len(set(self.terms)) != len(self.terms):
            raise ValueError("query terms must be distinct")

    def __len__(self) -> int:
        return len(self.terms)


class QueryLog:
    """An aggregated query workload: query -> occurrence count."""

    def __init__(self, counts: dict[Query, int]) -> None:
        for query, count in counts.items():
            if count <= 0:
                raise ValueError(f"count for {query} must be positive")
        self._counts = dict(counts)

    # -- basic accessors ---------------------------------------------------

    @property
    def total_queries(self) -> int:
        """Total number of query instances (with multiplicity)."""
        return sum(self._counts.values())

    @property
    def distinct_queries(self) -> int:
        return len(self._counts)

    def items(self) -> Iterator[tuple[Query, int]]:
        """(query, count) pairs in descending count order."""
        return iter(
            sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0].terms))
        )

    def __iter__(self) -> Iterator[Query]:
        """Iterate over query instances with multiplicity (workload replay)."""
        for query, count in self.items():
            for _ in range(count):
                yield query

    # -- derived statistics --------------------------------------------------

    def term_frequencies(self) -> Counter[str]:
        """Single-term query frequencies ``q_j`` (paper Eq. 9).

        A multi-term query contributes one single-term query per term,
        because Zerber+R executes it as a sequence of single-term queries.
        """
        freqs: Counter[str] = Counter()
        for query, count in self._counts.items():
            for term in query.terms:
                freqs[term] += count
        return freqs

    def mean_terms_per_query(self) -> float:
        """Average query length in terms (paper: 2.4)."""
        total = self.total_queries
        if total == 0:
            raise ValueError("empty query log")
        return sum(len(q) * c for q, c in self._counts.items()) / total

    def distinct_terms(self) -> set[str]:
        """All distinct query terms in the log."""
        terms: set[str] = set()
        for query in self._counts:
            terms.update(query.terms)
        return terms

    def head_share(self, fraction: float) -> float:
        """Share of the single-term workload carried by the top *fraction*
        of terms ranked by query frequency (the Fig. 10 statistic)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        freqs = sorted(self.term_frequencies().values(), reverse=True)
        if not freqs:
            raise ValueError("empty query log")
        head = max(1, int(len(freqs) * fraction))
        total = sum(freqs)
        return sum(freqs[:head]) / total


@dataclass(frozen=True)
class QueryLogConfig:
    """Parameters of the query-log generator.

    Attributes
    ----------
    num_queries:
        Number of query instances to draw.
    mean_terms_per_query:
        Target average query length (paper: 2.4); realised as
        ``1 + Poisson(mean - 1)``.
    popularity_exponent:
        Zipf exponent of query popularity over the (noisy) df ranking.
        Real web logs are strongly head-heavy; the default (1.35) is
        calibrated so that the *cost-weighted* cumulative workload curve
        (Eq. 9) saturates in the head as in the paper's Fig. 10 — rare
        terms cost a whole merged list per query, so the raw query
        frequency skew must over-compensate.
    rank_noise_sigma:
        Log-normal noise applied to df before ranking — decorrelates query
        rank from df rank without destroying the overall correlation.
    demoted_head_fraction:
        Fraction of the most document-frequent terms that are *demoted* —
        frequent in documents but rarely queried ('although').
    demotion_factor:
        Multiplicative weight penalty applied to demoted terms.
    max_query_terms:
        Upper clip on query length.
    seed:
        RNG seed.
    """

    num_queries: int = 20000
    mean_terms_per_query: float = 2.4
    popularity_exponent: float = 1.5
    rank_noise_sigma: float = 0.35
    demoted_head_fraction: float = 0.02
    demotion_factor: float = 1e-3
    max_query_terms: int = 6
    seed: int = 13

    def __post_init__(self) -> None:
        if self.num_queries <= 0:
            raise ValueError("num_queries must be positive")
        if self.mean_terms_per_query < 1.0:
            raise ValueError("mean_terms_per_query must be >= 1")
        if not 0.0 <= self.demoted_head_fraction < 1.0:
            raise ValueError("demoted_head_fraction must be in [0, 1)")
        if not 0.0 < self.demotion_factor <= 1.0:
            raise ValueError("demotion_factor must be in (0, 1]")
        if self.max_query_terms < 1:
            raise ValueError("max_query_terms must be >= 1")


class QueryLogGenerator:
    """Draws a :class:`QueryLog` against a corpus vocabulary."""

    def __init__(self, vocabulary: Vocabulary, config: QueryLogConfig | None = None):
        if vocabulary.num_terms == 0:
            raise ValueError("vocabulary is empty")
        self.vocabulary = vocabulary
        self.config = config if config is not None else QueryLogConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._terms, self._probs = self._term_distribution()

    def _term_distribution(self) -> tuple[list[str], np.ndarray]:
        from repro.stats.distributions import zipf_probabilities

        cfg = self.config
        terms = self.vocabulary.terms_by_frequency()
        dfs = np.array(
            [self.vocabulary.document_frequency(t) for t in terms], dtype=float
        )
        # Query popularity = Zipf over the noisy df ranking: the head-heavy
        # law real logs follow, correlated with df but not identical to it.
        noisy = dfs * self._rng.lognormal(0.0, cfg.rank_noise_sigma, size=len(terms))
        order = np.argsort(-noisy, kind="stable")
        weights = np.empty(len(terms))
        weights[order] = zipf_probabilities(len(terms), cfg.popularity_exponent)
        # Demote a slice of the df head: frequent terms that are rarely
        # queried, the "although" effect.
        n_head = int(len(terms) * cfg.demoted_head_fraction)
        if n_head > 0:
            demote = self._rng.random(n_head) < 0.5
            weights[:n_head][demote] *= cfg.demotion_factor
        total = weights.sum()
        if total <= 0:
            raise ValueError("degenerate term weights")
        return terms, weights / total

    def generate(self) -> QueryLog:
        """Draw the workload (deterministic for a given config+vocabulary).

        Terms within a query are drawn i.i.d. from the popularity
        distribution; duplicates are replaced by extra draws (bounded
        retries) so query lengths match the target, which keeps
        generation O(total query terms · log V) and lets benchmarks use
        paper-scale workloads.
        """
        cfg = self.config
        lengths = 1 + self._rng.poisson(cfg.mean_terms_per_query - 1.0, cfg.num_queries)
        lengths = np.minimum(lengths, cfg.max_query_terms)
        lengths = np.minimum(lengths, len(self._terms))
        total = int(lengths.sum())
        cumulative = np.cumsum(self._probs)
        cumulative[-1] = 1.0  # guard against rounding at the boundary
        draws = np.searchsorted(cumulative, self._rng.random(total), side="left")
        counts: Counter[Query] = Counter()
        cursor = 0
        max_retries = 8
        for length in lengths:
            length = int(length)
            idx = draws[cursor : cursor + length]
            cursor += length
            unique = {self._terms[i] for i in idx}
            retries = 0
            while len(unique) < length and retries < max_retries * length:
                extra = int(
                    np.searchsorted(cumulative, self._rng.random(), side="left")
                )
                unique.add(self._terms[extra])
                retries += 1
            counts[Query(terms=tuple(sorted(unique)))] += 1
        return QueryLog(dict(counts))


def single_term_log(term_counts: dict[str, int]) -> QueryLog:
    """Build a query log of single-term queries from explicit counts."""
    return QueryLog({Query(terms=(term,)): count for term, count in term_counts.items()})
