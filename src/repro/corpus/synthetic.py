"""Synthetic document collections with the paper's distributional shape.

The paper evaluates on two private collections (a StudIP LMS snapshot and an
ODP web crawl) that are not publicly archived.  Every experiment depends
only on distributional properties of those collections:

* Zipfian document frequencies (heavy head of frequent terms),
* power-law raw term-frequency distributions (Fig. 4),
* term-specific but non-power-law *normalized* TF distributions (Fig. 5),
* documents partitioned into collaboration groups (courses / topics).

We reproduce those with a topic-mixture language model: each group (course
or web topic) has its own Zipf-weighted sub-vocabulary layered over a global
Zipf background.  A document of group ``g`` draws its tokens from
``topic_weight * topic_g + (1 - topic_weight) * background``.  Topic terms
therefore concentrate their normalized TF around the topic weight (specific,
non-power-law) while background terms span the full power-law range —
exactly the Fig. 4 vs. Fig. 5 contrast.

Scale: defaults are CI-friendly (hundreds to a couple thousand documents).
Paper-scale collections (8.5k / 237k documents) are reachable by passing
larger parameters; nothing in the generator is quadratic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corpus.documents import Corpus, Document
from repro.stats.distributions import zipf_probabilities


@dataclass(frozen=True)
class SyntheticCorpusConfig:
    """Parameters of the topic-mixture generator.

    Attributes
    ----------
    num_documents / vocabulary_size / num_groups:
        Collection dimensions.
    background_exponent:
        Zipf exponent of the shared background distribution; ~1.0-1.2 gives
        realistic document-frequency heads.
    topic_vocabulary_size:
        Number of terms in each group's topical sub-vocabulary (sampled
        without replacement from the global vocabulary, skewed towards
        mid-frequency terms, where topical words live).
    topic_exponent:
        Zipf exponent within a topic sub-vocabulary.
    topic_weight:
        Probability that a token is drawn from the topic rather than the
        background distribution.
    doc_length_median / doc_length_sigma:
        Log-normal document length model (in tokens).
    min_doc_length / max_doc_length:
        Hard clips on sampled lengths.
    seed:
        Generator seed; the corpus is a deterministic function of the config.
    name:
        Corpus name (propagated to :class:`~repro.corpus.documents.Corpus`).
    """

    num_documents: int = 800
    vocabulary_size: int = 8000
    num_groups: int = 20
    background_exponent: float = 1.1
    topic_vocabulary_size: int = 400
    topic_exponent: float = 0.9
    topic_weight: float = 0.35
    doc_length_median: float = 220.0
    doc_length_sigma: float = 0.7
    min_doc_length: int = 20
    max_doc_length: int = 4000
    seed: int = 7
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if self.num_documents <= 0:
            raise ValueError("num_documents must be positive")
        if self.vocabulary_size <= 1:
            raise ValueError("vocabulary_size must be > 1")
        if not 1 <= self.num_groups <= self.num_documents:
            raise ValueError("num_groups must be in [1, num_documents]")
        if not 0 < self.topic_vocabulary_size <= self.vocabulary_size:
            raise ValueError("topic_vocabulary_size must be in [1, vocabulary_size]")
        if not 0.0 <= self.topic_weight < 1.0:
            raise ValueError("topic_weight must be in [0, 1)")
        if self.min_doc_length < 1 or self.max_doc_length < self.min_doc_length:
            raise ValueError("invalid document length bounds")


class SyntheticCorpusGenerator:
    """Generates a :class:`Corpus` from a :class:`SyntheticCorpusConfig`."""

    def __init__(self, config: SyntheticCorpusConfig) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._terms = [f"term{i:06d}" for i in range(config.vocabulary_size)]
        self._background = zipf_probabilities(
            config.vocabulary_size, config.background_exponent
        )
        self._group_probs = self._build_group_mixtures()

    # -- internals ---------------------------------------------------------

    def _build_group_mixtures(self) -> list[np.ndarray]:
        """Per-group mixed token distributions (topic ⊕ background)."""
        cfg = self.config
        v = cfg.vocabulary_size
        # Topical words are mid-frequency: sample topic vocabularies with a
        # bias away from the extreme head (stopword-like) and the extreme
        # tail (hapax-like) of the background ranking.
        ranks = np.arange(v, dtype=float)
        mid = v / 4.0
        spread = v / 3.0
        bias = np.exp(-0.5 * ((ranks - mid) / spread) ** 2) + 1e-9
        bias /= bias.sum()
        topic_zipf = zipf_probabilities(cfg.topic_vocabulary_size, cfg.topic_exponent)
        mixtures: list[np.ndarray] = []
        for _ in range(cfg.num_groups):
            topic_terms = self._rng.choice(
                v, size=cfg.topic_vocabulary_size, replace=False, p=bias
            )
            topic = np.zeros(v)
            # Shuffle ranks within the topic so different topics emphasise
            # different words even when their vocabularies overlap.
            order = self._rng.permutation(cfg.topic_vocabulary_size)
            topic[topic_terms] = topic_zipf[order]
            mixed = cfg.topic_weight * topic + (1.0 - cfg.topic_weight) * self._background
            mixtures.append(mixed)
        return mixtures

    def _sample_length(self) -> int:
        cfg = self.config
        length = self._rng.lognormal(np.log(cfg.doc_length_median), cfg.doc_length_sigma)
        return int(np.clip(length, cfg.min_doc_length, cfg.max_doc_length))

    # -- public API ----------------------------------------------------------

    def generate(self) -> Corpus:
        """Materialise the corpus (deterministic for a given config)."""
        cfg = self.config
        corpus = Corpus(name=cfg.name)
        group_of_doc = self._rng.integers(0, cfg.num_groups, size=cfg.num_documents)
        for i in range(cfg.num_documents):
            group_idx = int(group_of_doc[i])
            probs = self._group_probs[group_idx]
            length = self._sample_length()
            counts_vec = self._rng.multinomial(length, probs)
            nonzero = np.nonzero(counts_vec)[0]
            counts = {self._terms[j]: int(counts_vec[j]) for j in nonzero}
            corpus.add(
                Document(
                    doc_id=f"{cfg.name}-{i:06d}",
                    group=f"group-{group_idx:03d}",
                    counts=counts,
                    metadata={"length": length},
                )
            )
        return corpus

    @property
    def terms(self) -> list[str]:
        """The global vocabulary, ordered by background frequency rank."""
        return list(self._terms)


def studip_like(
    num_documents: int = 800,
    vocabulary_size: int = 8000,
    num_groups: int = 33,
    seed: int = 7,
) -> Corpus:
    """A StudIP-shaped collection (course-partitioned LMS documents).

    The paper's snapshot: 8,500 documents, 570k distinct terms, 3,300
    courses.  Defaults are scaled ~10x down for test speed while preserving
    the docs-per-group ratio and length profile; pass paper-scale numbers to
    reproduce at full size.
    """
    config = SyntheticCorpusConfig(
        num_documents=num_documents,
        vocabulary_size=vocabulary_size,
        num_groups=num_groups,
        doc_length_median=220.0,
        doc_length_sigma=0.8,
        topic_weight=0.35,
        seed=seed,
        name="studip",
    )
    return SyntheticCorpusGenerator(config).generate()


def odp_like(
    num_documents: int = 1500,
    vocabulary_size: int = 12000,
    num_groups: int = 100,
    seed: int = 11,
) -> Corpus:
    """An ODP-crawl-shaped collection (100 web topics, longer documents).

    The paper's crawl: 237k documents, 987.7k distinct terms, 100 topics
    with one group per topic.  Defaults are scaled down for test speed.
    """
    config = SyntheticCorpusConfig(
        num_documents=num_documents,
        vocabulary_size=vocabulary_size,
        num_groups=num_groups,
        doc_length_median=380.0,
        doc_length_sigma=0.9,
        topic_weight=0.30,
        background_exponent=1.15,
        topic_vocabulary_size=500,
        seed=seed,
        name="odp",
    )
    return SyntheticCorpusGenerator(config).generate()


def tiny_corpus(seed: int = 3) -> Corpus:
    """A very small corpus for unit tests (fast, deterministic)."""
    config = SyntheticCorpusConfig(
        num_documents=60,
        vocabulary_size=400,
        num_groups=4,
        topic_vocabulary_size=60,
        doc_length_median=80.0,
        doc_length_sigma=0.5,
        min_doc_length=10,
        max_doc_length=400,
        seed=seed,
        name="tiny",
    )
    return SyntheticCorpusGenerator(config).generate()
