"""Multi-server deployment (paper §3.1: "Zerber relies on a centralized
set of largely untrusted index servers").

A :class:`ServerCluster` shards the merged posting lists across N
:class:`~repro.core.server.ZerberRServer` instances and exposes the same
insert/fetch/batch-fetch surface, so
:class:`~repro.core.client.ZerberRClient` works against a cluster
unchanged.  A batched fetch splits into one sub-batch per shard server,
so a multi-term client round costs one round-trip per *touched server*
rather than per merged list.

Which server holds which list is decided by a pluggable
:class:`~repro.core.placement.PlacementPolicy` (round-robin by default —
the seed behaviour byte-for-byte).  The cluster owns the authoritative
placement table plus a *placement epoch* that bumps whenever
:meth:`rebalance` migrates lists between servers (heat-weighted policies
move hot head-term lists off overloaded shards); coalesced envelopes pin
the epoch they were routed under so a stale route is rejected rather than
silently served from a server that no longer hosts the list.

Replication is a real subsystem (:mod:`repro.core.replication`), not a
synchronous fan-out: each list has a primary replica (first in its
placement tuple) and a versioned replication log.  Writes apply to the
primary inside the write call and drain to followers asynchronously under
a configurable :class:`~repro.core.replication.LagModel`; reads carry the
serving replica's applied version, and the cluster detects divergence and
read-repairs according to the requested
:class:`~repro.core.replication.ReadConsistency` (``ONE`` fast/stale,
``PRIMARY`` strong — the default, ``QUORUM`` version-max across a
majority).  An anti-entropy sweep (``anti_entropy_every`` ticks) bounds
worst-case staleness.  With the default zero-lag model the cluster takes
the seed's synchronous write path verbatim, so default results are
byte-identical to the pre-replication cluster.

Read routing is pluggable too: a
:class:`~repro.core.placement.ReadSelector` (``read_strategy``) picks
which *eligible* replica serves each slice — ``primary`` (seed
behaviour), ``rotate`` or ``least-loaded`` — so trailing replicas can
absorb read load instead of idling.

Sharding also *improves* confidentiality in the compromised-server model:
an adversary owning one server sees only ``1/N`` of the merged lists and
only that shard's query stream — quantified by :meth:`visible_fraction`.
Replication trades that away for availability: with replication factor f,
a fetch is served by a live replica, and :meth:`fail_server` simulates a
server loss (:meth:`pause_follower` simulates a partition that lets
replicas *diverge* instead).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import fields as dataclass_fields
from dataclasses import replace as dataclass_replace

from repro.core.placement import (
    PlacementPolicy,
    ReadSelector,
    RoundRobinPlacement,
    coerce_read_selector,
    validate_placement,
)
from repro.core.protocol import (
    BatchFetchRequest,
    BatchFetchResponse,
    CoalescedBatchRequest,
    CoalescedBatchResponse,
    FetchRequest,
    FetchResponse,
)
from repro.core.replication import (
    LagModel,
    ReadConsistency,
    ReplicationManager,
    ReplicationStats,
)
from repro.core.server import ObservedFetch, ZerberRServer
from repro.core.views import ViewStats
from repro.crypto.keys import GroupKeyService
from repro.errors import (
    AccessDeniedError,
    ConfigurationError,
    ProtocolError,
    QuorumUnavailableError,
    UnavailableError,
    UnknownListError,
)
from repro.index.postings import EncryptedPostingElement


class ServerCluster:
    """Shard merged posting lists over several untrusted servers."""

    def __init__(
        self,
        key_service: GroupKeyService,
        num_lists: int,
        num_servers: int,
        replication: int = 1,
        placement: PlacementPolicy | None = None,
        lag: LagModel | int | None = None,
        read_consistency: ReadConsistency | str | None = None,
        read_strategy: ReadSelector | str | None = None,
        read_seed: int = 0,
        anti_entropy_every: int | None = None,
    ) -> None:
        if num_servers < 1:
            raise ConfigurationError("need at least one server")
        if not 1 <= replication <= num_servers:
            raise ConfigurationError("replication must be in [1, num_servers]")
        if num_lists < 1:
            raise ProtocolError("num_lists must be >= 1")
        self._num_lists = num_lists
        self.replication = replication
        self._keys = key_service
        self._servers = [
            ZerberRServer(key_service, num_lists=num_lists)
            for _ in range(num_servers)
        ]
        self._alive = [True] * num_servers
        self._policy = placement if placement is not None else RoundRobinPlacement()
        self._placement = validate_placement(
            self._policy.initial_placement(num_lists, num_servers, replication),
            num_lists,
            num_servers,
            replication,
        )
        self._epoch = 0
        self.read_consistency = ReadConsistency.coerce(read_consistency)
        self._read_selector = coerce_read_selector(read_strategy, seed=read_seed)
        self._repl = ReplicationManager(
            self._servers,
            replicas_of=self.replicas_of,
            server_alive=lambda index: self._alive[index],
            num_lists=num_lists,
            lag=lag,
            anti_entropy_every=anti_entropy_every,
        )

    # -- topology -----------------------------------------------------------

    @property
    def num_servers(self) -> int:
        return len(self._servers)

    @property
    def num_lists(self) -> int:
        return self._num_lists

    @property
    def placement_policy(self) -> PlacementPolicy:
        return self._policy

    @property
    def placement_epoch(self) -> int:
        """Version of the placement table; bumps on every rebalance."""
        return self._epoch

    def replicas_of(self, list_id: int) -> list[int]:
        """Server indices holding *list_id* (primary first)."""
        if not 0 <= list_id < self._num_lists:
            raise UnknownListError(list_id)
        return list(self._placement[list_id])

    def server(self, index: int) -> ZerberRServer:
        """Direct access to one server (the adversary's viewpoint)."""
        return self._servers[index]

    def fail_server(self, index: int) -> None:
        """Mark a server as down (availability simulation).

        A down server neither serves reads nor receives replication
        deliveries — a write while any server is down always takes the
        asynchronous path, so acknowledged ops the dead server missed
        live on in the replication log and drain after
        :meth:`restore_server`.  The one idealisation kept from the
        seed: a *primary's* copy models durable storage, so a write to a
        list whose primary is down still lands there (there is no
        failover election yet — see ROADMAP) and reads fail over to the
        live replicas.
        """
        self._alive[index] = False

    def restore_server(self, index: int) -> None:
        self._alive[index] = True

    def is_alive(self, index: int) -> bool:
        """Whether one server is currently up."""
        return self._alive[index]

    # -- replication control plane ------------------------------------------

    @property
    def replication_manager(self) -> ReplicationManager:
        """The replication subsystem (logs, versions, lag scheduler)."""
        return self._repl

    @property
    def replication_stats(self) -> ReplicationStats:
        return self._repl.stats

    def replication_tick(self) -> int:
        """Advance the replication clock one tick; returns ops delivered.

        Deliveries whose lag has elapsed apply to their followers, and
        every ``anti_entropy_every``-th tick additionally force-syncs all
        reachable stale followers.  A no-op for the default zero-lag
        configuration.
        """
        return self._repl.tick()

    def pause_follower(self, index: int) -> None:
        """Partition one server from replication traffic (reads still work)."""
        self._repl.pause(index)

    def resume_follower(self, index: int) -> None:
        self._repl.resume(index)

    def primary_version(self, list_id: int) -> int:
        """The replication-log head version of *list_id*."""
        self.replicas_of(list_id)  # validates the id
        return self._repl.head_version(list_id)

    def applied_version(self, list_id: int, server_index: int) -> int:
        """Ops of *list_id* applied at *server_index*."""
        return self._repl.applied_version(list_id, server_index)

    def replication_backlog(self) -> dict[tuple[int, int], int]:
        """Staleness per (list, server) pair; empty when fully converged."""
        return self._repl.backlog()

    def run_replication_until_quiet(self, max_ticks: int = 1000) -> int:
        """Tick until every *reachable* replica is caught up.

        Returns the ticks run.  Backlog held for paused or down servers
        does not block quiescence — heal them first if the test needs
        full convergence.
        """
        ticks = 0
        while self._repl.reachable_backlog() and ticks < max_ticks:
            self._repl.tick()
            ticks += 1
        return ticks

    # -- data plane -----------------------------------------------------------

    def _write_synchronously(self) -> bool:
        """Whether writes may take the seed's inline all-replica path.

        Requires every server up on top of the manager's conditions
        (zero lag, nothing paused, no backlog): an inline write to a
        down server would contradict the failure model, so any failure
        routes writes through the log instead.
        """
        return all(self._alive) and self._repl.is_synchronous()

    def _resolve_consistency(
        self, consistency: ReadConsistency | str | None
    ) -> ReadConsistency:
        """Per-call override, or the cluster default."""
        if consistency is None:
            return self.read_consistency
        return ReadConsistency.coerce(consistency)

    def _ensure_primary_current(self, list_id: int) -> None:
        """Refuse to acknowledge a write at a gapped primary.

        A stale-source migration cutover can install a primary below the
        log head; acknowledging a fresh write there would stamp the
        primary *over* its gap and silently lose the gap ops (their
        scheduled catch-up delivery would no-op).  Catch the primary up
        from the log first; if it is unreachable (paused or down with a
        gap), the write fails honestly with :class:`UnavailableError`.
        """
        primary = self.replicas_of(list_id)[0]
        if (
            self._repl.applied_version(list_id, primary)
            < self._repl.head_version(list_id)
        ):
            self._repl.sync(list_id, primary, reason="write-catchup")
            if (
                self._repl.applied_version(list_id, primary)
                < self._repl.head_version(list_id)
            ):
                raise UnavailableError(list_id, len(self.replicas_of(list_id)))

    def _validate_items(
        self,
        principal: str,
        items: Iterable[tuple[int, EncryptedPostingElement]],
    ) -> list[tuple[int, EncryptedPostingElement]]:
        """All-or-nothing preamble of the batched write paths.

        List id, TRS and group membership are checked for the whole batch
        before any server is touched, so a rejected batch cannot leave
        replicas of a list divergent.
        """
        items = list(items)
        for list_id, element in items:
            if element.trs is None:
                raise ProtocolError("Zerber+R elements must carry a TRS")
            if not self._keys.is_member(principal, element.group):
                raise AccessDeniedError(principal, element.group)
            self.replicas_of(list_id)  # validates the list id
        return items

    def _group_by_server(
        self,
        items: list[tuple[int, EncryptedPostingElement]],
        primary_only: bool = False,
    ) -> dict[int, list[tuple[int, EncryptedPostingElement]]]:
        """Group items by destination server, preserving caller order."""
        per_server: dict[int, list[tuple[int, EncryptedPostingElement]]] = {}
        for list_id, element in items:
            replicas = self.replicas_of(list_id)
            for server_index in replicas[:1] if primary_only else replicas:
                per_server.setdefault(server_index, []).append((list_id, element))
        return per_server

    def insert(
        self, principal: str, list_id: int, element: EncryptedPostingElement
    ) -> None:
        """Insert one element; replicas converge through the log.

        On the synchronous path (zero lag, no backlog) every replica is
        mutated inline — the seed behaviour.  Otherwise the primary is
        mutated and acknowledged immediately and the op drains to
        followers on later replication ticks.
        """
        replicas = self.replicas_of(list_id)
        if self._write_synchronously():
            for server_index in replicas:
                self._servers[server_index].insert(principal, list_id, element)
            self._repl.record_synchronous(list_id, 1)
            return
        self._ensure_primary_current(list_id)
        # The primary's insert performs the TRS/membership validation; a
        # rejected element raises before anything is logged.
        self._servers[replicas[0]].insert(principal, list_id, element)
        self._repl.record_insert(list_id, element)
        self._repl.deliver_due()

    def insert_many(
        self,
        principal: str,
        items: Iterable[tuple[int, EncryptedPostingElement]],
    ) -> int:
        """Replicated multi-insert, batched per touched server.

        Items are validated up front (all-or-nothing, see
        :meth:`_validate_items`) and grouped by destination, so a batch
        costs O(touched servers) server calls instead of O(elements ×
        replication).  On the asynchronous path only the *primaries* are
        written inline; follower copies drain through the log.
        """
        return self._replicated_write_batch(principal, items, bulk=False)

    def bulk_load(
        self,
        principal: str,
        items: Iterable[tuple[int, EncryptedPostingElement]],
    ) -> int:
        """Bulk-load with the same all-or-nothing validation as
        :meth:`insert_many`; each touched server sorts once."""
        return self._replicated_write_batch(principal, items, bulk=True)

    def _replicated_write_batch(
        self,
        principal: str,
        items: Iterable[tuple[int, EncryptedPostingElement]],
        bulk: bool,
    ) -> int:
        """Shared body of :meth:`insert_many` and :meth:`bulk_load` —
        identical replication discipline, different server entry point."""
        items = self._validate_items(principal, items)
        sync = self._write_synchronously()
        if not sync:
            for list_id in dict.fromkeys(lid for lid, _ in items):
                self._ensure_primary_current(list_id)
        per_server = self._group_by_server(items, primary_only=not sync)
        for server_index in sorted(per_server):
            server = self._servers[server_index]
            load = server.bulk_load if bulk else server.insert_many
            load(principal, per_server[server_index])
        if sync:
            for list_id, count in Counter(lid for lid, _ in items).items():
                self._repl.record_synchronous(list_id, count)
        else:
            for list_id, element in items:
                self._repl.record_insert(list_id, element)
            self._repl.deliver_due()
        return len(items)

    def delete_element(
        self, principal: str, list_id: int, ciphertext: bytes
    ) -> bool:
        """Delete a receipt's element; followers learn through the log."""
        replicas = self.replicas_of(list_id)
        if self._write_synchronously():
            removed_any = False
            for server_index in replicas:
                if self._servers[server_index].delete_element(
                    principal, list_id, ciphertext
                ):
                    removed_any = True
            if removed_any:
                self._repl.record_synchronous(list_id, 1)
            return removed_any
        self._ensure_primary_current(list_id)
        removed = self._servers[replicas[0]].delete_element(
            principal, list_id, ciphertext
        )
        if removed:
            self._repl.record_delete(list_id, ciphertext)
            self._repl.deliver_due()
        return removed

    # -- read path -------------------------------------------------------------

    def route(
        self, list_id: int, consistency: ReadConsistency | str | None = None
    ) -> int:
        """The replica that should serve a read of *list_id*.

        Eligibility depends on the consistency level (default: the
        cluster's ``read_consistency``): ``PRIMARY`` prefers caught-up
        live replicas, ``ONE`` accepts any live replica, ``QUORUM``
        requires a live majority and returns the version-max member.
        Among eligible replicas the configured
        :class:`~repro.core.placement.ReadSelector` picks one (the
        default always takes the first — the seed's replica-0 skew).

        Raises :class:`UnavailableError` when every replica is down and
        :class:`QuorumUnavailableError` when a quorum read lacks a live
        majority.
        """
        return self._route_read(list_id, self._resolve_consistency(consistency))

    def _route_read(
        self,
        list_id: int,
        consistency: ReadConsistency,
        loads: list[int] | None = None,
    ) -> int:
        """:meth:`route` with a resolved consistency and optional
        precomputed per-server loads (batched reads compute them once)."""
        replicas = self.replicas_of(list_id)
        live = [s for s in replicas if self._alive[s]]
        if not live:
            raise UnavailableError(list_id, len(replicas))
        if consistency is ReadConsistency.QUORUM:
            needed = len(replicas) // 2 + 1
            if len(live) < needed:
                raise QuorumUnavailableError(
                    list_id, len(replicas), needed, len(live)
                )
            self._repl.stats.version_probes += len(live)
            return max(
                live, key=lambda s: self._repl.applied_version(list_id, s)
            )
        if consistency is ReadConsistency.PRIMARY:
            head = self._repl.head_version(list_id)
            fresh = [
                s
                for s in live
                if self._repl.applied_version(list_id, s) == head
            ]
            candidates = fresh if fresh else live
        else:  # ONE
            candidates = live
        if len(candidates) == 1:
            return candidates[0]
        if loads is None:
            loads = (
                self.per_server_load() if self._read_selector.needs_loads else []
            )
        return self._read_selector.select(list_id, candidates, loads)

    def fetch(
        self,
        request: FetchRequest,
        consistency: ReadConsistency | str | None = None,
    ) -> FetchResponse:
        """Serve one slice at the requested (or default) consistency.

        The response's ``replica_version`` is the serving replica's
        applied log version; a stale replica triggers read-repair (see
        :meth:`_finalize_read`).
        """
        consistency = self._resolve_consistency(consistency)
        server_index = self._route_read(request.list_id, consistency)
        response = self._servers[server_index].fetch(request)
        return self._finalize_read(request, server_index, response, consistency)

    def batch_fetch(
        self,
        batch: BatchFetchRequest,
        consistency: ReadConsistency | str | None = None,
    ) -> BatchFetchResponse:
        """Serve a batch with one sub-batch per shard server.

        Each slice routes per the consistency level; slices that land on
        the same server travel as one :class:`BatchFetchRequest` to it
        (one round-trip per touched server, not per slice).  Responses
        reassemble in the original slice order, then each is finalized
        (version stamp + read-repair) individually — a repair re-serve
        costs one extra single-slice fetch, which the stats expose as
        repair traffic.  A list with no live replica fails the whole
        batch, matching :meth:`fetch`'s error behaviour.
        """
        consistency = self._resolve_consistency(consistency)
        loads = (
            self.per_server_load() if self._read_selector.needs_loads else None
        )
        routed: list[int] = [
            self._route_read(request.list_id, consistency, loads)
            for request in batch.requests
        ]
        per_server: dict[int, list[int]] = {}
        for slice_index, server_index in enumerate(routed):
            per_server.setdefault(server_index, []).append(slice_index)
        responses: list[FetchResponse | None] = [None] * len(batch.requests)
        for server_index, slice_indices in per_server.items():
            sub_batch = BatchFetchRequest(
                principal=batch.principal,
                requests=tuple(batch.requests[i] for i in slice_indices),
            )
            sub_response = self._servers[server_index].batch_fetch(sub_batch)
            for i, response in zip(slice_indices, sub_response.responses):
                responses[i] = self._finalize_read(
                    batch.requests[i], server_index, response, consistency
                )
        return BatchFetchResponse(responses=tuple(responses))  # type: ignore[arg-type]

    def serve_envelope(
        self,
        server_index: int,
        envelope: CoalescedBatchRequest,
        consistency: ReadConsistency | str | None = None,
    ) -> CoalescedBatchResponse:
        """Deliver a coordinator envelope to one (live) shard server.

        The coordinator routed the envelope itself, so the cluster only
        verifies that the target is alive and that the envelope was routed
        under the *current* placement epoch — an envelope built before a
        rebalance must be re-routed, not served from a stale shard map.
        Every slice is then finalized like a direct fetch: versions are
        stamped and stale slices are read-repaired per the consistency
        level (extra single-slice fetches, visible in the stats).
        """
        if not 0 <= server_index < len(self._servers):
            raise ConfigurationError(f"unknown server index {server_index}")
        if not self._alive[server_index]:
            raise ProtocolError(f"server {server_index} is down")
        if envelope.epoch is not None and envelope.epoch != self._epoch:
            raise ProtocolError(
                f"envelope routed under placement epoch {envelope.epoch}, "
                f"cluster is at {self._epoch}"
            )
        consistency = self._resolve_consistency(consistency)
        raw = self._servers[server_index].coalesced_fetch(envelope)
        flat_requests = [
            request for batch in envelope.batches for request in batch.requests
        ]
        finalized = tuple(
            self._finalize_read(request, server_index, response, consistency)
            for request, response in zip(flat_requests, raw.responses)
        )
        return CoalescedBatchResponse(
            responses=finalized, slice_ids=raw.slice_ids, epoch=raw.epoch
        )

    def _finalize_read(
        self,
        request: FetchRequest,
        server_index: int,
        response: FetchResponse,
        consistency: ReadConsistency,
    ) -> FetchResponse:
        """Stamp the replica version; detect divergence and read-repair.

        A serving replica behind the log head is caught up immediately
        when reachable (the repair ops also patch its readable views).
        Under ``PRIMARY``/``QUORUM`` the slice is then *re-served* from a
        replica at the head — the repaired server itself, or the primary
        — so the caller sees every acknowledged write; under ``ONE`` the
        stale response is returned as-is (fast/stale).
        """
        list_id = request.list_id
        version = self._repl.applied_version(list_id, server_index)
        head = self._repl.head_version(list_id)
        if version >= head:
            return dataclass_replace(response, replica_version=version)
        self._repl.observe_staleness(head - version)
        if self._repl.sync(list_id, server_index):
            self._repl.stats.read_repairs += 1
        if consistency is ReadConsistency.QUORUM:
            # Quorum reads repair every stale live replica they examined.
            for other in self.replicas_of(list_id):
                if (
                    other != server_index
                    and self._alive[other]
                    and self._repl.applied_version(list_id, other) < head
                    and self._repl.sync(list_id, other)
                ):
                    self._repl.stats.read_repairs += 1
        if consistency is not ReadConsistency.ONE:
            reserve_from = None
            if self._repl.applied_version(list_id, server_index) >= head:
                reserve_from = server_index  # repaired in place
            else:
                primary = self.replicas_of(list_id)[0]
                if (
                    self._alive[primary]
                    and self._repl.applied_version(list_id, primary) >= head
                ):
                    reserve_from = primary
            if reserve_from is not None:
                response = self._servers[reserve_from].fetch(request)
                self._repl.stats.read_reserves += 1
                version = self._repl.applied_version(list_id, reserve_from)
                return dataclass_replace(response, replica_version=version)
        return dataclass_replace(response, replica_version=version)

    # -- placement control plane -------------------------------------------------

    def list_heat(self) -> dict[int, int]:
        """Cumulative slices served per list, aggregated over all servers.

        Counters stay with the server that served the fetch, so summing
        across servers keeps a migrated list's history intact.
        """
        heat: dict[int, int] = {}
        for server in self._servers:
            for list_id, count in server.fetch_counts.items():
                heat[list_id] = heat.get(list_id, 0) + count
        return heat

    def rebalance(self) -> dict[int, tuple[int, ...]]:
        """Ask the placement policy for heat-driven moves and apply them.

        Every proposed move is migrated (drain-then-cutover through the
        replication log, see :meth:`_migrate_list`) and the placement
        epoch bumps once if anything moved — including when a later
        migration fails midway, so envelopes routed under the
        pre-rebalance table are always rejected rather than served from a
        half-migrated shard map.  Moves that would place a list on a dead
        server are refused here even if a (buggy) policy proposes them.
        Returns the applied moves; empty for static policies such as
        round-robin.
        """
        proposal = self._policy.propose(
            self.list_heat(),
            [tuple(replicas) for replicas in self._placement],
            self.num_servers,
            self.replication,
            alive=tuple(self._alive),
        )
        # Reject a malformed proposal wholesale BEFORE applying any move —
        # a defence against buggy policies; failing on move k after moves
        # 0..k-1 were applied would leave a half-rebalanced cluster.
        for list_id, targets in proposal.items():
            if not 0 <= list_id < self._num_lists:
                raise ConfigurationError(
                    f"placement policy proposed unknown list {list_id}"
                )
            targets = tuple(targets)
            if len(targets) != self.replication or len(set(targets)) != len(
                targets
            ):
                raise ConfigurationError(
                    f"placement policy proposed {len(targets)} replicas for "
                    f"list {list_id}, expected {self.replication} distinct"
                )
            if not all(0 <= s < len(self._servers) for s in targets):
                raise ConfigurationError(
                    f"placement policy proposed unknown server for list {list_id}"
                )
        moves = {
            list_id: tuple(targets)
            for list_id, targets in proposal.items()
            if tuple(targets) != self._placement[list_id]
            and all(self._alive[s] for s in targets)
        }
        applied: dict[int, tuple[int, ...]] = {}
        try:
            for list_id, targets in sorted(moves.items()):
                try:
                    self._migrate_list(list_id, targets)
                except UnavailableError:
                    # Every current replica of this list is down, so its
                    # data cannot be copied anywhere — leave it in place
                    # (it is unreachable either way) instead of failing
                    # the whole rebalance and aborting unrelated queries.
                    continue
                applied[list_id] = targets
        finally:
            if applied:
                self._epoch += 1
        return applied

    # -- crash recovery (persistence support; see repro.persist) -----------------

    def placement_table(self) -> list[tuple[int, ...]]:
        """A copy of the authoritative placement table (persisted in v2)."""
        return [tuple(replicas) for replicas in self._placement]

    def restore_topology(
        self, placement: Iterable[Iterable[int]], epoch: int
    ) -> None:
        """Install a persisted placement table and epoch (recovery path).

        Replaces the replication manager with a fresh one built over the
        restored placement (same lag model and anti-entropy cadence);
        the persistence layer then reinstalls each list's log and
        per-replica applied versions through
        :meth:`~repro.core.replication.ReplicationManager.restore_clock`
        and ``restore_list_state``.  Must run before the servers' list
        contents are restored only in the sense that nothing here reads
        them — the order the persist module uses is topology, clock,
        lists, logs, views.
        """
        if epoch < 0:
            raise ConfigurationError("placement epoch must be >= 0")
        self._placement = validate_placement(
            [tuple(replicas) for replicas in placement],
            self._num_lists,
            len(self._servers),
            self.replication,
        )
        self._epoch = int(epoch)
        self._repl = ReplicationManager(
            self._servers,
            replicas_of=self.replicas_of,
            server_alive=lambda index: self._alive[index],
            num_lists=self._num_lists,
            lag=self._repl.lag,
            anti_entropy_every=self._repl.anti_entropy_every,
        )

    def _migrate_list(self, list_id: int, targets: tuple[int, ...]) -> None:
        """Move one list's replicas through the log: drain, then cut over.

        The export source is the most-caught-up live replica; it is first
        *drained* (caught up from the replication log) so the copy is as
        fresh as reachability allows — the stop-the-world wholesale copy
        of the seed became drain-then-cutover.  If the source still lags
        the head (it was partitioned), new replicas are registered at the
        source's version and the remaining ops are scheduled through the
        normal lag-driven delivery, so an unlucky cut-over converges
        instead of silently losing acknowledged writes.
        """
        if len(targets) != self.replication or len(set(targets)) != len(targets):
            raise ConfigurationError(
                f"migration of list {list_id} needs {self.replication} "
                "distinct target servers"
            )
        if not all(0 <= s < len(self._servers) for s in targets):
            raise ConfigurationError("migration names an unknown server")
        old = self._placement[list_id]
        source = self._repl.best_source(list_id)
        if source is None:
            raise UnavailableError(list_id, len(old))
        self._repl.sync(list_id, source, reason="migration")
        elements = self._servers[source].export_list(list_id)
        source_version = self._repl.applied_version(list_id, source)
        for server_index in targets:
            if server_index not in old:
                self._servers[server_index].import_list(list_id, elements)
        self._placement[list_id] = tuple(targets)
        for server_index in targets:
            if server_index not in old:
                self._repl.register_replica(list_id, server_index, source_version)
        for server_index in old:
            if server_index not in targets:
                self._servers[server_index].clear_list(list_id)
                self._repl.drop_replica(list_id, server_index)

    # -- accounting -------------------------------------------------------------

    @property
    def num_elements(self) -> int:
        """Logical element count (replicas counted once).

        Counted at the primaries, so replication lag on followers does
        not skew the logical size.
        """
        return sum(
            self._servers[replicas[0]].list_length(list_id)
            for list_id, replicas in enumerate(self._placement)
        )

    def list_length(self, list_id: int) -> int:
        primary = self.replicas_of(list_id)[0]
        return self._servers[primary].list_length(list_id)

    def visible_trs_values(self, list_id: int) -> list[float]:
        primary = self.replicas_of(list_id)[0]
        return self._servers[primary].visible_trs_values(list_id)

    def storage_score_slots(self) -> int:
        return self.num_elements

    def storage_bits(self) -> int:
        return sum(s.storage_bits() for s in self._servers)

    @property
    def total_calls(self) -> int:
        """Fetch calls served cluster-wide (a batch/envelope counts once)."""
        return sum(s.num_calls for s in self._servers)

    def per_server_load(self) -> list[int]:
        """Slices served per server — the read-load balance signal."""
        return [sum(s.fetch_counts.values()) for s in self._servers]

    def view_stats(self) -> ViewStats:
        """Cluster-wide readable-view health: summed per-server counters.

        Aggregates every server's :class:`~repro.core.views.ViewStats`
        (hits, rebuilds, patches, evictions, …) so benchmarks and the
        coordinator can watch view churn — e.g. a migration-heavy
        rebalance shows up as a spike in invalidations, and replication
        repair traffic as ``replication_patches``.
        """
        total = ViewStats()
        for server in self._servers:
            stats = server.view_stats
            for field in dataclass_fields(ViewStats):
                setattr(
                    total,
                    field.name,
                    getattr(total, field.name) + getattr(stats, field.name),
                )
        return total

    # -- adversary model ----------------------------------------------------------

    def visible_fraction(self, compromised: Iterable[int]) -> float:
        """Fraction of merged lists an adversary owning *compromised*
        servers can read — the confidentiality benefit of sharding."""
        owned = set(compromised)
        if not owned <= set(range(len(self._servers))):
            raise ConfigurationError("unknown server index")
        visible = sum(
            1
            for list_id in range(self._num_lists)
            if owned & set(self.replicas_of(list_id))
        )
        return visible / self._num_lists

    def observations_at(self, index: int) -> list[ObservedFetch]:
        """The fetch log of one (compromised) server."""
        return self._servers[index].observations
