"""Multi-server deployment (paper §3.1: "Zerber relies on a centralized
set of largely untrusted index servers").

A :class:`ServerCluster` shards the merged posting lists across N
:class:`~repro.core.server.ZerberRServer` instances and exposes the same
insert/fetch/batch-fetch surface, so
:class:`~repro.core.client.ZerberRClient` works against a cluster
unchanged.  A batched fetch splits into one sub-batch per shard server
(first live replica of each list), so a multi-term client round costs one
round-trip per *touched server* rather than per merged list.

Which server holds which list is decided by a pluggable
:class:`~repro.core.placement.PlacementPolicy` (round-robin by default —
the seed behaviour byte-for-byte).  The cluster owns the authoritative
placement table plus a *placement epoch* that bumps whenever
:meth:`rebalance` migrates lists between servers (heat-weighted policies
move hot head-term lists off overloaded shards); coalesced envelopes pin
the epoch they were routed under so a stale route is rejected rather than
silently served from a server that no longer hosts the list.

Sharding also *improves* confidentiality in the compromised-server model:
an adversary owning one server sees only ``1/N`` of the merged lists and
only that shard's query stream — quantified by :meth:`visible_fraction`.
Replication trades that away for availability: with replication factor f,
a fetch is served by any live replica, and :meth:`fail_server` simulates a
server loss.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import fields as dataclass_fields

from repro.core.placement import (
    PlacementPolicy,
    RoundRobinPlacement,
    validate_placement,
)
from repro.core.protocol import (
    BatchFetchRequest,
    BatchFetchResponse,
    CoalescedBatchRequest,
    CoalescedBatchResponse,
    FetchRequest,
    FetchResponse,
)
from repro.core.server import ObservedFetch, ZerberRServer
from repro.core.views import ViewStats
from repro.crypto.keys import GroupKeyService
from repro.errors import (
    AccessDeniedError,
    ConfigurationError,
    ProtocolError,
    UnavailableError,
    UnknownListError,
)
from repro.index.postings import EncryptedPostingElement


class ServerCluster:
    """Shard merged posting lists over several untrusted servers."""

    def __init__(
        self,
        key_service: GroupKeyService,
        num_lists: int,
        num_servers: int,
        replication: int = 1,
        placement: PlacementPolicy | None = None,
    ) -> None:
        if num_servers < 1:
            raise ConfigurationError("need at least one server")
        if not 1 <= replication <= num_servers:
            raise ConfigurationError("replication must be in [1, num_servers]")
        if num_lists < 1:
            raise ProtocolError("num_lists must be >= 1")
        self._num_lists = num_lists
        self.replication = replication
        self._keys = key_service
        self._servers = [
            ZerberRServer(key_service, num_lists=num_lists)
            for _ in range(num_servers)
        ]
        self._alive = [True] * num_servers
        self._policy = placement if placement is not None else RoundRobinPlacement()
        self._placement = validate_placement(
            self._policy.initial_placement(num_lists, num_servers, replication),
            num_lists,
            num_servers,
            replication,
        )
        self._epoch = 0

    # -- topology -----------------------------------------------------------

    @property
    def num_servers(self) -> int:
        return len(self._servers)

    @property
    def num_lists(self) -> int:
        return self._num_lists

    @property
    def placement_policy(self) -> PlacementPolicy:
        return self._policy

    @property
    def placement_epoch(self) -> int:
        """Version of the placement table; bumps on every rebalance."""
        return self._epoch

    def replicas_of(self, list_id: int) -> list[int]:
        """Server indices holding *list_id* (primary first)."""
        if not 0 <= list_id < self._num_lists:
            raise UnknownListError(list_id)
        return list(self._placement[list_id])

    def server(self, index: int) -> ZerberRServer:
        """Direct access to one server (the adversary's viewpoint)."""
        return self._servers[index]

    def fail_server(self, index: int) -> None:
        """Mark a server as down (availability simulation)."""
        self._alive[index] = False

    def restore_server(self, index: int) -> None:
        self._alive[index] = True

    # -- data plane -----------------------------------------------------------

    def insert(
        self, principal: str, list_id: int, element: EncryptedPostingElement
    ) -> None:
        """Insert into every replica of the list's shard."""
        for server_index in self.replicas_of(list_id):
            self._servers[server_index].insert(principal, list_id, element)

    def insert_many(
        self,
        principal: str,
        items: Iterable[tuple[int, EncryptedPostingElement]],
    ) -> int:
        """Replicated multi-insert, batched per server.

        Like :meth:`bulk_load`, items are grouped by destination first and
        each touched server gets ONE ``insert_many`` call covering all of
        its replicas' elements — O(touched servers) server calls instead
        of O(elements × replication).  Per-server item order preserves the
        caller's order, so view patching behaves as repeated
        :meth:`insert`.

        Every item is validated (list id, TRS, group membership) *before*
        any server is touched: a rejected batch must not leave replicas of
        the same list divergent, which per-server dispatch would otherwise
        do on a mid-batch failure.
        """
        total, per_server = self._validated_per_server(principal, items)
        for server_index in sorted(per_server):
            self._servers[server_index].insert_many(
                principal, per_server[server_index]
            )
        return total

    def _validated_per_server(
        self,
        principal: str,
        items: Iterable[tuple[int, EncryptedPostingElement]],
    ) -> tuple[int, dict[int, list[tuple[int, EncryptedPostingElement]]]]:
        """Validate every item, then group by destination server.

        The shared all-or-nothing preamble of :meth:`insert_many` and
        :meth:`bulk_load`: list id, TRS and group membership are checked
        for the whole batch before any server is touched, so a rejected
        batch cannot leave replicas of a list divergent.
        """
        items = list(items)
        per_server: dict[int, list[tuple[int, EncryptedPostingElement]]] = {}
        for list_id, element in items:
            if element.trs is None:
                raise ProtocolError("Zerber+R elements must carry a TRS")
            if not self._keys.is_member(principal, element.group):
                raise AccessDeniedError(principal, element.group)
            for server_index in self.replicas_of(list_id):
                per_server.setdefault(server_index, []).append((list_id, element))
        return len(items), per_server

    def delete_element(
        self, principal: str, list_id: int, ciphertext: bytes
    ) -> bool:
        """Delete a receipt's element from every replica."""
        removed_any = False
        for server_index in self.replicas_of(list_id):
            if self._servers[server_index].delete_element(
                principal, list_id, ciphertext
            ):
                removed_any = True
        return removed_any

    def bulk_load(
        self,
        principal: str,
        items: Iterable[tuple[int, EncryptedPostingElement]],
    ) -> int:
        """Bulk-load each element into all of its replicas.

        Like :meth:`insert_many`, every item is validated before any
        server is touched, so a rejected batch cannot leave replicas of
        the same list divergent.
        """
        total, per_server = self._validated_per_server(principal, items)
        for server_index in sorted(per_server):
            self._servers[server_index].bulk_load(
                principal, per_server[server_index]
            )
        return total

    def fetch(self, request: FetchRequest) -> FetchResponse:
        """Serve from the first live replica of the requested list."""
        return self._servers[self.route(request.list_id)].fetch(request)

    def route(self, list_id: int) -> int:
        """First live replica holding *list_id* (replica failover).

        Raises :class:`UnavailableError` (naming the list) when every
        replica is down.
        """
        replicas = self.replicas_of(list_id)
        for server_index in replicas:
            if self._alive[server_index]:
                return server_index
        raise UnavailableError(list_id, len(replicas))

    def batch_fetch(self, batch: BatchFetchRequest) -> BatchFetchResponse:
        """Serve a batch with one sub-batch per shard server.

        Each slice routes to the first live replica of its list; slices
        that land on the same server travel as one
        :class:`BatchFetchRequest` to it (one round-trip per touched
        server, not per slice).  Responses reassemble in the original
        slice order.  A list with no live replica fails the whole batch,
        matching :meth:`fetch`'s error behaviour.
        """
        routed: list[int] = [
            self.route(request.list_id) for request in batch.requests
        ]
        per_server: dict[int, list[int]] = {}
        for slice_index, server_index in enumerate(routed):
            per_server.setdefault(server_index, []).append(slice_index)
        responses: list[FetchResponse | None] = [None] * len(batch.requests)
        for server_index, slice_indices in per_server.items():
            sub_batch = BatchFetchRequest(
                principal=batch.principal,
                requests=tuple(batch.requests[i] for i in slice_indices),
            )
            sub_response = self._servers[server_index].batch_fetch(sub_batch)
            for i, response in zip(slice_indices, sub_response.responses):
                responses[i] = response
        return BatchFetchResponse(responses=tuple(responses))  # type: ignore[arg-type]

    def serve_envelope(
        self, server_index: int, envelope: CoalescedBatchRequest
    ) -> CoalescedBatchResponse:
        """Deliver a coordinator envelope to one (live) shard server.

        The coordinator routed the envelope itself, so the cluster only
        verifies that the target is alive and that the envelope was routed
        under the *current* placement epoch — an envelope built before a
        rebalance must be re-routed, not served from a stale shard map.
        """
        if not 0 <= server_index < len(self._servers):
            raise ConfigurationError(f"unknown server index {server_index}")
        if not self._alive[server_index]:
            raise ProtocolError(f"server {server_index} is down")
        if envelope.epoch is not None and envelope.epoch != self._epoch:
            raise ProtocolError(
                f"envelope routed under placement epoch {envelope.epoch}, "
                f"cluster is at {self._epoch}"
            )
        return self._servers[server_index].coalesced_fetch(envelope)

    # -- placement control plane -------------------------------------------------

    def list_heat(self) -> dict[int, int]:
        """Cumulative slices served per list, aggregated over all servers.

        Counters stay with the server that served the fetch, so summing
        across servers keeps a migrated list's history intact.
        """
        heat: dict[int, int] = {}
        for server in self._servers:
            for list_id, count in server.fetch_counts.items():
                heat[list_id] = heat.get(list_id, 0) + count
        return heat

    def rebalance(self) -> dict[int, tuple[int, ...]]:
        """Ask the placement policy for heat-driven moves and apply them.

        Every proposed move is migrated (data copied to new replicas, then
        dropped from old ones) and the placement epoch bumps once if
        anything moved — including when a later migration fails midway, so
        envelopes routed under the pre-rebalance table are always rejected
        rather than served from a half-migrated shard map.  Moves that
        would place a list on a dead server are refused here even if a
        (buggy) policy proposes them.  Returns the applied moves; empty
        for static policies such as round-robin.
        """
        proposal = self._policy.propose(
            self.list_heat(),
            [tuple(replicas) for replicas in self._placement],
            self.num_servers,
            self.replication,
            alive=tuple(self._alive),
        )
        # Reject a malformed proposal wholesale BEFORE applying any move —
        # a defence against buggy policies; failing on move k after moves
        # 0..k-1 were applied would leave a half-rebalanced cluster.
        for list_id, targets in proposal.items():
            if not 0 <= list_id < self._num_lists:
                raise ConfigurationError(
                    f"placement policy proposed unknown list {list_id}"
                )
            targets = tuple(targets)
            if len(targets) != self.replication or len(set(targets)) != len(
                targets
            ):
                raise ConfigurationError(
                    f"placement policy proposed {len(targets)} replicas for "
                    f"list {list_id}, expected {self.replication} distinct"
                )
            if not all(0 <= s < len(self._servers) for s in targets):
                raise ConfigurationError(
                    f"placement policy proposed unknown server for list {list_id}"
                )
        moves = {
            list_id: tuple(targets)
            for list_id, targets in proposal.items()
            if tuple(targets) != self._placement[list_id]
            and all(self._alive[s] for s in targets)
        }
        applied: dict[int, tuple[int, ...]] = {}
        try:
            for list_id, targets in sorted(moves.items()):
                try:
                    self._migrate_list(list_id, targets)
                except UnavailableError:
                    # Every current replica of this list is down, so its
                    # data cannot be copied anywhere — leave it in place
                    # (it is unreachable either way) instead of failing
                    # the whole rebalance and aborting unrelated queries.
                    continue
                applied[list_id] = targets
        finally:
            if applied:
                self._epoch += 1
        return applied

    def _migrate_list(self, list_id: int, targets: tuple[int, ...]) -> None:
        """Move one list's replicas: copy to new servers, drop from old."""
        if len(targets) != self.replication or len(set(targets)) != len(targets):
            raise ConfigurationError(
                f"migration of list {list_id} needs {self.replication} "
                "distinct target servers"
            )
        if not all(0 <= s < len(self._servers) for s in targets):
            raise ConfigurationError("migration names an unknown server")
        old = self._placement[list_id]
        source = self.route(list_id)
        elements = self._servers[source].export_list(list_id)
        for server_index in targets:
            if server_index not in old:
                self._servers[server_index].import_list(list_id, elements)
        for server_index in old:
            if server_index not in targets:
                self._servers[server_index].clear_list(list_id)
        self._placement[list_id] = tuple(targets)

    # -- accounting -------------------------------------------------------------

    @property
    def num_elements(self) -> int:
        """Logical element count (replicas counted once)."""
        total_stored = sum(s.num_elements for s in self._servers)
        return total_stored // self.replication

    def list_length(self, list_id: int) -> int:
        primary = self.replicas_of(list_id)[0]
        return self._servers[primary].list_length(list_id)

    def visible_trs_values(self, list_id: int) -> list[float]:
        primary = self.replicas_of(list_id)[0]
        return self._servers[primary].visible_trs_values(list_id)

    def storage_score_slots(self) -> int:
        return self.num_elements

    def storage_bits(self) -> int:
        return sum(s.storage_bits() for s in self._servers)

    @property
    def total_calls(self) -> int:
        """Fetch calls served cluster-wide (a batch/envelope counts once)."""
        return sum(s.num_calls for s in self._servers)

    def per_server_load(self) -> list[int]:
        """Slices served per server — the read-load balance signal."""
        return [sum(s.fetch_counts.values()) for s in self._servers]

    def view_stats(self) -> ViewStats:
        """Cluster-wide readable-view health: summed per-server counters.

        Aggregates every server's :class:`~repro.core.views.ViewStats`
        (hits, rebuilds, patches, evictions, …) so benchmarks and the
        coordinator can watch view churn — e.g. a migration-heavy
        rebalance shows up as a spike in invalidations.
        """
        total = ViewStats()
        for server in self._servers:
            stats = server.view_stats
            for field in dataclass_fields(ViewStats):
                setattr(
                    total,
                    field.name,
                    getattr(total, field.name) + getattr(stats, field.name),
                )
        return total

    # -- adversary model ----------------------------------------------------------

    def visible_fraction(self, compromised: Iterable[int]) -> float:
        """Fraction of merged lists an adversary owning *compromised*
        servers can read — the confidentiality benefit of sharding."""
        owned = set(compromised)
        if not owned <= set(range(len(self._servers))):
            raise ConfigurationError("unknown server index")
        visible = sum(
            1
            for list_id in range(self._num_lists)
            if owned & set(self.replicas_of(list_id))
        )
        return visible / self._num_lists

    def observations_at(self, index: int) -> list[ObservedFetch]:
        """The fetch log of one (compromised) server."""
        return self._servers[index].observations
