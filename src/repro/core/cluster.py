"""Multi-server deployment (paper §3.1: "Zerber relies on a centralized
set of largely untrusted index servers").

A :class:`ServerCluster` shards the merged posting lists across N
:class:`~repro.core.server.ZerberRServer` instances and exposes the same
insert/fetch/batch-fetch surface, so
:class:`~repro.core.client.ZerberRClient` works against a cluster
unchanged.  A batched fetch splits into one sub-batch per shard server,
so a multi-term client round costs one round-trip per *touched server*
rather than per merged list.

Which server holds which list is decided by a pluggable
:class:`~repro.core.placement.PlacementPolicy` (round-robin by default —
the seed behaviour byte-for-byte).  The cluster owns the authoritative
placement table plus a *placement epoch* that bumps whenever
:meth:`rebalance` migrates lists between servers (heat-weighted policies
move hot head-term lists off overloaded shards); coalesced envelopes pin
the epoch they were routed under so a stale route is rejected rather than
silently served from a server that no longer hosts the list.

Replication is a real subsystem (:mod:`repro.core.replication`), not a
synchronous fan-out: each list has a primary replica (first in its
placement tuple) and a versioned replication log.  Writes apply to the
primary inside the write call and drain to followers asynchronously under
a configurable :class:`~repro.core.replication.LagModel`; reads carry the
serving replica's applied version, and the cluster detects divergence and
read-repairs according to the requested
:class:`~repro.core.replication.ReadConsistency` (``ONE`` fast/stale,
``PRIMARY`` strong — the default, ``QUORUM`` version-max across a
majority).  An anti-entropy sweep (``anti_entropy_every`` ticks) bounds
worst-case staleness.  With the default zero-lag model the cluster takes
the seed's synchronous write path verbatim, so default results are
byte-identical to the pre-replication cluster.

Read routing is pluggable too: a
:class:`~repro.core.placement.ReadSelector` (``read_strategy``) picks
which *eligible* replica serves each slice — ``primary`` (seed
behaviour), ``rotate`` or ``least-loaded`` — so trailing replicas can
absorb read load instead of idling.

Sharding also *improves* confidentiality in the compromised-server model:
an adversary owning one server sees only ``1/N`` of the merged lists and
only that shard's query stream — quantified by :meth:`visible_fraction`.
Replication trades that away for availability: with replication factor f,
a fetch is served by a live replica, and :meth:`fail_server` simulates a
server loss (:meth:`pause_follower` simulates a partition that lets
replicas *diverge* instead).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping
from dataclasses import fields as dataclass_fields
from dataclasses import replace as dataclass_replace

from repro.core.placement import (
    PlacementPolicy,
    ReadSelector,
    RoundRobinPlacement,
    coerce_read_selector,
    validate_placement,
)
from repro.core.eventloop import EventLoop, PeriodicTask
from repro.core.protocol import (
    BatchFetchRequest,
    BatchFetchResponse,
    CoalescedBatchRequest,
    CoalescedBatchResponse,
    FetchRequest,
    FetchResponse,
)
from repro.core.replication import (
    FailoverEvent,
    LagModel,
    ReadConsistency,
    ReplicationManager,
    ReplicationStats,
    WriteConsistency,
)
from repro.core.server import ObservedFetch, ZerberRServer
from repro.core.views import ViewStats
from repro.crypto.keys import GroupKeyService
from repro.errors import (
    AccessDeniedError,
    ConfigurationError,
    ProtocolError,
    QuorumUnavailableError,
    QuorumWriteUnavailableError,
    StaleEpochError,
    UnavailableError,
    UnknownListError,
)
from repro.index.postings import EncryptedPostingElement
from repro.obs.instruments import (
    ClusterInstruments,
    ReplicationInstruments,
    Telemetry,
)
from repro.obs.monitor import ClusterMonitor


class ServerCluster:
    """Shard merged posting lists over several untrusted servers."""

    def __init__(
        self,
        key_service: GroupKeyService,
        num_lists: int,
        num_servers: int,
        replication: int = 1,
        placement: PlacementPolicy | None = None,
        lag: LagModel | int | None = None,
        read_consistency: ReadConsistency | str | None = None,
        read_strategy: ReadSelector | str | None = None,
        read_seed: int = 0,
        anti_entropy_every: int | None = None,
        write_consistency: WriteConsistency | str | None = None,
        failover_after: int | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if num_servers < 1:
            raise ConfigurationError("need at least one server")
        if not 1 <= replication <= num_servers:
            raise ConfigurationError("replication must be in [1, num_servers]")
        if num_lists < 1:
            raise ProtocolError("num_lists must be >= 1")
        if failover_after is not None and failover_after < 1:
            raise ConfigurationError("failover_after must be >= 1 tick")
        self._num_lists = num_lists
        self.replication = replication
        self._keys = key_service
        self._servers = [
            ZerberRServer(key_service, num_lists=num_lists)
            for _ in range(num_servers)
        ]
        self._alive = [True] * num_servers
        self._policy = placement if placement is not None else RoundRobinPlacement()
        self._placement = validate_placement(
            self._policy.initial_placement(num_lists, num_servers, replication),
            num_lists,
            num_servers,
            replication,
        )
        self._epoch = 0
        self.read_consistency = ReadConsistency.coerce(read_consistency)
        self.write_consistency = WriteConsistency.coerce(write_consistency)
        self.failover_after = failover_after
        # server -> replication tick it was first seen unreachable (the
        # failover timer); cleared the tick the server is reachable again.
        self._unreachable_since: dict[int, int] = {}
        self._failover_history: list[FailoverEvent] = []
        self._read_selector = coerce_read_selector(read_strategy, seed=read_seed)
        self.telemetry = telemetry
        self._obs = ClusterInstruments(telemetry)
        self._repl_obs = ReplicationInstruments(telemetry)
        self._monitor: ClusterMonitor | None = None
        self._repl = ReplicationManager(
            self._servers,
            replicas_of=self.replicas_of,
            server_alive=lambda index: self._alive[index],
            num_lists=num_lists,
            lag=lag,
            anti_entropy_every=anti_entropy_every,
            instruments=self._repl_obs,
        )
        if telemetry is not None:
            # The replication tick counter is THE telemetry clock; read
            # through self._repl so a restore_topology swap stays bound.
            telemetry.bind_clock(lambda: self._repl.tick_count)
            self._obs.register_collectors(
                telemetry,
                replication_stats=lambda: self._repl.stats,
                view_stats=self.view_stats,
                list_heat=self.list_heat,
                list_write_heat=self.list_write_heat,
                per_server_load=self.per_server_load,
                log_lengths=lambda: self._repl.log_lengths(),
            )

    # -- topology -----------------------------------------------------------

    @property
    def num_servers(self) -> int:
        return len(self._servers)

    @property
    def num_lists(self) -> int:
        return self._num_lists

    @property
    def placement_policy(self) -> PlacementPolicy:
        return self._policy

    @property
    def placement_epoch(self) -> int:
        """Version of the placement table; bumps on every rebalance."""
        return self._epoch

    def replicas_of(self, list_id: int) -> list[int]:
        """Server indices holding *list_id* (primary first)."""
        if not 0 <= list_id < self._num_lists:
            raise UnknownListError(list_id)
        return list(self._placement[list_id])

    def server(self, index: int) -> ZerberRServer:
        """Direct access to one server (the adversary's viewpoint)."""
        return self._servers[index]

    def fail_server(self, index: int) -> None:
        """Mark a server as down (availability simulation).

        A down server neither serves reads nor receives replication
        deliveries — a write while any server is down always takes the
        asynchronous path, so acknowledged ops the dead server missed
        live on in the replication log and drain after
        :meth:`restore_server`.  The one idealisation kept from the
        seed: a *primary's* copy models durable storage, so a ``ONE``
        write to a list whose primary is down still lands there and reads
        fail over to the live replicas.  With ``failover_after`` set, a
        primary that stays down past the threshold is deposed by an
        election instead (see :meth:`check_failovers`); ``QUORUM``/
        ``ALL`` writes never lean on the idealisation — they require a
        live primary.
        """
        self._alive[index] = False

    def restore_server(self, index: int) -> None:
        self._alive[index] = True

    def is_alive(self, index: int) -> bool:
        """Whether one server is currently up."""
        return self._alive[index]

    # -- replication control plane ------------------------------------------

    @property
    def replication_manager(self) -> ReplicationManager:
        """The replication subsystem (logs, versions, lag scheduler)."""
        return self._repl

    @property
    def replication_stats(self) -> ReplicationStats:
        return self._repl.stats

    def replication_tick(self) -> int:
        """Advance the replication clock one tick; returns ops delivered.

        Deliveries whose lag has elapsed apply to their followers, and
        every ``anti_entropy_every``-th tick additionally force-syncs all
        reachable stale followers.  With ``failover_after`` set, the tick
        also runs the failover election check (see
        :meth:`check_failovers`).  A no-op for the default zero-lag
        configuration.
        """
        applied = self._repl.tick()
        if self.failover_after is not None:
            self.check_failovers()
        if self._monitor is not None:
            self._monitor.maybe_sample(self, self._repl.tick_count)
        return applied

    def attach_monitor(self, monitor: ClusterMonitor) -> None:
        """Sample *monitor* from :meth:`replication_tick` from now on."""
        self._monitor = monitor
        if self.telemetry is not None:
            self.telemetry.monitor = monitor

    @property
    def monitor(self) -> ClusterMonitor | None:
        return self._monitor

    def pause_follower(self, index: int) -> None:
        """Partition one server from replication traffic (reads still work)."""
        self._repl.pause(index)

    def resume_follower(self, index: int) -> None:
        self._repl.resume(index)

    def primary_version(self, list_id: int) -> int:
        """The replication-log head version of *list_id*."""
        self.replicas_of(list_id)  # validates the id
        return self._repl.head_version(list_id)

    def applied_version(self, list_id: int, server_index: int) -> int:
        """Ops of *list_id* applied at *server_index*."""
        return self._repl.applied_version(list_id, server_index)

    def replication_backlog(self) -> dict[tuple[int, int], int]:
        """Staleness per (list, server) pair; empty when fully converged."""
        return self._repl.backlog()

    def run_replication_until_quiet(self, max_ticks: int = 1000) -> int:
        """Tick until every *reachable* replica is caught up.

        Returns the ticks run.  Backlog held for paused or down servers
        does not block quiescence — heal them first if the test needs
        full convergence.  Ticks go through :meth:`replication_tick`, so
        failover timers advance (and clear) exactly as under normal
        operation.
        """
        ticks = 0
        while self._repl.reachable_backlog() and ticks < max_ticks:
            self.replication_tick()
            ticks += 1
        return ticks

    def register_background_tasks(
        self,
        loop: EventLoop,
        *,
        delivery_every: int | None = 1,
        anti_entropy_every: int | None = None,
    ) -> list[PeriodicTask]:
        """Run replica maintenance as *loop* daemons with their own periods.

        Registers a replication-delivery daemon firing every
        ``delivery_every`` virtual ticks (``None`` skips it — e.g. when
        another coordinator sharing the loop already registered one) and,
        when ``anti_entropy_every`` is set, detaches the anti-entropy
        sweep from the replication clock onto its own daemon, so delivery
        and staleness-bounding cadences tune independently instead of
        both piggybacking on the scheduling tick.  Daemons run at
        :data:`~repro.core.eventloop.BACKGROUND` priority: at any tick
        they fire after all foreground session work, preserving the
        legacy "envelopes first, then the replication tick" order.
        """
        if delivery_every is not None and delivery_every < 1:
            raise ConfigurationError("delivery_every must be >= 1")
        if anti_entropy_every is not None and anti_entropy_every < 1:
            raise ConfigurationError("anti_entropy_every must be >= 1")
        tasks: list[PeriodicTask] = []
        if delivery_every is not None:
            tasks.append(
                loop.every(
                    delivery_every,
                    self.replication_tick,
                    name="replication-delivery",
                )
            )
        if anti_entropy_every is not None:
            # The sweep leaves the replication clock entirely: the
            # manager's own modulo trigger is disabled so a sweep fires
            # exactly once per period, on loop time.
            self._repl.anti_entropy_every = None
            tasks.append(
                loop.every(
                    anti_entropy_every,
                    self._repl.anti_entropy_sweep,
                    name="anti-entropy",
                )
            )
        return tasks

    # -- primary failover ----------------------------------------------------

    def _reachable(self, server_index: int) -> bool:
        """Alive and not partitioned — can serve and receive log traffic."""
        return self._alive[server_index] and not self._repl.is_paused(server_index)

    def check_failovers(self) -> list[FailoverEvent]:
        """Elect new primaries for lists whose primary stayed unreachable.

        The failover timer is per *server*: a server that has been down
        or paused for at least ``failover_after`` consecutive replication
        ticks is deposed as primary of every list it leads.  The election
        promotes the most-caught-up reachable replica — first forced to
        the log head through the log itself (invariant 3 guarantees the
        ops exist), so the new primary acknowledges writes from exactly
        the old head.  The placement epoch bumps once per election batch,
        rejecting in-flight coalesced envelopes routed under the old
        primary; the deposed server stays in the replica set and catches
        up through normal lag-driven delivery after it is restored
        (demote-and-catch-up).

        Called from :meth:`replication_tick` when ``failover_after`` is
        set; harmless to call directly (a no-op when it is ``None`` or no
        timer has expired).  Returns the elections performed.
        """
        if self.failover_after is None:
            return []
        tick = self._repl.tick_count
        for server_index in range(len(self._servers)):
            if self._reachable(server_index):
                self._unreachable_since.pop(server_index, None)
            else:
                self._unreachable_since.setdefault(server_index, tick)
        elections: list[FailoverEvent] = []
        for list_id in range(self._num_lists):
            primary = self._placement[list_id][0]
            since = self._unreachable_since.get(primary)
            if since is None or tick - since < self.failover_after:
                continue
            event = self._elect_primary(list_id)
            if event is not None:
                elections.append(event)
        if elections:
            self._epoch += 1
        return elections

    def _elect_primary(self, list_id: int) -> FailoverEvent | None:
        """Promote the most-caught-up reachable replica of one list.

        Returns ``None`` (no election) when no other replica is
        reachable — the list keeps its dead primary and the write-path
        durability idealisation until a candidate appears.
        """
        old = self._placement[list_id]
        candidates = [s for s in old[1:] if self._reachable(s)]
        if not candidates:
            return None
        winner = max(
            candidates,
            key=lambda s: (self._repl.applied_version(list_id, s), -old.index(s)),
        )
        # Force the winner to the head BEFORE it takes over: a primary
        # behind its own log would violate the _record invariant.
        self._repl.sync(list_id, winner, reason="failover")
        if self._repl.applied_version(list_id, winner) < self._repl.head_version(
            list_id
        ):
            return None  # log raced away (cannot happen; defensive)
        self._placement[list_id] = (winner,) + tuple(
            s for s in old if s != winner
        )
        event = FailoverEvent(
            list_id=list_id,
            old_primary=old[0],
            new_primary=winner,
            tick=self._repl.tick_count,
        )
        self._failover_history.append(event)
        self._repl.stats.failovers += 1
        self._obs.elections.inc()
        return event

    def failover_history(self) -> list[FailoverEvent]:
        """Every election performed (or restored), in order."""
        return list(self._failover_history)

    def unreachable_since(self) -> dict[int, int]:
        """Live failover timers: server -> tick it became unreachable."""
        return dict(self._unreachable_since)

    def restore_failover_state(
        self,
        history: Iterable[FailoverEvent] = (),
        unreachable_since: Mapping[int, int] | None = None,
    ) -> None:
        """Reinstall persisted failover audit trail and timers (recovery).

        The elected primaries themselves are already carried by the
        persisted placement table; this restores the *audit trail* and
        the in-progress unreachability timers so a restart taken
        mid-outage neither forgets past promotions nor resets the clock
        on a pending one.
        """
        self._failover_history = list(history)
        timers = dict(unreachable_since or {})
        for server_index in timers:
            if not 0 <= server_index < len(self._servers):
                raise ConfigurationError(
                    f"unreachable-since timer names unknown server {server_index}"
                )
        self._unreachable_since = timers

    # -- data plane -----------------------------------------------------------

    def _write_synchronously(self) -> bool:
        """Whether writes may take the seed's inline all-replica path.

        Requires every server up on top of the manager's conditions
        (zero lag, nothing paused, no backlog): an inline write to a
        down server would contradict the failure model, so any failure
        routes writes through the log instead.
        """
        return all(self._alive) and self._repl.is_synchronous()

    def _resolve_consistency(
        self, consistency: ReadConsistency | str | None
    ) -> ReadConsistency:
        """Per-call override, or the cluster default."""
        if consistency is None:
            return self.read_consistency
        return ReadConsistency.coerce(consistency)

    def _resolve_write_consistency(
        self, consistency: WriteConsistency | str | None
    ) -> WriteConsistency:
        """Per-call override, or the cluster default."""
        if consistency is None:
            return self.write_consistency
        return WriteConsistency.coerce(consistency)

    def _check_write_quorum(
        self, list_id: int, consistency: WriteConsistency
    ) -> None:
        """Refuse a W > 1 write that cannot reach its ack count.

        Runs BEFORE the primary is mutated or anything is logged, so a
        refused write is a clean no-op.  An ack-capable replica is one
        that will *hold* the op when the write call returns: the primary
        (alive — a paused primary still applies writes inline; pausing
        only blocks log deliveries *to* it) plus every reachable
        follower, which :meth:`_force_write_acks` forces current through
        the log.  Per the :meth:`fail_server` contract, W > 1 writes
        never lean on the durable-primary idealisation: a down primary
        refuses the write outright even when enough followers could ack,
        because acknowledging through a dead primary's idealised copy
        would launder the ack count.  That refusal is exactly the one a
        pending failover election heals — once a live replica is
        promoted, the same write goes through — so clients may park on
        it (see ``ZerberRClient._write_with_failover_retry``).  ``ONE``
        keeps the pre-quorum behaviour, including the durable-primary
        idealisation for a down primary.
        """
        replicas = self.replicas_of(list_id)
        needed = consistency.required_acks(len(replicas))
        if needed <= 1:
            return
        primary = replicas[0]
        ack_capable = [primary] if self._alive[primary] else []
        ack_capable += [s for s in replicas[1:] if self._reachable(s)]
        if not self._alive[primary] or len(ack_capable) < needed:
            self._obs.quorum_refusals.inc()
            raise QuorumWriteUnavailableError(
                list_id,
                len(replicas),
                needed,
                live_replicas=tuple(ack_capable),
                down_replicas=tuple(
                    s for s in replicas if not self._alive[s]
                ),
                paused_replicas=tuple(
                    s
                    for s in replicas
                    if self._alive[s] and self._repl.is_paused(s) and s != primary
                ),
            )

    def _force_write_acks(
        self, list_id: int, consistency: WriteConsistency
    ) -> None:
        """Force followers current until W replicas hold the list's head.

        The acks are synchronous *through the log* — no wall-clock
        waiting: the most-caught-up reachable followers are caught up via
        :meth:`~repro.core.replication.ReplicationManager.sync` (reason
        ``"write-ack"``) until the required count of replicas sits at the
        head.  :meth:`_check_write_quorum` already proved enough replicas
        are reachable, and invariant 3 guarantees the log holds every op
        they lack, so this cannot fail once the write was admitted.
        """
        replicas = self.replicas_of(list_id)
        needed = consistency.required_acks(len(replicas))
        if needed <= 1:
            return
        head = self._repl.head_version(list_id)
        acked = sum(
            1
            for s in replicas
            if self._repl.applied_version(list_id, s) >= head
        )
        stale = sorted(
            (
                s
                for s in replicas[1:]
                if self._reachable(s)
                and self._repl.applied_version(list_id, s) < head
            ),
            key=lambda s: -self._repl.applied_version(list_id, s),
        )
        for server_index in stale:
            if acked >= needed:
                break
            self._repl.sync(list_id, server_index, reason="write-ack")
            if self._repl.applied_version(list_id, server_index) >= head:
                acked += 1

    def _ensure_primary_current(self, list_id: int) -> None:
        """Refuse to acknowledge a write at a gapped primary.

        A stale-source migration cutover can install a primary below the
        log head; acknowledging a fresh write there would stamp the
        primary *over* its gap and silently lose the gap ops (their
        scheduled catch-up delivery would no-op).  Catch the primary up
        from the log first; if it is unreachable (paused or down with a
        gap), the write fails honestly with :class:`UnavailableError`.
        """
        primary = self.replicas_of(list_id)[0]
        if (
            self._repl.applied_version(list_id, primary)
            < self._repl.head_version(list_id)
        ):
            self._repl.sync(list_id, primary, reason="write-catchup")
            if (
                self._repl.applied_version(list_id, primary)
                < self._repl.head_version(list_id)
            ):
                raise UnavailableError(list_id, len(self.replicas_of(list_id)))

    def _validate_items(
        self,
        principal: str,
        items: Iterable[tuple[int, EncryptedPostingElement]],
    ) -> list[tuple[int, EncryptedPostingElement]]:
        """All-or-nothing preamble of the batched write paths.

        List id, TRS and group membership are checked for the whole batch
        before any server is touched, so a rejected batch cannot leave
        replicas of a list divergent.
        """
        items = list(items)
        for list_id, element in items:
            if element.trs is None:
                raise ProtocolError("Zerber+R elements must carry a TRS")
            if not self._keys.is_member(principal, element.group):
                raise AccessDeniedError(principal, element.group)
            self.replicas_of(list_id)  # validates the list id
        return items

    def _group_by_server(
        self,
        items: list[tuple[int, EncryptedPostingElement]],
        primary_only: bool = False,
    ) -> dict[int, list[tuple[int, EncryptedPostingElement]]]:
        """Group items by destination server, preserving caller order."""
        per_server: dict[int, list[tuple[int, EncryptedPostingElement]]] = {}
        for list_id, element in items:
            replicas = self.replicas_of(list_id)
            for server_index in replicas[:1] if primary_only else replicas:
                per_server.setdefault(server_index, []).append((list_id, element))
        return per_server

    def insert(
        self,
        principal: str,
        list_id: int,
        element: EncryptedPostingElement,
        consistency: WriteConsistency | str | None = None,
    ) -> None:
        """Insert one element; replicas converge through the log.

        On the synchronous path (zero lag, no backlog) every replica is
        mutated inline — the seed behaviour, and every ack level is
        trivially satisfied.  Otherwise the primary is mutated and the op
        logged; with *consistency* ``QUORUM``/``ALL`` (per-call override
        of the cluster's ``write_consistency``) the required follower
        acks are then forced synchronously through the log, and an
        unsatisfiable ack count refuses the write up front with
        :class:`~repro.errors.QuorumWriteUnavailableError` — a clean
        no-op.  Remaining followers drain on later replication ticks.
        """
        consistency = self._resolve_write_consistency(consistency)
        replicas = self.replicas_of(list_id)
        if self._write_synchronously():
            for server_index in replicas:
                self._servers[server_index].insert(principal, list_id, element)
            self._repl.record_synchronous(list_id, 1)
            self._obs.writes.inc(1.0, consistency=consistency.value)
            return
        self._check_write_quorum(list_id, consistency)
        self._ensure_primary_current(list_id)
        # The primary's insert performs the TRS/membership validation; a
        # rejected element raises before anything is logged.
        self._servers[replicas[0]].insert(principal, list_id, element)
        self._repl.record_insert(list_id, element)
        self._force_write_acks(list_id, consistency)
        self._repl.deliver_due()
        self._obs.writes.inc(1.0, consistency=consistency.value)

    def insert_many(
        self,
        principal: str,
        items: Iterable[tuple[int, EncryptedPostingElement]],
        consistency: WriteConsistency | str | None = None,
    ) -> int:
        """Replicated multi-insert, batched per touched server.

        Items are validated up front (all-or-nothing, see
        :meth:`_validate_items`) and grouped by destination, so a batch
        costs O(touched servers) server calls instead of O(elements ×
        replication).  On the asynchronous path only the *primaries* are
        written inline; follower copies drain through the log, except the
        W - 1 follower acks a ``QUORUM``/``ALL`` *consistency* forces
        synchronously per touched list — checked for every touched list
        before anything is mutated, so a refused batch is a clean no-op.
        """
        return self._replicated_write_batch(
            principal, items, bulk=False, consistency=consistency
        )

    def bulk_load(
        self,
        principal: str,
        items: Iterable[tuple[int, EncryptedPostingElement]],
        consistency: WriteConsistency | str | None = None,
    ) -> int:
        """Bulk-load with the same all-or-nothing validation as
        :meth:`insert_many`; each touched server sorts once."""
        return self._replicated_write_batch(
            principal, items, bulk=True, consistency=consistency
        )

    def _replicated_write_batch(
        self,
        principal: str,
        items: Iterable[tuple[int, EncryptedPostingElement]],
        bulk: bool,
        consistency: WriteConsistency | str | None = None,
    ) -> int:
        """Shared body of :meth:`insert_many` and :meth:`bulk_load` —
        identical replication discipline, different server entry point."""
        consistency = self._resolve_write_consistency(consistency)
        items = self._validate_items(principal, items)
        touched = list(dict.fromkeys(lid for lid, _ in items))
        sync = self._write_synchronously()
        if not sync:
            for list_id in touched:
                self._check_write_quorum(list_id, consistency)
            for list_id in touched:
                self._ensure_primary_current(list_id)
        per_server = self._group_by_server(items, primary_only=not sync)
        for server_index in sorted(per_server):
            server = self._servers[server_index]
            load = server.bulk_load if bulk else server.insert_many
            load(principal, per_server[server_index])
        if sync:
            for list_id, count in Counter(lid for lid, _ in items).items():
                self._repl.record_synchronous(list_id, count)
        else:
            for list_id, element in items:
                self._repl.record_insert(list_id, element)
            for list_id in touched:
                self._force_write_acks(list_id, consistency)
            self._repl.deliver_due()
        self._obs.writes.inc(float(len(items)), consistency=consistency.value)
        return len(items)

    def delete_element(
        self,
        principal: str,
        list_id: int,
        ciphertext: bytes,
        consistency: WriteConsistency | str | None = None,
    ) -> bool:
        """Delete a receipt's element; followers learn through the log."""
        consistency = self._resolve_write_consistency(consistency)
        replicas = self.replicas_of(list_id)
        if self._write_synchronously():
            removed_any = False
            for server_index in replicas:
                if self._servers[server_index].delete_element(
                    principal, list_id, ciphertext
                ):
                    removed_any = True
            if removed_any:
                self._repl.record_synchronous(list_id, 1)
            self._obs.writes.inc(1.0, consistency=consistency.value)
            return removed_any
        self._check_write_quorum(list_id, consistency)
        self._ensure_primary_current(list_id)
        removed = self._servers[replicas[0]].delete_element(
            principal, list_id, ciphertext
        )
        if removed:
            self._repl.record_delete(list_id, ciphertext)
            self._force_write_acks(list_id, consistency)
            self._repl.deliver_due()
        self._obs.writes.inc(1.0, consistency=consistency.value)
        return removed

    # -- read path -------------------------------------------------------------

    def route(
        self, list_id: int, consistency: ReadConsistency | str | None = None
    ) -> int:
        """The replica that should serve a read of *list_id*.

        Eligibility depends on the consistency level (default: the
        cluster's ``read_consistency``): ``PRIMARY`` prefers caught-up
        live replicas, ``ONE`` accepts any live replica, ``QUORUM``
        requires a live majority and returns the version-max member.
        Among eligible replicas, paused (partitioned) ones are avoided
        whenever an unpaused candidate exists — they only grow staler —
        and the configured :class:`~repro.core.placement.ReadSelector`
        picks from what remains (the default always takes the first —
        the seed's replica-0 skew).  Down servers are never eligible
        under any level or selector.

        Raises :class:`UnavailableError` when every replica is down and
        :class:`QuorumUnavailableError` when a quorum read lacks a live
        majority.
        """
        return self._route_read(list_id, self._resolve_consistency(consistency))

    def _route_read(
        self,
        list_id: int,
        consistency: ReadConsistency,
        loads: list[int] | None = None,
        min_version: int | None = None,
        max_staleness: int | None = None,
    ) -> int:
        """:meth:`route` with a resolved consistency and optional
        precomputed per-server loads (batched reads compute them once).

        *min_version* (a session's read-your-writes/monotonic floor) and
        *max_staleness* (version-delta bound) narrow ``ONE``'s candidate
        set to replicas satisfying them when any exists; enforcement —
        repair and re-serve when routing could not satisfy the bound —
        happens in :meth:`_finalize_read`.
        """
        replicas = self.replicas_of(list_id)
        live = [s for s in replicas if self._alive[s]]
        if not live:
            raise UnavailableError(list_id, len(replicas))
        if consistency is ReadConsistency.QUORUM:
            needed = len(replicas) // 2 + 1
            if len(live) < needed:
                raise QuorumUnavailableError(
                    list_id,
                    len(replicas),
                    needed,
                    live_replicas=tuple(live),
                    down_replicas=tuple(
                        s for s in replicas if not self._alive[s]
                    ),
                    paused_replicas=tuple(
                        s for s in live if self._repl.is_paused(s)
                    ),
                )
            self._repl.stats.version_probes += len(live)
            return max(
                live, key=lambda s: self._repl.applied_version(list_id, s)
            )
        head = self._repl.head_version(list_id)
        if consistency is ReadConsistency.PRIMARY:
            fresh = [
                s
                for s in live
                if self._repl.applied_version(list_id, s) == head
            ]
            candidates = fresh if fresh else live
        else:  # ONE
            candidates = live
            floor = 0
            if min_version is not None:
                floor = min(min_version, head)
            if max_staleness is not None:
                floor = max(floor, head - max_staleness)
            if floor > 0:
                satisfying = [
                    s
                    for s in live
                    if self._repl.applied_version(list_id, s) >= floor
                ]
                if satisfying:
                    candidates = satisfying
        # A partitioned follower only grows staler: route around it
        # unless it is the only copy left (it then serves best-effort).
        unpaused = [s for s in candidates if not self._repl.is_paused(s)]
        if unpaused:
            candidates = unpaused
        if len(candidates) == 1:
            return candidates[0]
        if loads is None:
            loads = (
                self.per_server_load() if self._read_selector.needs_loads else []
            )
        return self._read_selector.select(list_id, candidates, loads)

    def fetch(
        self,
        request: FetchRequest,
        consistency: ReadConsistency | str | None = None,
        max_staleness: int | None = None,
    ) -> FetchResponse:
        """Serve one slice at the requested (or default) consistency.

        The response's ``replica_version`` is the serving replica's
        applied log version; a stale replica triggers read-repair (see
        :meth:`_finalize_read`).  *max_staleness* bounds how many log ops
        a ``ONE`` read may trail the head: a violating answer falls back
        toward ``PRIMARY`` (repair and re-serve) instead of returning
        arbitrarily stale data.  ``max_staleness=0`` means read-at-head;
        the bound is a no-op under ``PRIMARY``/``QUORUM``, which already
        re-serve stale answers.  The request's ``min_version`` session
        floor is honored the same way.
        """
        if max_staleness is not None and max_staleness < 0:
            raise ConfigurationError("max_staleness must be >= 0 ops")
        consistency = self._resolve_consistency(consistency)
        server_index = self._route_read(
            request.list_id,
            consistency,
            min_version=request.min_version,
            max_staleness=max_staleness,
        )
        response = self._servers[server_index].fetch(request)
        return self._finalize_read(
            request, server_index, response, consistency, max_staleness
        )

    def batch_fetch(
        self,
        batch: BatchFetchRequest,
        consistency: ReadConsistency | str | None = None,
        max_staleness: int | None = None,
    ) -> BatchFetchResponse:
        """Serve a batch with one sub-batch per shard server.

        Each slice routes per the consistency level; slices that land on
        the same server travel as one :class:`BatchFetchRequest` to it
        (one round-trip per touched server, not per slice).  Responses
        reassemble in the original slice order, then each is finalized
        (version stamp + read-repair) individually — a repair re-serve
        costs one extra single-slice fetch, which the stats expose as
        repair traffic.  A list with no live replica fails the whole
        batch, matching :meth:`fetch`'s error behaviour.
        """
        if max_staleness is not None and max_staleness < 0:
            raise ConfigurationError("max_staleness must be >= 0 ops")
        consistency = self._resolve_consistency(consistency)
        loads = (
            self.per_server_load() if self._read_selector.needs_loads else None
        )
        routed: list[int] = [
            self._route_read(
                request.list_id,
                consistency,
                loads,
                min_version=request.min_version,
                max_staleness=max_staleness,
            )
            for request in batch.requests
        ]
        per_server: dict[int, list[int]] = {}
        for slice_index, server_index in enumerate(routed):
            per_server.setdefault(server_index, []).append(slice_index)
        responses: list[FetchResponse | None] = [None] * len(batch.requests)
        for server_index, slice_indices in per_server.items():
            sub_batch = BatchFetchRequest(
                principal=batch.principal,
                requests=tuple(batch.requests[i] for i in slice_indices),
            )
            sub_response = self._servers[server_index].batch_fetch(sub_batch)
            for i, response in zip(slice_indices, sub_response.responses):
                responses[i] = self._finalize_read(
                    batch.requests[i],
                    server_index,
                    response,
                    consistency,
                    max_staleness,
                )
        return BatchFetchResponse(responses=tuple(responses))  # type: ignore[arg-type]

    def serve_envelope(
        self,
        server_index: int,
        envelope: CoalescedBatchRequest,
        consistency: ReadConsistency | str | None = None,
    ) -> CoalescedBatchResponse:
        """Deliver a coordinator envelope to one (live) shard server.

        The coordinator routed the envelope itself, so the cluster only
        verifies that the target is alive and that the envelope was routed
        under the *current* placement epoch — an envelope built before a
        rebalance must be re-routed, not served from a stale shard map.
        Every slice is then finalized like a direct fetch: versions are
        stamped and stale slices are read-repaired per the consistency
        level (extra single-slice fetches, visible in the stats).
        """
        if not 0 <= server_index < len(self._servers):
            raise ConfigurationError(f"unknown server index {server_index}")
        if not self._alive[server_index]:
            raise ProtocolError(f"server {server_index} is down")
        if envelope.epoch is not None and envelope.epoch != self._epoch:
            raise StaleEpochError(envelope.epoch, self._epoch)
        consistency = self._resolve_consistency(consistency)
        with self._obs.tracer.span(
            "serve",
            trace=envelope.trace_id,
            server=server_index,
            slices=len(envelope),
        ):
            raw = self._servers[server_index].coalesced_fetch(envelope)
            flat_requests = [
                request for batch in envelope.batches for request in batch.requests
            ]
            finalized = tuple(
                self._finalize_read(request, server_index, response, consistency)
                for request, response in zip(flat_requests, raw.responses)
            )
        return CoalescedBatchResponse(
            responses=finalized, slice_ids=raw.slice_ids, epoch=raw.epoch
        )

    def _finalize_read(
        self,
        request: FetchRequest,
        server_index: int,
        response: FetchResponse,
        consistency: ReadConsistency,
        max_staleness: int | None = None,
    ) -> FetchResponse:
        """Stamp the replica version; detect divergence and read-repair.

        A serving replica behind the log head is caught up immediately
        when reachable (the repair ops also patch its readable views).
        Under ``PRIMARY``/``QUORUM`` the slice is then *re-served* from a
        replica at the head — the repaired server itself, or the primary
        — so the caller sees every acknowledged write; under ``ONE`` the
        stale response is returned as-is (fast/stale) *unless* it
        violates the read's *max_staleness* bound or the request's
        ``min_version`` session floor, in which case the read escalates
        to the same repair-and-re-serve.  When no reachable replica can
        satisfy a bound (every fresh copy down or partitioned), the stale
        answer is returned best-effort rather than failing the read — the
        guarantees hold whenever a head replica is reachable.
        """
        list_id = request.list_id
        version = self._repl.applied_version(list_id, server_index)
        head = self._repl.head_version(list_id)
        if self._obs.enabled:
            read_counter, lag_histogram = self._obs.read_instruments(
                consistency.value
            )
            read_counter.inc()
            lag_histogram.observe(
                float(self._repl.pending_lag_ticks(list_id, server_index))
            )
        if version >= head:
            return dataclass_replace(response, replica_version=version)
        self._repl.observe_staleness(head - version)
        self._obs.read_staleness.observe(float(head - version))
        with self._obs.tracer.span(
            "read-repair", list=list_id, server=server_index, staleness=head - version
        ):
            if self._repl.sync(list_id, server_index):
                self._repl.stats.read_repairs += 1
        if consistency is ReadConsistency.QUORUM:
            # Quorum reads repair every stale live replica they examined.
            for other in self.replicas_of(list_id):
                if (
                    other != server_index
                    and self._alive[other]
                    and self._repl.applied_version(list_id, other) < head
                    and self._repl.sync(list_id, other)
                ):
                    self._repl.stats.read_repairs += 1
        needs_fresh = consistency is not ReadConsistency.ONE
        # A session floor can never honestly exceed the log head (it came
        # from an earlier response of this cluster); clamp defensively.
        floor = min(request.min_version or 0, head)
        floor_violated = version < floor
        bound_violated = (
            max_staleness is not None and head - version > max_staleness
        )
        if needs_fresh or bound_violated or floor_violated:
            reserve_from = None
            if self._repl.applied_version(list_id, server_index) >= head:
                reserve_from = server_index  # repaired in place
            else:
                primary = self.replicas_of(list_id)[0]
                if (
                    self._alive[primary]
                    and self._repl.applied_version(list_id, primary) >= head
                ):
                    reserve_from = primary
            if reserve_from is not None:
                if not needs_fresh:
                    if bound_violated:
                        self._repl.stats.staleness_fallbacks += 1
                    if floor_violated:
                        self._repl.stats.floor_reserves += 1
                response = self._servers[reserve_from].fetch(request)
                self._repl.stats.read_reserves += 1
                version = self._repl.applied_version(list_id, reserve_from)
                return dataclass_replace(response, replica_version=version)
        return dataclass_replace(response, replica_version=version)

    # -- placement control plane -------------------------------------------------

    def list_heat(self) -> dict[int, int]:
        """Cumulative slices served per list, aggregated over all servers.

        Counters stay with the server that served the fetch, so summing
        across servers keeps a migrated list's history intact.
        """
        heat: dict[int, int] = {}
        for server in self._servers:
            for list_id, count in server.fetch_counts.items():
                heat[list_id] = heat.get(list_id, 0) + count
        return heat

    def list_write_heat(self) -> dict[int, int]:
        """Cumulative acknowledged write ops per list (log head versions).

        The write-side twin of :meth:`list_heat`: the replication log
        head counts every acknowledged mutation of a list regardless of
        which path (synchronous or logged) carried it, so the monitor's
        write-heat deltas are "ops per sampling period" — the placement
        forecaster's second input signal.
        """
        return {
            list_id: self._repl.head_version(list_id)
            for list_id in range(self._num_lists)
        }

    def rebalance(self) -> dict[int, tuple[int, ...]]:
        """Ask the placement policy for heat-driven moves and apply them.

        Every proposed move is migrated (drain-then-cutover through the
        replication log, see :meth:`_migrate_list`) and the placement
        epoch bumps once if anything moved — including when a later
        migration fails midway, so envelopes routed under the
        pre-rebalance table are always rejected rather than served from a
        half-migrated shard map.  Moves that would place a list on a dead
        server are refused here even if a (buggy) policy proposes them.
        Returns the applied moves; empty for static policies such as
        round-robin.
        """
        proposal = self._policy.propose(
            self.list_heat(),
            [tuple(replicas) for replicas in self._placement],
            self.num_servers,
            self.replication,
            alive=tuple(self._alive),
        )
        # Reject a malformed proposal wholesale BEFORE applying any move —
        # a defence against buggy policies; failing on move k after moves
        # 0..k-1 were applied would leave a half-rebalanced cluster.
        for list_id, targets in proposal.items():
            if not 0 <= list_id < self._num_lists:
                raise ConfigurationError(
                    f"placement policy proposed unknown list {list_id}"
                )
            targets = tuple(targets)
            if len(targets) != self.replication or len(set(targets)) != len(
                targets
            ):
                raise ConfigurationError(
                    f"placement policy proposed {len(targets)} replicas for "
                    f"list {list_id}, expected {self.replication} distinct"
                )
            if not all(0 <= s < len(self._servers) for s in targets):
                raise ConfigurationError(
                    f"placement policy proposed unknown server for list {list_id}"
                )
        moves = {
            list_id: tuple(targets)
            for list_id, targets in proposal.items()
            if tuple(targets) != self._placement[list_id]
            and all(self._alive[s] for s in targets)
        }
        applied: dict[int, tuple[int, ...]] = {}
        try:
            for list_id, targets in sorted(moves.items()):
                try:
                    self._migrate_list(list_id, targets)
                except UnavailableError:
                    # Every current replica of this list is down, so its
                    # data cannot be copied anywhere — leave it in place
                    # (it is unreachable either way) instead of failing
                    # the whole rebalance and aborting unrelated queries.
                    continue
                applied[list_id] = targets
        finally:
            if applied:
                self._epoch += 1
        return applied

    # -- crash recovery (persistence support; see repro.persist) -----------------

    def placement_table(self) -> list[tuple[int, ...]]:
        """A copy of the authoritative placement table (persisted in v2)."""
        return [tuple(replicas) for replicas in self._placement]

    def restore_topology(
        self, placement: Iterable[Iterable[int]], epoch: int
    ) -> None:
        """Install a persisted placement table and epoch (recovery path).

        Replaces the replication manager with a fresh one built over the
        restored placement (same lag model and anti-entropy cadence);
        the persistence layer then reinstalls each list's log and
        per-replica applied versions through
        :meth:`~repro.core.replication.ReplicationManager.restore_clock`
        and ``restore_list_state``.  Must run before the servers' list
        contents are restored only in the sense that nothing here reads
        them — the order the persist module uses is topology, clock,
        lists, logs, views.
        """
        if epoch < 0:
            raise ConfigurationError("placement epoch must be >= 0")
        self._placement = validate_placement(
            [tuple(replicas) for replicas in placement],
            self._num_lists,
            len(self._servers),
            self.replication,
        )
        self._epoch = int(epoch)
        self._repl = ReplicationManager(
            self._servers,
            replicas_of=self.replicas_of,
            server_alive=lambda index: self._alive[index],
            num_lists=self._num_lists,
            lag=self._repl.lag,
            anti_entropy_every=self._repl.anti_entropy_every,
            instruments=self._repl_obs,
        )

    def _migrate_list(self, list_id: int, targets: tuple[int, ...]) -> None:
        """Move one list's replicas through the log: drain, then cut over.

        The export source is the most-caught-up live replica; it is first
        *drained* (caught up from the replication log) so the copy is as
        fresh as reachability allows — the stop-the-world wholesale copy
        of the seed became drain-then-cutover.  If the source still lags
        the head (it was partitioned), new replicas are registered at the
        source's version and the remaining ops are scheduled through the
        normal lag-driven delivery, so an unlucky cut-over converges
        instead of silently losing acknowledged writes.
        """
        if len(targets) != self.replication or len(set(targets)) != len(targets):
            raise ConfigurationError(
                f"migration of list {list_id} needs {self.replication} "
                "distinct target servers"
            )
        if not all(0 <= s < len(self._servers) for s in targets):
            raise ConfigurationError("migration names an unknown server")
        old = self._placement[list_id]
        source = self._repl.best_source(list_id)
        if source is None:
            raise UnavailableError(list_id, len(old))
        self._repl.sync(list_id, source, reason="migration")
        elements = self._servers[source].export_list(list_id)
        source_version = self._repl.applied_version(list_id, source)
        for server_index in targets:
            if server_index not in old:
                self._servers[server_index].import_list(list_id, elements)
        self._placement[list_id] = tuple(targets)
        for server_index in targets:
            if server_index not in old:
                self._repl.register_replica(list_id, server_index, source_version)
        for server_index in old:
            if server_index not in targets:
                self._servers[server_index].clear_list(list_id)
                self._repl.drop_replica(list_id, server_index)

    # -- accounting -------------------------------------------------------------

    @property
    def num_elements(self) -> int:
        """Logical element count (replicas counted once).

        Counted at the primaries, so replication lag on followers does
        not skew the logical size.
        """
        return sum(
            self._servers[replicas[0]].list_length(list_id)
            for list_id, replicas in enumerate(self._placement)
        )

    def list_length(self, list_id: int) -> int:
        primary = self.replicas_of(list_id)[0]
        return self._servers[primary].list_length(list_id)

    def visible_trs_values(self, list_id: int) -> list[float]:
        primary = self.replicas_of(list_id)[0]
        return self._servers[primary].visible_trs_values(list_id)

    def storage_score_slots(self) -> int:
        return self.num_elements

    def storage_bits(self) -> int:
        return sum(s.storage_bits() for s in self._servers)

    @property
    def total_calls(self) -> int:
        """Fetch calls served cluster-wide (a batch/envelope counts once)."""
        return sum(s.num_calls for s in self._servers)

    def per_server_load(self) -> list[int]:
        """Slices served per server — the read-load balance signal."""
        return [sum(s.fetch_counts.values()) for s in self._servers]

    def view_stats(self) -> ViewStats:
        """Cluster-wide readable-view health: summed per-server counters.

        Aggregates every server's :class:`~repro.core.views.ViewStats`
        (hits, rebuilds, patches, evictions, …) so benchmarks and the
        coordinator can watch view churn — e.g. a migration-heavy
        rebalance shows up as a spike in invalidations, and replication
        repair traffic as ``replication_patches``.
        """
        total = ViewStats()
        for server in self._servers:
            stats = server.view_stats
            for field in dataclass_fields(ViewStats):
                setattr(
                    total,
                    field.name,
                    getattr(total, field.name) + getattr(stats, field.name),
                )
        return total

    # -- adversary model ----------------------------------------------------------

    def visible_fraction(self, compromised: Iterable[int]) -> float:
        """Fraction of merged lists an adversary owning *compromised*
        servers can read — the confidentiality benefit of sharding."""
        owned = set(compromised)
        if not owned <= set(range(len(self._servers))):
            raise ConfigurationError("unknown server index")
        visible = sum(
            1
            for list_id in range(self._num_lists)
            if owned & set(self.replicas_of(list_id))
        )
        return visible / self._num_lists

    def observations_at(self, index: int) -> list[ObservedFetch]:
        """The fetch log of one (compromised) server."""
        return self._servers[index].observations
