"""Multi-server deployment (paper §3.1: "Zerber relies on a centralized
set of largely untrusted index servers").

A :class:`ServerCluster` shards the merged posting lists across N
:class:`~repro.core.server.ZerberRServer` instances (deterministic
round-robin by list id, optionally replicated) and exposes the same
insert/fetch/batch-fetch surface, so
:class:`~repro.core.client.ZerberRClient` works against a cluster
unchanged.  A batched fetch splits into one sub-batch per shard server
(first live replica of each list), so a multi-term client round costs one
round-trip per *touched server* rather than per merged list.

Sharding also *improves* confidentiality in the compromised-server model:
an adversary owning one server sees only ``1/N`` of the merged lists and
only that shard's query stream — quantified by :meth:`visible_fraction`.
Replication trades that away for availability: with replication factor f,
a fetch is served by any live replica, and :meth:`fail_server` simulates a
server loss.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.protocol import (
    BatchFetchRequest,
    BatchFetchResponse,
    FetchRequest,
    FetchResponse,
)
from repro.core.server import ObservedFetch, ZerberRServer
from repro.crypto.keys import GroupKeyService
from repro.errors import ConfigurationError, ProtocolError, UnknownListError
from repro.index.postings import EncryptedPostingElement


class ServerCluster:
    """Shard merged posting lists over several untrusted servers."""

    def __init__(
        self,
        key_service: GroupKeyService,
        num_lists: int,
        num_servers: int,
        replication: int = 1,
    ) -> None:
        if num_servers < 1:
            raise ConfigurationError("need at least one server")
        if not 1 <= replication <= num_servers:
            raise ConfigurationError("replication must be in [1, num_servers]")
        if num_lists < 1:
            raise ProtocolError("num_lists must be >= 1")
        self._num_lists = num_lists
        self.replication = replication
        self._servers = [
            ZerberRServer(key_service, num_lists=num_lists)
            for _ in range(num_servers)
        ]
        self._alive = [True] * num_servers

    # -- topology -----------------------------------------------------------

    @property
    def num_servers(self) -> int:
        return len(self._servers)

    @property
    def num_lists(self) -> int:
        return self._num_lists

    def replicas_of(self, list_id: int) -> list[int]:
        """Server indices holding *list_id* (primary first)."""
        if not 0 <= list_id < self._num_lists:
            raise UnknownListError(list_id)
        primary = list_id % len(self._servers)
        return [
            (primary + i) % len(self._servers) for i in range(self.replication)
        ]

    def server(self, index: int) -> ZerberRServer:
        """Direct access to one server (the adversary's viewpoint)."""
        return self._servers[index]

    def fail_server(self, index: int) -> None:
        """Mark a server as down (availability simulation)."""
        self._alive[index] = False

    def restore_server(self, index: int) -> None:
        self._alive[index] = True

    # -- data plane -----------------------------------------------------------

    def insert(
        self, principal: str, list_id: int, element: EncryptedPostingElement
    ) -> None:
        """Insert into every replica of the list's shard."""
        for server_index in self.replicas_of(list_id):
            self._servers[server_index].insert(principal, list_id, element)

    def insert_many(
        self,
        principal: str,
        items: Iterable[tuple[int, EncryptedPostingElement]],
    ) -> int:
        """Replicated multi-insert (client-compatible surface)."""
        accepted = 0
        for list_id, element in items:
            self.insert(principal, list_id, element)
            accepted += 1
        return accepted

    def delete_element(
        self, principal: str, list_id: int, ciphertext: bytes
    ) -> bool:
        """Delete a receipt's element from every replica."""
        removed_any = False
        for server_index in self.replicas_of(list_id):
            if self._servers[server_index].delete_element(
                principal, list_id, ciphertext
            ):
                removed_any = True
        return removed_any

    def bulk_load(
        self,
        principal: str,
        items: Iterable[tuple[int, EncryptedPostingElement]],
    ) -> int:
        """Bulk-load each element into all of its replicas."""
        items = list(items)
        accepted = 0
        per_server: dict[int, list[tuple[int, EncryptedPostingElement]]] = {}
        for list_id, element in items:
            for server_index in self.replicas_of(list_id):
                per_server.setdefault(server_index, []).append((list_id, element))
            accepted += 1
        for server_index, shard_items in per_server.items():
            self._servers[server_index].bulk_load(principal, shard_items)
        return accepted

    def fetch(self, request: FetchRequest) -> FetchResponse:
        """Serve from the first live replica of the requested list."""
        return self._servers[self._route(request.list_id)].fetch(request)

    def _route(self, list_id: int) -> int:
        """First live replica holding *list_id* (replica failover)."""
        for server_index in self.replicas_of(list_id):
            if self._alive[server_index]:
                return server_index
        raise ProtocolError(
            f"all {self.replication} replica(s) of list {list_id} are down"
        )

    def batch_fetch(self, batch: BatchFetchRequest) -> BatchFetchResponse:
        """Serve a batch with one sub-batch per shard server.

        Each slice routes to the first live replica of its list; slices
        that land on the same server travel as one
        :class:`BatchFetchRequest` to it (one round-trip per touched
        server, not per slice).  Responses reassemble in the original
        slice order.  A list with no live replica fails the whole batch,
        matching :meth:`fetch`'s error behaviour.
        """
        routed: list[int] = [
            self._route(request.list_id) for request in batch.requests
        ]
        per_server: dict[int, list[int]] = {}
        for slice_index, server_index in enumerate(routed):
            per_server.setdefault(server_index, []).append(slice_index)
        responses: list[FetchResponse | None] = [None] * len(batch.requests)
        for server_index, slice_indices in per_server.items():
            sub_batch = BatchFetchRequest(
                principal=batch.principal,
                requests=tuple(batch.requests[i] for i in slice_indices),
            )
            sub_response = self._servers[server_index].batch_fetch(sub_batch)
            for i, response in zip(slice_indices, sub_response.responses):
                responses[i] = response
        return BatchFetchResponse(responses=tuple(responses))  # type: ignore[arg-type]

    # -- accounting -------------------------------------------------------------

    @property
    def num_elements(self) -> int:
        """Logical element count (replicas counted once)."""
        total_stored = sum(s.num_elements for s in self._servers)
        return total_stored // self.replication

    def list_length(self, list_id: int) -> int:
        primary = self.replicas_of(list_id)[0]
        return self._servers[primary].list_length(list_id)

    def visible_trs_values(self, list_id: int) -> list[float]:
        primary = self.replicas_of(list_id)[0]
        return self._servers[primary].visible_trs_values(list_id)

    def storage_score_slots(self) -> int:
        return self.num_elements

    def storage_bits(self) -> int:
        return sum(s.storage_bits() for s in self._servers)

    # -- adversary model ----------------------------------------------------------

    def visible_fraction(self, compromised: Iterable[int]) -> float:
        """Fraction of merged lists an adversary owning *compromised*
        servers can read — the confidentiality benefit of sharding."""
        owned = set(compromised)
        if not owned <= set(range(len(self._servers))):
            raise ConfigurationError("unknown server index")
        visible = sum(
            1
            for list_id in range(self._num_lists)
            if owned & set(self.replicas_of(list_id))
        )
        return visible / self._num_lists

    def observations_at(self, index: int) -> list[ObservedFetch]:
        """The fetch log of one (compromised) server."""
        return self._servers[index].observations
