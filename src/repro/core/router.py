"""Coordinator: cross-query slice coalescing over the sharded cluster.

The seed topology had every client talk to the cluster directly, so N
concurrent users issued N independent batched calls per round even when
they wanted the *same* head-term slices (the Fig. 10 skew makes that the
common case).  The coordinator inverts the call direction — clients no
longer call servers; they park resumable
:class:`~repro.core.client.ClientQuerySession` objects at the coordinator,
which runs discrete *scheduling ticks*::

    client sessions                coordinator                 shard servers
    ---------------          ----------------------          ---------------
    s1: [t1,t2,t3] ──submit─▸ tick():                  env    +----------+
    s2: [t1,t4]    ──submit─▸   1 gather pending  ──{srv 0}─▸ | server 0 |
    s3: [t2,t5]    ──submit─▸     slices                      +----------+
                                2 dedup shared slices  env    +----------+
     ◂─deliver()/result()──     3 route @ epoch   ──{srv 1}─▸ | server 1 |
                                4 demux by slice id           +----------+
                                5 (every R ticks) rebalance

Per tick the coordinator (1) gathers every active session's pending fetch
slices, (2) deduplicates identical slices — same principal, list, offset,
count — so concurrent queries for the same hot list share one server
slice, (3) routes unique slices through the cluster's placement table and
packs everything bound for one server into a single
:class:`~repro.core.protocol.CoalescedBatchRequest` (one server call per
touched server per tick, regardless of how many sessions are in flight),
(4) demultiplexes responses back to sessions by slice id, and (5)
optionally triggers heat-driven shard rebalancing between ticks.  Every
envelope pins the placement epoch it was routed under, so a rebalance can
never tear a tick: the cluster rejects stale-epoch envelopes instead of
serving them from the wrong shard.

Per-session fetch sequences (offsets, counts, stop conditions) are exactly
what the session would have issued against the cluster directly, so query
results are byte-identical to the direct path — the coordinator changes
*who pays for round-trips*, never what a query returns.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.client import ClientQuerySession, MultiQueryResult, ZerberRClient
from repro.core.cluster import ServerCluster
from repro.core.protocol import (
    BatchFetchRequest,
    CoalescedBatchRequest,
    FetchRequest,
    FetchResponse,
    ResponsePolicy,
)
from repro.errors import ConfigurationError, ProtocolError

SliceKey = tuple[str, int, int, int]
"""Identity of a fetch slice: (principal, list_id, offset, count)."""


@dataclass
class CoordinatorStats:
    """Scheduling counters of one coordinator.

    ``slices_requested`` counts session slices gathered;
    ``slices_sent`` counts unique slices actually shipped after
    cross-session deduplication — the difference is work served from a
    shared response.  ``server_calls`` counts envelopes sent (the number a
    latency-bound deployment cares about).
    """

    ticks: int = 0
    server_calls: int = 0
    slices_requested: int = 0
    slices_sent: int = 0
    sessions_completed: int = 0
    rebalances: int = 0
    lists_migrated: int = 0

    @property
    def slices_shared(self) -> int:
        """Session slices answered from another session's fetch."""
        return self.slices_requested - self.slices_sent


@dataclass
class _TickPlan:
    """Work of one tick: per-session slice keys plus unique routed slices."""

    session_keys: list[tuple[ClientQuerySession, list[SliceKey]]] = field(
        default_factory=list
    )
    unique: dict[SliceKey, tuple[int, FetchRequest]] = field(default_factory=dict)


class Coordinator:
    """Shared front-end scheduling many query sessions over one cluster."""

    def __init__(
        self,
        cluster: ServerCluster,
        rebalance_every: int | None = None,
    ) -> None:
        if rebalance_every is not None and rebalance_every < 1:
            raise ConfigurationError("rebalance_every must be >= 1")
        self._cluster = cluster
        self._rebalance_every = rebalance_every
        self._sessions: list[ClientQuerySession] = []
        self.stats = CoordinatorStats()

    @property
    def cluster(self) -> ServerCluster:
        return self._cluster

    @property
    def active_sessions(self) -> int:
        return sum(1 for s in self._sessions if not s.done)

    # -- session intake ----------------------------------------------------------

    def submit(self, session: ClientQuerySession) -> ClientQuerySession:
        """Park a client's query session for lockstep scheduling.

        The session's client must be bound to this coordinator's cluster;
        accepting a session from a client on another backend would answer
        it from the wrong index.
        """
        if session.backend is not self._cluster:
            raise ConfigurationError(
                "session's client is not bound to this coordinator's cluster"
            )
        if any(existing is session for existing in self._sessions):
            raise ProtocolError("session is already submitted")
        self._sessions.append(session)
        return session

    def evict(self, session: ClientQuerySession) -> None:
        """Remove a parked session (e.g. a caller abandoning a query)."""
        self._sessions = [s for s in self._sessions if s is not session]

    def open_session(
        self,
        client: ZerberRClient,
        terms: Sequence[str],
        k: int,
        policy: ResponsePolicy | None = None,
        max_requests: int = 64,
    ) -> ClientQuerySession:
        """Open a session on *client* and submit it in one step."""
        return self.submit(
            client.open_multi_session(
                terms, k, policy=policy, max_requests=max_requests
            )
        )

    # -- scheduling --------------------------------------------------------------

    def tick(self) -> bool:
        """Run one scheduling tick; returns whether any work was done.

        Raises :class:`~repro.errors.UnavailableError` if a needed list
        has no live replica — fail-fast, matching
        :meth:`ServerCluster.batch_fetch` semantics.
        """
        finished = [s for s in self._sessions if s.done]
        if finished:
            # Sessions that were already done when submitted (e.g. zero
            # terms) never reach _demultiplex; count and prune them here.
            self.stats.sessions_completed += len(finished)
            self._sessions = [s for s in self._sessions if not s.done]
        active = self._sessions
        if not active:
            return False
        plan = self._gather(active)
        responses = self._dispatch(plan)
        self._demultiplex(plan, responses)
        self.stats.ticks += 1
        self._sessions = [s for s in self._sessions if not s.done]
        if (
            self._rebalance_every is not None
            and self.stats.ticks % self._rebalance_every == 0
        ):
            self.rebalance()
        return True

    def _gather(self, active: list[ClientQuerySession]) -> _TickPlan:
        """Collect pending slices, deduplicating across sessions."""
        plan = _TickPlan()
        next_slice_id = 0
        for session in active:
            keys: list[SliceKey] = []
            for request in session.pending_requests():
                key: SliceKey = (
                    request.principal,
                    request.list_id,
                    request.offset,
                    request.count,
                )
                if key not in plan.unique:
                    plan.unique[key] = (next_slice_id, request)
                    next_slice_id += 1
                keys.append(key)
                self.stats.slices_requested += 1
            plan.session_keys.append((session, keys))
        return plan

    def _dispatch(self, plan: _TickPlan) -> dict[int, FetchResponse]:
        """Route unique slices, send one envelope per touched server."""
        epoch = self._cluster.placement_epoch
        per_server: dict[int, dict[str, list[tuple[int, FetchRequest]]]] = {}
        for slice_id, request in plan.unique.values():
            server_index = self._cluster.route(request.list_id)
            per_server.setdefault(server_index, {}).setdefault(
                request.principal, []
            ).append((slice_id, request))
        by_slice_id: dict[int, FetchResponse] = {}
        for server_index in sorted(per_server):
            by_principal = per_server[server_index]
            batches = []
            slice_ids: list[int] = []
            for principal in sorted(by_principal):
                slices = by_principal[principal]
                batches.append(
                    BatchFetchRequest(
                        principal=principal,
                        requests=tuple(request for _, request in slices),
                    )
                )
                slice_ids.extend(slice_id for slice_id, _ in slices)
            envelope = CoalescedBatchRequest(
                batches=tuple(batches),
                slice_ids=tuple(slice_ids),
                epoch=epoch,
            )
            response = self._cluster.serve_envelope(server_index, envelope)
            by_slice_id.update(response.by_slice_id())
            self.stats.server_calls += 1
            self.stats.slices_sent += len(envelope)
        return by_slice_id

    def _demultiplex(
        self, plan: _TickPlan, by_slice_id: dict[int, FetchResponse]
    ) -> None:
        """Fan every slice response out to all sessions that wanted it."""
        for session, keys in plan.session_keys:
            responses = tuple(
                by_slice_id[plan.unique[key][0]] for key in keys
            )
            session.deliver(responses)
            if session.done:
                self.stats.sessions_completed += 1

    def run_until_complete(self) -> int:
        """Tick until every submitted session is done; returns ticks run."""
        ticks = 0
        while self.tick():
            ticks += 1
        return ticks

    def run_queries(
        self,
        jobs: Sequence[tuple[ZerberRClient, Sequence[str], int]],
        policy: ResponsePolicy | None = None,
        max_requests: int = 64,
    ) -> list[MultiQueryResult]:
        """Serve ``(client, terms, k)`` jobs concurrently; results in order."""
        if self.active_sessions:
            raise ProtocolError("coordinator already has sessions in flight")
        # Open every session before submitting any: a bad job (unknown
        # term, invalid k) must fail the whole call without leaving
        # earlier jobs parked, which would wedge later run_queries calls.
        sessions = [
            client.open_multi_session(
                terms, k, policy=policy, max_requests=max_requests
            )
            for client, terms, k in jobs
        ]
        for session in sessions:
            self.submit(session)
        try:
            self.run_until_complete()
        except BaseException:
            # A mid-run failure (e.g. every replica of a list down) must
            # not park these sessions forever and wedge the coordinator.
            for session in sessions:
                self.evict(session)
            raise
        return [session.result() for session in sessions]

    # -- placement ---------------------------------------------------------------

    def rebalance(self) -> dict[int, tuple[int, ...]]:
        """Trigger heat-driven shard rebalancing between ticks.

        Safe at any tick boundary: the next tick routes from the updated
        placement table under the bumped epoch, and session state (offsets
        into readable sub-lists) is placement-independent, so in-flight
        queries continue with identical results.
        """
        moves = self._cluster.rebalance()
        if moves:
            self.stats.rebalances += 1
            self.stats.lists_migrated += len(moves)
        return moves
