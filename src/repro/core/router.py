"""Coordinator: cross-query slice coalescing over the sharded cluster.

The seed topology had every client talk to the cluster directly, so N
concurrent users issued N independent batched calls per round even when
they wanted the *same* head-term slices (the Fig. 10 skew makes that the
common case).  The coordinator inverts the call direction — clients no
longer call servers; they park resumable
:class:`~repro.core.client.ClientQuerySession` objects at the coordinator,
which schedules them over a deterministic virtual-time
:class:`~repro.core.eventloop.EventLoop`::

    client sessions                coordinator                 shard servers
    ---------------          ----------------------          ---------------
    s1: [t1,t2,t3] ─arrival─▸ flush @ tick t:          env    +----------+
    s2: [t1,t4]    ─arrival─▸   1 gather ready    ──{srv 0}─▸ | server 0 |
    s3: [t2,t5]    ──submit─▸     slices                      +----------+
                                2 dedup shared slices  env    +----------+
     ◂─deliver()/result()──     3 route @ epoch   ──{srv 1}─▸ | server 1 |
                                4 demux by slice id           +----------+
          background daemons:   replication delivery · anti-entropy ·
                                (every R ticks) rebalance

Per *flush* the coordinator (1) gathers every ready session's pending
fetch slices in submission-age order, spilling sessions to a later flush
when the per-round caps (``max_sessions_per_tick``,
``max_slices_per_envelope``) are reached, (2) deduplicates identical
slices — same principal, list, offset, count — so concurrent queries for
the same hot list share one server slice, (3) routes unique slices
through the cluster's placement table and packs everything bound for one
server into a single :class:`~repro.core.protocol.CoalescedBatchRequest`
(one server call per touched server per flush, regardless of how many
sessions are in flight), and (4) demultiplexes responses back to
sessions by slice id — inline when ``round_latency`` is 0, or as
deferred delivery events ``round_latency`` ticks later, in which case
the decrypt/skim of round *n* overlaps the envelope build of round
*n + 1* (counted by ``pipeline_overlap``).  Follower replication
delivery and (optionally) the anti-entropy sweep run as background loop
daemons with their own periods instead of piggybacking on the flush.
Every envelope pins the placement epoch it was routed under, so a
rebalance can never tear a flush: the cluster rejects stale-epoch
envelopes instead of serving them from the wrong shard.

Admission is governed by *real backpressure* rather than unbounded
parking: with ``max_queue_depth`` / ``credits_per_principal`` set, an
arrival that would exceed a bound is shed before anything is
acknowledged, carrying a deterministic
:class:`~repro.core.protocol.BackpressureSignal` retry hint
(:meth:`Coordinator.submit` raises
:class:`~repro.errors.BackpressureError`; :meth:`submit_arrival`
reschedules the arrival for the hinted tick).

The legacy lockstep :meth:`Coordinator.tick` survives as a thin driver
over the loop — one tick advances virtual time by exactly one tick,
which drains that tick to quiescence — so zero-lag deterministic
workloads are byte-identical to the pre-loop coordinator: same results,
same stats, same replication cadence, same rebalance points.

Per-session fetch sequences (offsets, counts, stop conditions) are exactly
what the session would have issued against the cluster directly, so query
results are byte-identical to the direct path — the coordinator changes
*who pays for round-trips*, never what a query returns.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from dataclasses import replace as dataclass_replace

from repro.core.client import ClientQuerySession, MultiQueryResult, ZerberRClient
from repro.core.cluster import ServerCluster
from repro.core.eventloop import MAINTENANCE, EventLoop
from repro.core.protocol import (
    BackpressureSignal,
    BatchFetchRequest,
    CoalescedBatchRequest,
    FetchRequest,
    FetchResponse,
    ResponsePolicy,
)
from repro.errors import (
    BackpressureError,
    ConfigurationError,
    ProtocolError,
    StaleEpochError,
)
from repro.obs.instruments import CoordinatorInstruments

SliceKey = tuple[str, int, int, int]
"""Identity of a fetch slice: (principal, list_id, offset, count).

Deliberately excludes the request's ``min_version`` session floor: two
sessions wanting the same slice under different floors still share one
server fetch — the coalesced request carries the *max* of their floors,
which satisfies both (floors are lower bounds)."""

#: Retained shed records (oldest dropped first); enough for any test or
#: bench to inspect recent admission decisions without unbounded growth.
_MAX_SHED_RECORDS = 1024


@dataclass
class CoordinatorStats:
    """Scheduling counters of one coordinator.

    ``slices_requested`` counts session slices gathered;
    ``slices_sent`` counts unique slices actually shipped after
    cross-session deduplication — the difference is work served from a
    shared response.  ``server_calls`` counts envelopes sent (the number a
    latency-bound deployment cares about).  ``sessions_spilled`` /
    ``slices_spilled`` count per-round deferrals: a session held
    back to a later flush because this flush's envelope or session caps
    were reached (each spilled session counts once per flush it waits).
    ``stale_epoch_reroutes`` counts envelopes the cluster rejected with
    :class:`~repro.errors.StaleEpochError` (a failover election or
    rebalance bumped the epoch after routing) whose slices were
    re-routed under the new placement instead of failing the flush.
    ``backpressure_sheds`` counts arrivals refused at admission (queue
    depth or principal credits exhausted) — shed *before* anything was
    acknowledged, so a shed never loses accepted work.
    ``pipeline_overlap`` counts flushes that built envelopes while
    earlier rounds' deliveries were still in flight — the round-
    pipelining the event loop buys over lockstep barriers (always 0 with
    ``round_latency=0``).
    """

    ticks: int = 0
    server_calls: int = 0
    slices_requested: int = 0
    slices_sent: int = 0
    sessions_completed: int = 0
    sessions_spilled: int = 0
    slices_spilled: int = 0
    rebalances: int = 0
    lists_migrated: int = 0
    stale_epoch_reroutes: int = 0
    backpressure_sheds: int = 0
    pipeline_overlap: int = 0

    @property
    def slices_shared(self) -> int:
        """Session slices answered from another session's fetch."""
        return self.slices_requested - self.slices_sent


@dataclass
class _TickPlan:
    """Work of one flush: per-session slice keys plus unique routed slices.

    ``unique`` maps a slice key to ``(slice_id, request, server_index)``
    — routing happens at gather time so admission control can enforce
    per-envelope caps, and dispatch reuses the stored route (the flush is
    atomic, so the placement cannot change in between).
    """

    session_keys: list[tuple[ClientQuerySession, list[SliceKey]]] = field(
        default_factory=list
    )
    unique: dict[SliceKey, tuple[int, FetchRequest, int]] = field(
        default_factory=dict
    )


class Coordinator:
    """Shared front-end scheduling many query sessions over one cluster."""

    def __init__(
        self,
        cluster: ServerCluster,
        rebalance_every: int | None = None,
        max_slices_per_envelope: int | None = None,
        max_sessions_per_tick: int | None = None,
        *,
        loop: EventLoop | None = None,
        round_latency: int = 0,
        delivery_every: int = 1,
        anti_entropy_every: int | None = None,
        max_queue_depth: int | None = None,
        credits_per_principal: int | None = None,
    ) -> None:
        """``max_slices_per_envelope`` / ``max_sessions_per_tick`` are the
        per-round caps: a flush schedules sessions in submission (age)
        order and defers — *spills* — any session that would push a
        server's envelope past the slice cap or the flush past the
        session cap.  Spilled sessions keep their age priority, so a
        large round degrades into FIFO-fair extra flushes instead of
        unbounded envelopes.  A session whose own slices exceed the
        envelope cap is still admitted when the envelope is empty (it
        cannot be split).  ``None`` (the default) disables a cap.

        ``max_queue_depth`` / ``credits_per_principal`` are the
        *admission* bounds (``None`` disables): an arrival that would
        exceed one is shed with a retry-after hint instead of parked.
        ``round_latency`` ticks separate an envelope's dispatch from its
        sessions' skim delivery (0 — the default — demultiplexes inline,
        the lockstep-identical path).  ``delivery_every`` is the period
        of the replication-delivery daemon; ``anti_entropy_every``
        detaches the anti-entropy sweep from the replication clock onto
        its own loop daemon.  ``loop`` shares an external event loop
        (e.g. with an arrival generator); by default the coordinator
        owns a fresh one.
        """
        if rebalance_every is not None and rebalance_every < 1:
            raise ConfigurationError("rebalance_every must be >= 1")
        if max_slices_per_envelope is not None and max_slices_per_envelope < 1:
            raise ConfigurationError("max_slices_per_envelope must be >= 1")
        if max_sessions_per_tick is not None and max_sessions_per_tick < 1:
            raise ConfigurationError("max_sessions_per_tick must be >= 1")
        if round_latency < 0:
            raise ConfigurationError("round_latency must be >= 0")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ConfigurationError("max_queue_depth must be >= 1")
        if credits_per_principal is not None and credits_per_principal < 1:
            raise ConfigurationError("credits_per_principal must be >= 1")
        self._cluster = cluster
        self._rebalance_every = rebalance_every
        self._max_slices_per_envelope = max_slices_per_envelope
        self._max_sessions_per_tick = max_sessions_per_tick
        self._round_latency = round_latency
        self._max_queue_depth = max_queue_depth
        self._credits_per_principal = credits_per_principal
        self._loop = loop if loop is not None else EventLoop()
        self._sessions: list[ClientQuerySession] = []
        # Sessions whose responses are in flight (id() keys — sessions are
        # scheduled by identity, never by equality).
        self._awaiting: set[int] = set()
        self._pending_delivers = 0
        # Virtual ticks with a flush event already queued (dedup guard).
        self._flush_scheduled: set[int] = set()
        self.sheds: list[BackpressureSignal] = []
        self.stats = CoordinatorStats()
        # Scheduling counters stay plain attribute increments on the hot
        # loop; the collector mirrors them into the registry at snapshot
        # time.  Direct instruments cover only what the stats cannot: the
        # queue-depth gauge and the per-envelope / per-session histograms.
        self._obs = CoordinatorInstruments(cluster.telemetry)
        self._obs.register_stats_collector(cluster.telemetry, lambda: self.stats)
        # Replication delivery (and optionally anti-entropy) become loop
        # daemons: they fire as virtual time passes, not as a side effect
        # of the flush.  With delivery_every=1 the daemon fires at the end
        # of every tick — the legacy "one scheduling tick is one
        # replication tick" cadence, which the lockstep driver preserves.
        cluster.register_background_tasks(
            self._loop,
            delivery_every=delivery_every,
            anti_entropy_every=anti_entropy_every,
        )
        if rebalance_every is not None:
            self._loop.every(
                rebalance_every,
                self._rebalance_task,
                name="rebalance",
                priority=MAINTENANCE,
            )

    @property
    def cluster(self) -> ServerCluster:
        return self._cluster

    @property
    def loop(self) -> EventLoop:
        """The coordinator's virtual-time scheduler."""
        return self._loop

    @property
    def active_sessions(self) -> int:
        return sum(1 for s in self._sessions if not s.done)

    # -- admission control -------------------------------------------------------

    def _admission_signal(
        self, principal: str
    ) -> BackpressureSignal | None:
        """The shed signal admitting *principal* now would trigger, if any."""
        if self._max_queue_depth is not None:
            depth = sum(1 for s in self._sessions if not s.done)
            if depth >= self._max_queue_depth:
                return BackpressureSignal(
                    principal=principal,
                    tick=self._loop.now,
                    retry_after_ticks=depth - self._max_queue_depth + 1,
                    queue_depth=depth,
                    limit=self._max_queue_depth,
                    reason="queue",
                )
        if self._credits_per_principal is not None:
            held = sum(
                1
                for s in self._sessions
                if not s.done and s.principal == principal
            )
            if held >= self._credits_per_principal:
                return BackpressureSignal(
                    principal=principal,
                    tick=self._loop.now,
                    retry_after_ticks=1,
                    queue_depth=held,
                    limit=self._credits_per_principal,
                    reason="credits",
                )
        return None

    def _record_shed(self, signal: BackpressureSignal) -> None:
        self.stats.backpressure_sheds += 1
        self.sheds.append(signal)
        if len(self.sheds) > _MAX_SHED_RECORDS:
            del self.sheds[: len(self.sheds) - _MAX_SHED_RECORDS]

    # -- session intake ----------------------------------------------------------

    def _check_intake(self, session: ClientQuerySession) -> None:
        if session.backend is not self._cluster:
            raise ConfigurationError(
                "session's client is not bound to this coordinator's cluster"
            )
        if any(existing is session for existing in self._sessions):
            raise ProtocolError("session is already submitted")

    def submit(self, session: ClientQuerySession) -> ClientQuerySession:
        """Park a client's query session for scheduling.

        The session's client must be bound to this coordinator's cluster;
        accepting a session from a client on another backend would answer
        it from the wrong index.  With admission bounds configured, a
        session that would exceed them is refused with
        :class:`~repro.errors.BackpressureError` — nothing is parked, the
        caller owns the retry.
        """
        self._check_intake(session)
        signal = self._admission_signal(session.principal)
        if signal is not None:
            self._record_shed(signal)
            raise BackpressureError(signal)
        self._sessions.append(session)
        return session

    def submit_arrival(
        self,
        session: ClientQuerySession,
        at: int | None = None,
        retry_on_shed: bool = True,
    ) -> None:
        """Schedule *session* to arrive at virtual tick *at* (default now).

        The arrival-driven intake: admission happens when the event
        fires, a flush is scheduled for the same tick, and the session
        runs its rounds without any external ``tick()`` driver — callers
        :meth:`drain` the loop (or advance it themselves) to completion.
        A shed arrival is rescheduled ``retry_after_ticks`` later when
        *retry_on_shed* is set, so a transient overload degrades into
        deferred admission instead of lost work.
        """
        self._check_intake(session)
        when = self._loop.now if at is None else at
        self._loop.call_at(
            when,
            lambda: self._admit_arrival(session, retry_on_shed),
            name="arrival",
        )

    def _admit_arrival(
        self, session: ClientQuerySession, retry_on_shed: bool
    ) -> None:
        if any(existing is session for existing in self._sessions):
            return  # double-scheduled arrival; already admitted
        signal = self._admission_signal(session.principal)
        if signal is not None:
            self._record_shed(signal)
            if retry_on_shed:
                self._loop.call_at(
                    self._loop.now + signal.retry_after_ticks,
                    lambda: self._admit_arrival(session, retry_on_shed),
                    name="arrival-retry",
                )
            return
        self._sessions.append(session)
        self._ensure_flush(self._loop.now)

    def evict(self, session: ClientQuerySession) -> None:
        """Remove a parked session (e.g. a caller abandoning a query).

        A delivery already in flight for the session fires as a no-op
        (delivery is matched by identity against the parked set).
        """
        self._sessions = [s for s in self._sessions if s is not session]

    def open_session(
        self,
        client: ZerberRClient,
        terms: Sequence[str],
        k: int,
        policy: ResponsePolicy | None = None,
        max_requests: int = 64,
    ) -> ClientQuerySession:
        """Open a session on *client* and submit it in one step."""
        return self.submit(
            client.open_multi_session(
                terms, k, policy=policy, max_requests=max_requests
            )
        )

    # -- scheduling --------------------------------------------------------------

    def tick(self) -> bool:
        """Run one lockstep scheduling tick; returns whether work was done.

        The legacy driver over the event loop: advances virtual time by
        exactly one tick, which fires this tick's flush, its deliveries,
        the replication daemon and any due maintenance — at zero round
        latency this is byte-identical to the pre-loop lockstep
        coordinator.  Raises :class:`~repro.errors.UnavailableError` if a
        needed list has no live replica — fail-fast, matching
        :meth:`ServerCluster.batch_fetch` semantics.
        """
        self._prune(count_completions=True)
        if not self._sessions:
            self._obs.queue_depth.set(0.0)
            return False
        self._ensure_flush(self._loop.now)
        self._loop.advance(1)
        return True

    def drain(self, max_ticks: int = 100_000) -> int:
        """Advance the loop until all arrivals, rounds and deliveries settle.

        The arrival-driven counterpart of :meth:`run_until_complete`:
        returns the virtual ticks advanced; raises
        :class:`~repro.errors.ProtocolError` if the loop fails to quiesce
        within *max_ticks*.
        """
        return self._loop.run_until_quiet(max_ticks)

    def _prune(self, count_completions: bool) -> None:
        """Drop finished sessions; optionally count ones never delivered to.

        Sessions that were already done when submitted (e.g. zero terms)
        never reach :meth:`_demultiplex`; the counting prune at the start
        of a flush is where they are counted.
        """
        done = [s for s in self._sessions if s.done]
        if done:
            if count_completions:
                self.stats.sessions_completed += len(done)
            self._sessions = [s for s in self._sessions if not s.done]

    def _ensure_flush(self, tick: int) -> None:
        """Schedule a flush at *tick* unless one is already queued there."""
        tick = max(tick, self._loop.now)
        if tick in self._flush_scheduled:
            return
        self._flush_scheduled.add(tick)
        self._loop.call_at(tick, lambda: self._flush(tick), name="flush")

    def _flush(self, at_tick: int) -> None:
        """Run one coalescing round over every ready (non-awaiting) session."""
        self._flush_scheduled.discard(at_tick)
        self._prune(count_completions=True)
        self._obs.queue_depth.set(float(len(self._sessions)))
        ready = [s for s in self._sessions if id(s) not in self._awaiting]
        if not ready:
            return
        plan = self._gather(ready)
        if not plan.session_keys:
            return
        if self._pending_delivers:
            # Envelope build of this round overlaps in-flight deliveries
            # of earlier rounds — the pipelining win over lockstep.
            self.stats.pipeline_overlap += 1
        # One flush's coalescing is genuinely shared work; its span is
        # attributed to the oldest admitted session's trace.  Everything
        # below — envelopes, serves, delivery rounds, skims — nests under
        # it through the tracer's call stack.
        trace_ctx = plan.session_keys[0][0].trace_id
        with self._obs.tracer.span(
            "coalesce",
            trace=trace_ctx,
            sessions=len(plan.session_keys),
            unique_slices=len(plan.unique),
        ):
            responses = self._dispatch(plan, trace_ctx)
            if self._round_latency == 0:
                self._demultiplex(plan, responses)
            else:
                self._schedule_deliveries(plan, responses)
        self.stats.ticks += 1
        self._prune(count_completions=False)
        if any(id(s) not in self._awaiting for s in self._sessions):
            # Ready work remains (next rounds, spilled sessions): next
            # flush next tick — the legacy one-round-per-tick cadence.
            self._ensure_flush(self._loop.now + 1)

    def _schedule_deliveries(
        self, plan: _TickPlan, by_slice_id: dict[int, FetchResponse]
    ) -> None:
        """Defer each session's demux by ``round_latency`` ticks."""
        for session, keys in plan.session_keys:
            responses = tuple(by_slice_id[plan.unique[key][0]] for key in keys)
            self._awaiting.add(id(session))
            self._pending_delivers += 1
            self._loop.call_at(
                self._loop.now + self._round_latency,
                lambda s=session, r=responses: self._deliver_one(s, r),
                name="deliver",
            )

    def _deliver_one(
        self,
        session: ClientQuerySession,
        responses: tuple[FetchResponse, ...],
    ) -> None:
        """Land one session's deferred round (skim happens here)."""
        self._awaiting.discard(id(session))
        self._pending_delivers -= 1
        if not any(existing is session for existing in self._sessions):
            return  # evicted while the round was in flight
        session.deliver(responses)
        if session.done:
            self.stats.sessions_completed += 1
            self._obs.session_rounds.observe(float(session.rounds))
            self._sessions = [s for s in self._sessions if s is not session]
        else:
            # Next round can coalesce with whatever else is ready at this
            # tick — skim of round n overlapping build of round n+1.
            self._ensure_flush(self._loop.now)

    def _gather(self, ready: list[ClientQuerySession]) -> _TickPlan:
        """Collect pending slices, deduplicating across sessions.

        Sessions are considered in submission (age) order; the per-round
        caps spill a session to a later flush when this flush's caps
        are already committed (see :meth:`__init__`).  Slices shared with
        an already-admitted session are free — they ship once — so
        dedup happens before cap accounting.
        """
        plan = _TickPlan()
        next_slice_id = 0
        admitted_sessions = 0
        per_server_count: dict[int, int] = {}
        for session in ready:
            pending = session.pending_requests()
            if (
                self._max_sessions_per_tick is not None
                and admitted_sessions >= self._max_sessions_per_tick
            ):
                self.stats.sessions_spilled += 1
                self.stats.slices_spilled += len(pending)
                continue
            keys: list[SliceKey] = []
            new_slices: dict[SliceKey, tuple[FetchRequest, int]] = {}
            tentative = dict(per_server_count)
            admit = True
            for request in pending:
                key: SliceKey = (
                    request.principal,
                    request.list_id,
                    request.offset,
                    request.count,
                )
                keys.append(key)
                if key in new_slices:
                    held, server_index = new_slices[key]
                    new_slices[key] = (self._merge_floor(held, request), server_index)
                    continue
                if key in plan.unique:
                    slice_id, held, server_index = plan.unique[key]
                    plan.unique[key] = (
                        slice_id,
                        self._merge_floor(held, request),
                        server_index,
                    )
                    continue
                server_index = self._cluster.route(request.list_id)
                new_slices[key] = (request, server_index)
                if self._max_slices_per_envelope is not None:
                    tentative[server_index] = tentative.get(server_index, 0) + 1
                    if (
                        tentative[server_index] > self._max_slices_per_envelope
                        and per_server_count.get(server_index, 0) > 0
                    ):
                        # The envelope already carries other sessions'
                        # slices; this one waits its turn.  (An oversized
                        # session alone on an empty envelope is admitted
                        # above — it cannot be split.)
                        admit = False
                        break
            if not admit:
                self.stats.sessions_spilled += 1
                self.stats.slices_spilled += len(pending)
                continue
            for key, (request, server_index) in new_slices.items():
                plan.unique[key] = (next_slice_id, request, server_index)
                next_slice_id += 1
                per_server_count[server_index] = (
                    per_server_count.get(server_index, 0) + 1
                )
            self.stats.slices_requested += len(keys)
            plan.session_keys.append((session, keys))
            admitted_sessions += 1
        return plan

    @staticmethod
    def _merge_floor(held: FetchRequest, request: FetchRequest) -> FetchRequest:
        """Raise a deduplicated slice's session floor to cover both wanters."""
        if (request.min_version or 0) > (held.min_version or 0):
            return dataclass_replace(held, min_version=request.min_version)
        return held

    @staticmethod
    def _envelope_trace(
        by_principal: dict[str, list[tuple[int, FetchRequest]]],
        trace_ctx: int | None,
    ) -> int | None:
        """Trace to attribute one envelope (and its serve span) to.

        The oldest session owning a slice in *this* envelope — slice ids
        are assigned in session-admission order, so the lowest id's
        request carries that session's trace.  Attributing every envelope
        to the flush-oldest session (the old behaviour) mis-filed serve
        and re-route spans of envelopes that carried only other sessions'
        slices, and a re-routed batch whose owner's root had been
        force-closed started an orphan root; per-envelope attribution
        keeps each retry attached to the session tree that asked for it.
        """
        oldest: tuple[int, int] | None = None  # (slice_id, trace_id)
        for slices in by_principal.values():
            for slice_id, request in slices:
                if request.trace_id is None:
                    continue
                if oldest is None or slice_id < oldest[0]:
                    oldest = (slice_id, request.trace_id)
        return oldest[1] if oldest is not None else trace_ctx

    def _dispatch(
        self, plan: _TickPlan, trace_ctx: int | None = None
    ) -> dict[int, FetchResponse]:
        """Send one envelope per touched server (routes fixed at gather).

        An envelope the cluster rejects with
        :class:`~repro.errors.StaleEpochError` — a failover election or an
        externally triggered rebalance bumped the placement epoch between
        routing and delivery — is not an error for its sessions: the
        rejected slices are re-routed under the now-current placement and
        re-sent, so an epoch bump costs the affected slices one extra
        envelope instead of failing the whole flush.
        """
        entries = list(plan.unique.values())
        by_slice_id: dict[int, FetchResponse] = {}
        attempts = 0
        while entries:
            attempts += 1
            if attempts > 16:
                raise ProtocolError(
                    "placement epoch kept moving during dispatch; giving up "
                    f"with {len(entries)} slice(s) undelivered"
                )
            epoch = self._cluster.placement_epoch
            per_server: dict[int, dict[str, list[tuple[int, FetchRequest]]]] = {}
            for slice_id, request, server_index in entries:
                per_server.setdefault(server_index, {}).setdefault(
                    request.principal, []
                ).append((slice_id, request))
            retry: list[tuple[int, FetchRequest, int]] = []
            for server_index in sorted(per_server):
                by_principal = per_server[server_index]
                batches = []
                slice_ids: list[int] = []
                for principal in sorted(by_principal):
                    slices = by_principal[principal]
                    batches.append(
                        BatchFetchRequest(
                            principal=principal,
                            requests=tuple(request for _, request in slices),
                        )
                    )
                    slice_ids.extend(slice_id for slice_id, _ in slices)
                envelope_trace = self._envelope_trace(by_principal, trace_ctx)
                envelope = CoalescedBatchRequest(
                    batches=tuple(batches),
                    slice_ids=tuple(slice_ids),
                    epoch=epoch,
                    trace_id=envelope_trace,
                )
                with self._obs.tracer.span(
                    "envelope",
                    trace=envelope_trace,
                    server=server_index,
                    slices=len(envelope),
                ) as span:
                    try:
                        response = self._cluster.serve_envelope(
                            server_index, envelope
                        )
                    except StaleEpochError:
                        span.annotate(rerouted=True)
                        self.stats.stale_epoch_reroutes += 1
                        retry.extend(
                            (
                                slice_id,
                                request,
                                self._cluster.route(request.list_id),
                            )
                            for principal in sorted(by_principal)
                            for slice_id, request in by_principal[principal]
                        )
                        continue
                by_slice_id.update(response.by_slice_id())
                self._obs.envelope_slices.observe(float(len(envelope)))
                self.stats.server_calls += 1
                self.stats.slices_sent += len(envelope)
            entries = retry
        return by_slice_id

    def _demultiplex(
        self, plan: _TickPlan, by_slice_id: dict[int, FetchResponse]
    ) -> None:
        """Fan every slice response out to all sessions that wanted it."""
        for session, keys in plan.session_keys:
            responses = tuple(
                by_slice_id[plan.unique[key][0]] for key in keys
            )
            session.deliver(responses)
            if session.done:
                self.stats.sessions_completed += 1
                self._obs.session_rounds.observe(float(session.rounds))

    def run_until_complete(self) -> int:
        """Tick until every submitted session is done; returns ticks run."""
        ticks = 0
        while self.tick():
            ticks += 1
        return ticks

    def run_queries(
        self,
        jobs: Sequence[tuple[ZerberRClient, Sequence[str], int]],
        policy: ResponsePolicy | None = None,
        max_requests: int = 64,
    ) -> list[MultiQueryResult]:
        """Serve ``(client, terms, k)`` jobs concurrently; results in order."""
        if self.active_sessions:
            raise ProtocolError("coordinator already has sessions in flight")
        # Open every session before submitting any: a bad job (unknown
        # term, invalid k) must fail the whole call without leaving
        # earlier jobs parked, which would wedge later run_queries calls.
        sessions = [
            client.open_multi_session(
                terms, k, policy=policy, max_requests=max_requests
            )
            for client, terms, k in jobs
        ]
        for session in sessions:
            self.submit(session)
        try:
            self.run_until_complete()
        except BaseException:
            # A mid-run failure (e.g. every replica of a list down) must
            # not park these sessions forever and wedge the coordinator.
            for session in sessions:
                self.evict(session)
            raise
        return [session.result() for session in sessions]

    # -- placement ---------------------------------------------------------------

    def _rebalance_task(self) -> None:
        """Periodic maintenance daemon body (see :meth:`rebalance`)."""
        self.rebalance()

    def rebalance(self) -> dict[int, tuple[int, ...]]:
        """Trigger heat-driven shard rebalancing between flushes.

        Safe at any tick boundary: the next flush routes from the updated
        placement table under the bumped epoch, and session state (offsets
        into readable sub-lists) is placement-independent, so in-flight
        queries continue with identical results.
        """
        moves = self._cluster.rebalance()
        if moves:
            self.stats.rebalances += 1
            self.stats.lists_migrated += len(moves)
        return moves
