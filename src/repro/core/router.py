"""Coordinator: cross-query slice coalescing over the sharded cluster.

The seed topology had every client talk to the cluster directly, so N
concurrent users issued N independent batched calls per round even when
they wanted the *same* head-term slices (the Fig. 10 skew makes that the
common case).  The coordinator inverts the call direction — clients no
longer call servers; they park resumable
:class:`~repro.core.client.ClientQuerySession` objects at the coordinator,
which runs discrete *scheduling ticks*::

    client sessions                coordinator                 shard servers
    ---------------          ----------------------          ---------------
    s1: [t1,t2,t3] ──submit─▸ tick():                  env    +----------+
    s2: [t1,t4]    ──submit─▸   1 gather pending  ──{srv 0}─▸ | server 0 |
    s3: [t2,t5]    ──submit─▸     slices                      +----------+
                                2 dedup shared slices  env    +----------+
     ◂─deliver()/result()──     3 route @ epoch   ──{srv 1}─▸ | server 1 |
                                4 demux by slice id           +----------+
                                5 (every R ticks) rebalance

Per tick the coordinator (1) gathers every active session's pending fetch
slices *in submission-age order*, spilling sessions to later ticks when
the admission-control caps (``max_sessions_per_tick``,
``max_slices_per_envelope``) are reached, (2) deduplicates identical
slices — same principal, list, offset, count — so concurrent queries for
the same hot list share one server slice, (3) routes unique slices
through the cluster's placement table and packs everything bound for one
server into a single :class:`~repro.core.protocol.CoalescedBatchRequest`
(one server call per touched server per tick, regardless of how many
sessions are in flight), (4) demultiplexes responses back to sessions by
slice id, (5) advances the cluster's replication clock one tick (lagged
follower deliveries land between envelopes, never mid-tick), and (6)
optionally triggers heat-driven shard rebalancing between ticks.  Every
envelope pins the placement epoch it was routed under, so a rebalance can
never tear a tick: the cluster rejects stale-epoch envelopes instead of
serving them from the wrong shard.

Per-session fetch sequences (offsets, counts, stop conditions) are exactly
what the session would have issued against the cluster directly, so query
results are byte-identical to the direct path — the coordinator changes
*who pays for round-trips*, never what a query returns.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from dataclasses import replace as dataclass_replace

from repro.core.client import ClientQuerySession, MultiQueryResult, ZerberRClient
from repro.core.cluster import ServerCluster
from repro.core.protocol import (
    BatchFetchRequest,
    CoalescedBatchRequest,
    FetchRequest,
    FetchResponse,
    ResponsePolicy,
)
from repro.errors import ConfigurationError, ProtocolError, StaleEpochError
from repro.obs.instruments import CoordinatorInstruments

SliceKey = tuple[str, int, int, int]
"""Identity of a fetch slice: (principal, list_id, offset, count).

Deliberately excludes the request's ``min_version`` session floor: two
sessions wanting the same slice under different floors still share one
server fetch — the coalesced request carries the *max* of their floors,
which satisfies both (floors are lower bounds)."""


@dataclass
class CoordinatorStats:
    """Scheduling counters of one coordinator.

    ``slices_requested`` counts session slices gathered;
    ``slices_sent`` counts unique slices actually shipped after
    cross-session deduplication — the difference is work served from a
    shared response.  ``server_calls`` counts envelopes sent (the number a
    latency-bound deployment cares about).  ``sessions_spilled`` /
    ``slices_spilled`` count admission-control deferrals: a session held
    back to a later tick because this tick's envelope or session caps
    were reached (each spilled session counts once per tick it waits).
    ``stale_epoch_reroutes`` counts envelopes the cluster rejected with
    :class:`~repro.errors.StaleEpochError` (a failover election or
    rebalance bumped the epoch after routing) whose slices were
    re-routed under the new placement instead of failing the tick.
    """

    ticks: int = 0
    server_calls: int = 0
    slices_requested: int = 0
    slices_sent: int = 0
    sessions_completed: int = 0
    sessions_spilled: int = 0
    slices_spilled: int = 0
    rebalances: int = 0
    lists_migrated: int = 0
    stale_epoch_reroutes: int = 0

    @property
    def slices_shared(self) -> int:
        """Session slices answered from another session's fetch."""
        return self.slices_requested - self.slices_sent


@dataclass
class _TickPlan:
    """Work of one tick: per-session slice keys plus unique routed slices.

    ``unique`` maps a slice key to ``(slice_id, request, server_index)``
    — routing happens at gather time so admission control can enforce
    per-envelope caps, and dispatch reuses the stored route (the tick is
    atomic, so the placement cannot change in between).
    """

    session_keys: list[tuple[ClientQuerySession, list[SliceKey]]] = field(
        default_factory=list
    )
    unique: dict[SliceKey, tuple[int, FetchRequest, int]] = field(
        default_factory=dict
    )


class Coordinator:
    """Shared front-end scheduling many query sessions over one cluster."""

    def __init__(
        self,
        cluster: ServerCluster,
        rebalance_every: int | None = None,
        max_slices_per_envelope: int | None = None,
        max_sessions_per_tick: int | None = None,
    ) -> None:
        """``max_slices_per_envelope`` / ``max_sessions_per_tick`` are the
        admission-control caps: a tick schedules sessions in submission
        (age) order and defers — *spills* — any session that would push a
        server's envelope past the slice cap or the tick past the session
        cap.  Spilled sessions keep their age priority, so overload
        degrades into FIFO-fair extra ticks instead of unbounded
        envelopes.  A session whose own slices exceed the envelope cap is
        still admitted when the envelope is empty (it cannot be split).
        ``None`` (the default) disables a cap."""
        if rebalance_every is not None and rebalance_every < 1:
            raise ConfigurationError("rebalance_every must be >= 1")
        if max_slices_per_envelope is not None and max_slices_per_envelope < 1:
            raise ConfigurationError("max_slices_per_envelope must be >= 1")
        if max_sessions_per_tick is not None and max_sessions_per_tick < 1:
            raise ConfigurationError("max_sessions_per_tick must be >= 1")
        self._cluster = cluster
        self._rebalance_every = rebalance_every
        self._max_slices_per_envelope = max_slices_per_envelope
        self._max_sessions_per_tick = max_sessions_per_tick
        self._sessions: list[ClientQuerySession] = []
        self.stats = CoordinatorStats()
        # Scheduling counters stay plain attribute increments on the hot
        # loop; the collector mirrors them into the registry at snapshot
        # time.  Direct instruments cover only what the stats cannot: the
        # queue-depth gauge and the per-envelope / per-session histograms.
        self._obs = CoordinatorInstruments(cluster.telemetry)
        self._obs.register_stats_collector(cluster.telemetry, lambda: self.stats)

    @property
    def cluster(self) -> ServerCluster:
        return self._cluster

    @property
    def active_sessions(self) -> int:
        return sum(1 for s in self._sessions if not s.done)

    # -- session intake ----------------------------------------------------------

    def submit(self, session: ClientQuerySession) -> ClientQuerySession:
        """Park a client's query session for lockstep scheduling.

        The session's client must be bound to this coordinator's cluster;
        accepting a session from a client on another backend would answer
        it from the wrong index.
        """
        if session.backend is not self._cluster:
            raise ConfigurationError(
                "session's client is not bound to this coordinator's cluster"
            )
        if any(existing is session for existing in self._sessions):
            raise ProtocolError("session is already submitted")
        self._sessions.append(session)
        return session

    def evict(self, session: ClientQuerySession) -> None:
        """Remove a parked session (e.g. a caller abandoning a query)."""
        self._sessions = [s for s in self._sessions if s is not session]

    def open_session(
        self,
        client: ZerberRClient,
        terms: Sequence[str],
        k: int,
        policy: ResponsePolicy | None = None,
        max_requests: int = 64,
    ) -> ClientQuerySession:
        """Open a session on *client* and submit it in one step."""
        return self.submit(
            client.open_multi_session(
                terms, k, policy=policy, max_requests=max_requests
            )
        )

    # -- scheduling --------------------------------------------------------------

    def tick(self) -> bool:
        """Run one scheduling tick; returns whether any work was done.

        Raises :class:`~repro.errors.UnavailableError` if a needed list
        has no live replica — fail-fast, matching
        :meth:`ServerCluster.batch_fetch` semantics.
        """
        finished = [s for s in self._sessions if s.done]
        if finished:
            # Sessions that were already done when submitted (e.g. zero
            # terms) never reach _demultiplex; count and prune them here.
            self.stats.sessions_completed += len(finished)
            self._sessions = [s for s in self._sessions if not s.done]
        active = self._sessions
        self._obs.queue_depth.set(float(len(active)))
        if not active:
            return False
        plan = self._gather(active)
        # One tick's coalescing is genuinely shared work; its span is
        # attributed to the oldest admitted session's trace.  Everything
        # below — envelopes, serves, delivery rounds, skims — nests under
        # it through the tracer's call stack.
        trace_ctx = (
            plan.session_keys[0][0].trace_id if plan.session_keys else None
        )
        with self._obs.tracer.span(
            "coalesce",
            trace=trace_ctx,
            sessions=len(plan.session_keys),
            unique_slices=len(plan.unique),
        ):
            responses = self._dispatch(plan, trace_ctx)
            self._demultiplex(plan, responses)
        self.stats.ticks += 1
        # One scheduling tick is one replication tick: follower deliveries
        # whose lag has elapsed land between envelopes, never mid-tick.
        self._cluster.replication_tick()
        self._sessions = [s for s in self._sessions if not s.done]
        if (
            self._rebalance_every is not None
            and self.stats.ticks % self._rebalance_every == 0
        ):
            self.rebalance()
        return True

    def _gather(self, active: list[ClientQuerySession]) -> _TickPlan:
        """Collect pending slices, deduplicating across sessions.

        Sessions are considered in submission (age) order; admission
        control spills a session to a later tick when this tick's caps
        are already committed (see :meth:`__init__`).  Slices shared with
        an already-admitted session are free — they ship once — so
        dedup happens before cap accounting.
        """
        plan = _TickPlan()
        next_slice_id = 0
        admitted_sessions = 0
        per_server_count: dict[int, int] = {}
        for session in active:
            pending = session.pending_requests()
            if (
                self._max_sessions_per_tick is not None
                and admitted_sessions >= self._max_sessions_per_tick
            ):
                self.stats.sessions_spilled += 1
                self.stats.slices_spilled += len(pending)
                continue
            keys: list[SliceKey] = []
            new_slices: dict[SliceKey, tuple[FetchRequest, int]] = {}
            tentative = dict(per_server_count)
            admit = True
            for request in pending:
                key: SliceKey = (
                    request.principal,
                    request.list_id,
                    request.offset,
                    request.count,
                )
                keys.append(key)
                if key in new_slices:
                    held, server_index = new_slices[key]
                    new_slices[key] = (self._merge_floor(held, request), server_index)
                    continue
                if key in plan.unique:
                    slice_id, held, server_index = plan.unique[key]
                    plan.unique[key] = (
                        slice_id,
                        self._merge_floor(held, request),
                        server_index,
                    )
                    continue
                server_index = self._cluster.route(request.list_id)
                new_slices[key] = (request, server_index)
                if self._max_slices_per_envelope is not None:
                    tentative[server_index] = tentative.get(server_index, 0) + 1
                    if (
                        tentative[server_index] > self._max_slices_per_envelope
                        and per_server_count.get(server_index, 0) > 0
                    ):
                        # The envelope already carries other sessions'
                        # slices; this one waits its turn.  (An oversized
                        # session alone on an empty envelope is admitted
                        # above — it cannot be split.)
                        admit = False
                        break
            if not admit:
                self.stats.sessions_spilled += 1
                self.stats.slices_spilled += len(pending)
                continue
            for key, (request, server_index) in new_slices.items():
                plan.unique[key] = (next_slice_id, request, server_index)
                next_slice_id += 1
                per_server_count[server_index] = (
                    per_server_count.get(server_index, 0) + 1
                )
            self.stats.slices_requested += len(keys)
            plan.session_keys.append((session, keys))
            admitted_sessions += 1
        return plan

    @staticmethod
    def _merge_floor(held: FetchRequest, request: FetchRequest) -> FetchRequest:
        """Raise a deduplicated slice's session floor to cover both wanters."""
        if (request.min_version or 0) > (held.min_version or 0):
            return dataclass_replace(held, min_version=request.min_version)
        return held

    def _dispatch(
        self, plan: _TickPlan, trace_ctx: int | None = None
    ) -> dict[int, FetchResponse]:
        """Send one envelope per touched server (routes fixed at gather).

        An envelope the cluster rejects with
        :class:`~repro.errors.StaleEpochError` — a failover election or an
        externally triggered rebalance bumped the placement epoch between
        routing and delivery — is not an error for its sessions: the
        rejected slices are re-routed under the now-current placement and
        re-sent, so an epoch bump costs the affected slices one extra
        envelope instead of failing the whole tick.
        """
        entries = list(plan.unique.values())
        by_slice_id: dict[int, FetchResponse] = {}
        attempts = 0
        while entries:
            attempts += 1
            if attempts > 16:
                raise ProtocolError(
                    "placement epoch kept moving during dispatch; giving up "
                    f"with {len(entries)} slice(s) undelivered"
                )
            epoch = self._cluster.placement_epoch
            per_server: dict[int, dict[str, list[tuple[int, FetchRequest]]]] = {}
            for slice_id, request, server_index in entries:
                per_server.setdefault(server_index, {}).setdefault(
                    request.principal, []
                ).append((slice_id, request))
            retry: list[tuple[int, FetchRequest, int]] = []
            for server_index in sorted(per_server):
                by_principal = per_server[server_index]
                batches = []
                slice_ids: list[int] = []
                for principal in sorted(by_principal):
                    slices = by_principal[principal]
                    batches.append(
                        BatchFetchRequest(
                            principal=principal,
                            requests=tuple(request for _, request in slices),
                        )
                    )
                    slice_ids.extend(slice_id for slice_id, _ in slices)
                envelope = CoalescedBatchRequest(
                    batches=tuple(batches),
                    slice_ids=tuple(slice_ids),
                    epoch=epoch,
                    trace_id=trace_ctx,
                )
                with self._obs.tracer.span(
                    "envelope",
                    trace=trace_ctx,
                    server=server_index,
                    slices=len(envelope),
                ) as span:
                    try:
                        response = self._cluster.serve_envelope(
                            server_index, envelope
                        )
                    except StaleEpochError:
                        span.annotate(rerouted=True)
                        self.stats.stale_epoch_reroutes += 1
                        retry.extend(
                            (
                                slice_id,
                                request,
                                self._cluster.route(request.list_id),
                            )
                            for principal in sorted(by_principal)
                            for slice_id, request in by_principal[principal]
                        )
                        continue
                by_slice_id.update(response.by_slice_id())
                self._obs.envelope_slices.observe(float(len(envelope)))
                self.stats.server_calls += 1
                self.stats.slices_sent += len(envelope)
            entries = retry
        return by_slice_id

    def _demultiplex(
        self, plan: _TickPlan, by_slice_id: dict[int, FetchResponse]
    ) -> None:
        """Fan every slice response out to all sessions that wanted it."""
        for session, keys in plan.session_keys:
            responses = tuple(
                by_slice_id[plan.unique[key][0]] for key in keys
            )
            session.deliver(responses)
            if session.done:
                self.stats.sessions_completed += 1
                self._obs.session_rounds.observe(float(session.rounds))

    def run_until_complete(self) -> int:
        """Tick until every submitted session is done; returns ticks run."""
        ticks = 0
        while self.tick():
            ticks += 1
        return ticks

    def run_queries(
        self,
        jobs: Sequence[tuple[ZerberRClient, Sequence[str], int]],
        policy: ResponsePolicy | None = None,
        max_requests: int = 64,
    ) -> list[MultiQueryResult]:
        """Serve ``(client, terms, k)`` jobs concurrently; results in order."""
        if self.active_sessions:
            raise ProtocolError("coordinator already has sessions in flight")
        # Open every session before submitting any: a bad job (unknown
        # term, invalid k) must fail the whole call without leaving
        # earlier jobs parked, which would wedge later run_queries calls.
        sessions = [
            client.open_multi_session(
                terms, k, policy=policy, max_requests=max_requests
            )
            for client, terms, k in jobs
        ]
        for session in sessions:
            self.submit(session)
        try:
            self.run_until_complete()
        except BaseException:
            # A mid-run failure (e.g. every replica of a list down) must
            # not park these sessions forever and wedge the coordinator.
            for session in sessions:
                self.evict(session)
            raise
        return [session.result() for session in sessions]

    # -- placement ---------------------------------------------------------------

    def rebalance(self) -> dict[int, tuple[int, ...]]:
        """Trigger heat-driven shard rebalancing between ticks.

        Safe at any tick boundary: the next tick routes from the updated
        placement table under the bumped epoch, and session state (offsets
        into readable sub-lists) is placement-independent, so in-flight
        queries continue with identical results.
        """
        moves = self._cluster.rebalance()
        if moves:
            self.stats.rebalances += 1
            self.stats.lists_migrated += len(moves)
        return moves
