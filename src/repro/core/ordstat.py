"""Positional order-statistic list: an indexable skip list.

The readable views of :mod:`repro.core.views` need a sequence that is
simultaneously *sorted* (patches locate their position by sort key) and
*positional* (fetches slice it by ``(offset, count)``).  A plain Python
list does the key search in O(log n) via ``bisect`` but pays an O(n)
memmove per insert/delete; at paper-scale head lists that tail shift is
the patch cost.

:class:`OrderStatList` is a skip list whose forward links carry *widths*
(the number of level-0 hops they skip), following the classic indexable
skip-list design (Pugh's lists + order-statistic ranks).  That makes all
four operations logarithmic:

* ``insert(key, value)`` — O(log n), lands *after* existing equal keys
  (``bisect_right`` semantics, matching
  ``MergedPostingList.add_sorted_by_trs``);
* ``pop(position)`` — O(log n) positional delete;
* ``slice(start, count)`` — O(log n + count): descend by widths to
  *start*, then walk ``count`` level-0 links;
* ``bisect_left/right(key)`` — O(log n) rank queries.

Tower heights are drawn from a private seeded RNG so behaviour is
deterministic across runs; :meth:`from_sorted` bulk-builds in O(n) by
linking each new node behind per-level tail pointers.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Iterator
from typing import Any

_MAX_LEVEL = 24  # comfortably supports ~2**24 elements
_DEFAULT_SEED = 0x5EED


class _Node:
    __slots__ = ("key", "value", "next", "width")

    def __init__(self, key: Any, value: Any, level: int) -> None:
        self.key = key
        self.value = value
        self.next: list[_Node | None] = [None] * level
        self.width: list[int] = [0] * level


class OrderStatList:
    """Sorted, positionally-indexable container of ``(key, value)`` pairs."""

    __slots__ = ("_head", "_size", "_rng")

    def __init__(self, seed: int = _DEFAULT_SEED) -> None:
        self._rng = random.Random(seed)
        # Head widths span to the virtual end: position(end) - position(head)
        # with the head at position 0 and element i at position i + 1.
        self._head = _Node(None, None, _MAX_LEVEL)
        self._head.width = [1] * _MAX_LEVEL
        self._size = 0

    @classmethod
    def from_sorted(
        cls, items: Iterable[tuple[Any, Any]], seed: int = _DEFAULT_SEED
    ) -> "OrderStatList":
        """Bulk-build from key-sorted ``(key, value)`` pairs in O(n).

        The caller vouches for the ordering (views build from an already
        TRS-sorted merged list); ties keep their input order, matching a
        sequence of bisect-right inserts.
        """
        self = cls(seed=seed)
        head = self._head
        tails: list[_Node] = [head] * _MAX_LEVEL
        tail_pos = [0] * _MAX_LEVEL
        random_level = self._random_level
        position = 0
        for key, value in items:
            position += 1
            level = random_level()
            node = _Node(key, value, level)
            for i in range(level):
                prev = tails[i]
                prev.next[i] = node
                prev.width[i] = position - tail_pos[i]
                tails[i] = node
                tail_pos[i] = position
        self._size = position
        end = position + 1
        for i in range(_MAX_LEVEL):
            tails[i].width[i] = end - tail_pos[i]
        return self

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < 0.5:
            level += 1
        return level

    def __len__(self) -> int:
        return self._size

    # -- key-ordered writes ----------------------------------------------------

    def insert(self, key: Any, value: Any) -> int:
        """Insert keeping key order, *after* existing equal keys.

        Returns the insertion position (``bisect_right`` of *key* before
        the insert).
        """
        chain: list[_Node] = [self._head] * _MAX_LEVEL
        steps_at_level = [0] * _MAX_LEVEL
        node = self._head
        for level in reversed(range(_MAX_LEVEL)):
            nxt = node.next[level]
            while nxt is not None and nxt.key <= key:
                steps_at_level[level] += node.width[level]
                node = nxt
                nxt = node.next[level]
            chain[level] = node
        position = sum(steps_at_level)
        new_level = self._random_level()
        new_node = _Node(key, value, new_level)
        steps = 0
        for level in range(new_level):
            prev = chain[level]
            new_node.next[level] = prev.next[level]
            prev.next[level] = new_node
            new_node.width[level] = prev.width[level] - steps
            prev.width[level] = steps + 1
            steps += steps_at_level[level]
        for level in range(new_level, _MAX_LEVEL):
            chain[level].width[level] += 1
        self._size += 1
        return position

    def pop(self, position: int) -> Any:
        """Remove and return the value at *position* (0-based)."""
        if not 0 <= position < self._size:
            raise IndexError("pop position out of range")
        target = position + 1  # node positions are 1-based past the head
        chain: list[_Node] = [self._head] * _MAX_LEVEL
        node = self._head
        pos = 0
        for level in reversed(range(_MAX_LEVEL)):
            while pos + node.width[level] < target:
                pos += node.width[level]
                node = node.next[level]  # type: ignore[assignment]
            chain[level] = node
        victim = chain[0].next[0]
        assert victim is not None
        victim_level = len(victim.next)
        for level in range(_MAX_LEVEL):
            prev = chain[level]
            if level < victim_level and prev.next[level] is victim:
                prev.width[level] += victim.width[level] - 1
                prev.next[level] = victim.next[level]
            else:
                prev.width[level] -= 1
        self._size -= 1
        return victim.value

    # -- positional reads ------------------------------------------------------

    def __getitem__(self, position: int) -> Any:
        if not 0 <= position < self._size:
            raise IndexError("position out of range")
        node = self._head
        remaining = position + 1
        for level in reversed(range(_MAX_LEVEL)):
            while node.width[level] <= remaining:
                remaining -= node.width[level]
                node = node.next[level]  # type: ignore[assignment]
        return node.value

    def slice(self, start: int, count: int) -> list[Any]:
        """Values at positions ``[start, start + count)`` — O(log n + count).

        Out-of-range spans clamp like Python list slicing (no errors, a
        short or empty result instead).
        """
        if start < 0 or count < 0:
            raise ValueError("start and count must be non-negative")
        if start >= self._size or count == 0:
            return []
        node = self._head
        remaining = start + 1
        for level in reversed(range(_MAX_LEVEL)):
            while node.width[level] <= remaining:
                remaining -= node.width[level]
                node = node.next[level]  # type: ignore[assignment]
        out = []
        append = out.append
        walker: _Node | None = node
        for _ in range(min(count, self._size - start)):
            assert walker is not None
            append(walker.value)
            walker = walker.next[0]
        return out

    def __iter__(self) -> Iterator[Any]:
        """All values in order (O(n); not for the fetch hot path)."""
        node = self._head.next[0]
        while node is not None:
            yield node.value
            node = node.next[0]

    def keys(self) -> Iterator[Any]:
        """All keys in order (O(n); diagnostics and tests)."""
        node = self._head.next[0]
        while node is not None:
            yield node.key
            node = node.next[0]

    # -- rank queries ----------------------------------------------------------

    def bisect_left(self, key: Any) -> int:
        """Number of elements with a key strictly smaller than *key*."""
        node = self._head
        rank = 0
        for level in reversed(range(_MAX_LEVEL)):
            nxt = node.next[level]
            while nxt is not None and nxt.key < key:
                rank += node.width[level]
                node = nxt
                nxt = node.next[level]
        return rank

    def bisect_right(self, key: Any) -> int:
        """Number of elements with a key smaller than or equal to *key*."""
        node = self._head
        rank = 0
        for level in reversed(range(_MAX_LEVEL)):
            nxt = node.next[level]
            while nxt is not None and nxt.key <= key:
                rank += node.width[level]
                node = nxt
                nxt = node.next[level]
        return rank
