"""r-confidentiality definitions and audits (paper §3.1, Def. 1 & 2).

Def. 1 bounds an adversary's probability amplification about facts "term t
is in document d": ``P(X | I, B) / P(X | B) <= r``.  For a merged index the
operative consequence is Def. 2: within a merged list with term set ``S``,
the best attribution probability of an element to a term t is
``p_t / sum(p_s for s in S)``, an amplification of ``1 / sum(p_s)`` over the
prior ``p_t`` — hence the requirement ``sum(p_s) >= 1/r``.

This module provides the audit machinery used by tests, benchmarks and the
system facade's safety checks.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.errors import ConfidentialityViolationError
from repro.index.merge import MergePlan


def probability_amplification(prior: float, posterior: float) -> float:
    """The Def. 1 ratio ``P(X|I,B) / P(X|B)``."""
    if not 0.0 < prior <= 1.0:
        raise ValueError("prior must be in (0, 1]")
    if not 0.0 <= posterior <= 1.0:
        raise ValueError("posterior must be in [0, 1]")
    return posterior / prior


def attribution_probabilities(
    terms: Sequence[str], probabilities: Mapping[str, float]
) -> dict[str, float]:
    """Adversary's best per-term attribution posterior within a merged list.

    Posting elements are randomly placed / TRS-uniformised, so position and
    score carry no signal; the best the adversary can do is proportional
    attribution by prior: ``P(element is t) = p_t / sum_S p``.
    """
    mass = sum(probabilities[t] for t in terms)
    if mass <= 0:
        raise ValueError("term probability mass must be positive")
    return {t: probabilities[t] / mass for t in terms}


@dataclass(frozen=True)
class ConfidentialityAudit:
    """Outcome of auditing a merge plan against Def. 2.

    Attributes
    ----------
    per_list_amplification:
        ``amplification[i]`` = ``1 / sum(p_t for t in list i)`` — the worst
        Def. 1 ratio achievable against any term of list ``i``.
    r:
        The bound the plan claims.
    """

    per_list_amplification: tuple[float, ...]
    r: float

    @property
    def max_amplification(self) -> float:
        return max(self.per_list_amplification)

    @property
    def is_confidential(self) -> bool:
        """Whether every merged list respects the r bound."""
        return self.max_amplification <= self.r + 1e-12

    def violating_lists(self) -> list[int]:
        """Ids of lists whose amplification exceeds r."""
        return [
            i
            for i, amp in enumerate(self.per_list_amplification)
            if amp > self.r + 1e-12
        ]


def audit_merge_plan(
    plan: MergePlan, probabilities: Mapping[str, float]
) -> ConfidentialityAudit:
    """Compute the per-list amplification of *plan* under corpus statistics."""
    amplifications = []
    for group in plan.groups:
        mass = sum(probabilities[t] for t in group)
        if mass <= 0:
            raise ValueError("merged list has zero probability mass")
        amplifications.append(1.0 / mass)
    return ConfidentialityAudit(
        per_list_amplification=tuple(amplifications), r=plan.r
    )


def require_r_confidential(
    plan: MergePlan, probabilities: Mapping[str, float]
) -> None:
    """Raise :class:`ConfidentialityViolationError` if the plan violates r."""
    audit = audit_merge_plan(plan, probabilities)
    if not audit.is_confidential:
        bad = audit.violating_lists()
        raise ConfidentialityViolationError(
            f"merge plan violates r={plan.r}: lists {bad[:10]} amplify up to "
            f"{audit.max_amplification:.3f}"
        )
