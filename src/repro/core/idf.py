"""Bucketed IDF — the paper's future-work extension, implemented.

Paper §3.2: exact global IDF "leaks critical statistical data about
inaccessible documents", so Zerber+R drops it and accepts degraded
multi-term accuracy; "inclusion of collection-wide statistics such as IDF
is a topic for future work."

This module implements the natural middle ground: IDF **quantized into a
small number of public buckets**, computed once at index initialisation
from the same training sample as the RSTF, with optional noise on the
document frequencies before bucketing.  The defender controls leakage
directly — publishing the bucket of a term reveals at most
``log2(num_buckets)`` bits about its document frequency, versus the full
df that exact IDF exposes — while multi-term queries recover most of the
selectivity weighting that Eq. 3 provides.

The trade-off is measured in ``tests/test_core_idf.py`` and the
``bench_ext_idf_buckets.py`` ablation: accuracy against the TFxIDF
reference improves monotonically with bucket count, and so does leakage.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping

import numpy as np

from repro.errors import ConfigurationError, TrainingError
from repro.text.analysis import DocumentStats
from repro.text.vocabulary import Vocabulary


class BucketedIdf:
    """Public coarse-grained IDF weights.

    Attributes
    ----------
    num_buckets:
        Quantisation resolution; leakage is bounded by ``log2`` of it.
    """

    def __init__(
        self,
        buckets: Mapping[str, int],
        weights: Mapping[int, float],
        num_buckets: int,
    ) -> None:
        if num_buckets < 1:
            raise ConfigurationError("num_buckets must be >= 1")
        for term, bucket in buckets.items():
            if not 0 <= bucket < num_buckets:
                raise ConfigurationError(
                    f"bucket of {term!r} out of range: {bucket}"
                )
        self._buckets = dict(buckets)
        self._weights = dict(weights)
        self.num_buckets = num_buckets

    # -- construction ----------------------------------------------------------

    @classmethod
    def train(
        cls,
        documents: Iterable[DocumentStats],
        num_buckets: int = 4,
        noise_scale: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> "BucketedIdf":
        """Quantise training-set IDF into *num_buckets* equal-width levels.

        ``noise_scale`` adds Laplace noise to each df before computing the
        IDF (a DP-flavoured knob; 0 disables it).  Bucket weights are the
        mean exact IDF of the bucket's terms — a representative the client
        multiplies scores by.
        """
        if num_buckets < 1:
            raise ConfigurationError("num_buckets must be >= 1")
        if noise_scale < 0:
            raise ConfigurationError("noise_scale must be >= 0")
        vocabulary = Vocabulary.from_documents(documents)
        if vocabulary.num_terms == 0:
            raise TrainingError("no terms in the IDF training sample")
        # A fixed default seed keeps repro.core replayable (determinism
        # contract); callers wanting varied noise pass their own rng.
        rng = rng if rng is not None else np.random.default_rng(0)
        n = vocabulary.num_documents

        idfs: dict[str, float] = {}
        for term in vocabulary:
            df = vocabulary.document_frequency(term)
            if noise_scale > 0:
                df = df + float(rng.laplace(0.0, noise_scale))
            df = min(max(df, 1.0), float(n))
            idfs[term] = math.log(n / df)

        low = min(idfs.values())
        high = max(idfs.values())
        span = max(high - low, 1e-12)
        buckets: dict[str, int] = {}
        members: dict[int, list[float]] = {}
        for term, idf in idfs.items():
            bucket = min(int((idf - low) / span * num_buckets), num_buckets - 1)
            buckets[term] = bucket
            members.setdefault(bucket, []).append(idf)
        weights = {
            bucket: float(np.mean(values)) for bucket, values in members.items()
        }
        # Empty buckets get the linear interpolant so weight() is total.
        for bucket in range(num_buckets):
            if bucket not in weights:
                weights[bucket] = low + (bucket + 0.5) / num_buckets * span
        return cls(buckets=buckets, weights=weights, num_buckets=num_buckets)

    # -- lookup -------------------------------------------------------------------

    def bucket(self, term: str) -> int:
        """The published bucket of *term*; unseen terms get the top bucket
        (training-unseen terms "are assumed to be rare", hence selective)."""
        return self._buckets.get(term, self.num_buckets - 1)

    def weight(self, term: str) -> float:
        """The representative IDF weight the client multiplies by."""
        return self._weights[self.bucket(term)]

    def terms(self) -> set[str]:
        return set(self._buckets)

    # -- leakage accounting ----------------------------------------------------------

    def leakage_bits(self) -> float:
        """Worst-case df information published per term: log2(#buckets).

        Exact IDF publishes the full df (log2(N) bits for an N-document
        collection); one bucket publishes nothing.
        """
        return math.log2(self.num_buckets)

    def empirical_leakage_bits(self) -> float:
        """Entropy of the realised bucket distribution (<= worst case)."""
        counts = np.bincount(
            [self._buckets[t] for t in self._buckets], minlength=self.num_buckets
        ).astype(float)
        probs = counts[counts > 0] / counts.sum()
        return float(-(probs * np.log2(probs)).sum())


def aggregate_with_idf(
    per_term_hits: Mapping[str, Iterable], idf: BucketedIdf | None
) -> list[tuple[str, float]]:
    """Combine single-term results into a multi-term ranking.

    *per_term_hits* maps each query term to its hits (objects with
    ``doc_id`` and ``rscore``).  With ``idf=None`` this is the paper's
    plain summation; with a :class:`BucketedIdf` each term's scores are
    weighted by its public bucket weight (the Eq. 3 shape, coarse IDF).
    """
    scores: dict[str, float] = {}
    for term, hits in per_term_hits.items():
        factor = idf.weight(term) if idf is not None else 1.0
        for hit in hits:
            scores[hit.doc_id] = scores.get(hit.doc_id, 0.0) + hit.rscore * factor
    return sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
