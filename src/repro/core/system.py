"""End-to-end Zerber+R system assembly (the paper's two-phase pipeline).

Offline pre-computing phase (paper §5): sample a training set from the
corpus, train and publish one RSTF per training term, build the
r-confidential merge plan from (public) document-frequency statistics, and
stand up the key service and the untrusted index server.

Online phase: each document's owning group encrypts and uploads its posting
elements; registered users run top-k queries through
:class:`~repro.core.client.ZerberRClient`.

:class:`ZerberRSystem` packages all of that behind one constructor so
examples, tests and benchmarks share a single, correct assembly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.client import QueryResult, ZerberRClient
from repro.core.cluster import ServerCluster
from repro.core.confidentiality import ConfidentialityAudit, audit_merge_plan
from repro.core.placement import PlacementPolicy, ReadSelector
from repro.core.replication import LagModel, ReadConsistency, WriteConsistency
from repro.core.protocol import ResponsePolicy
from repro.core.router import Coordinator
from repro.core.rstf import RstfModel, RstfTrainer, TrainerConfig
from repro.core.server import ZerberRServer
from repro.corpus.documents import Corpus
from repro.crypto.keys import GroupKeyService
from repro.errors import ConfigurationError
from repro.index.merge import MergePlan, bfm_merge, greedy_pairing_merge, random_merge
from repro.obs import ClusterMonitor, Telemetry
from repro.text.vocabulary import Vocabulary

MERGE_SCHEMES = ("bfm", "random", "greedy")


@dataclass(frozen=True)
class SystemConfig:
    """Assembly parameters.

    Attributes
    ----------
    r:
        Confidentiality parameter (Def. 1/2); must be > 1.
    training_fraction:
        Fraction of the corpus sampled as the RSTF training set (paper
        §6.1.2: 30%).
    merge_scheme:
        ``"bfm"`` (the paper's choice), ``"random"`` or ``"greedy"``
        (ablations, see :mod:`repro.index.merge`).
    trainer:
        RSTF training policy; ``None`` selects the heuristic-σ strategy,
        which is fast enough for whole-corpus training (the CV strategy
        reproduces Fig. 9 but costs a σ sweep per term).
    seed:
        Seed for training-set sampling and the random merge scheme.
    """

    r: float = 4.0
    training_fraction: float = 0.30
    merge_scheme: str = "bfm"
    trainer: TrainerConfig | None = None
    seed: int = 41

    def __post_init__(self) -> None:
        if self.r <= 1.0:
            raise ConfigurationError("r must be > 1")
        if not 0.0 < self.training_fraction <= 1.0:
            raise ConfigurationError("training_fraction must be in (0, 1]")
        if self.merge_scheme not in MERGE_SCHEMES:
            raise ConfigurationError(f"merge_scheme must be one of {MERGE_SCHEMES}")


class ZerberRSystem:
    """A fully assembled Zerber+R deployment over one corpus."""

    def __init__(
        self,
        corpus: Corpus,
        vocabulary: Vocabulary,
        merge_plan: MergePlan,
        rstf_model: RstfModel,
        key_service: GroupKeyService,
        server: ZerberRServer,
        config: SystemConfig,
    ) -> None:
        self.corpus = corpus
        self.vocabulary = vocabulary
        self.merge_plan = merge_plan
        self.rstf_model = rstf_model
        self.key_service = key_service
        self.server = server
        self.config = config
        # (principal, backend id) -> client.
        self._clients: dict[tuple[str, int | None], ZerberRClient] = {}

    # -- assembly ---------------------------------------------------------------

    @classmethod
    def build(
        cls,
        corpus: Corpus,
        config: SystemConfig | None = None,
        key_service: GroupKeyService | None = None,
    ) -> "ZerberRSystem":
        """Run the offline phase and index the whole corpus.

        Each document is uploaded by a per-group owner principal (the
        collaboration-group member who shares it); a ``superuser`` principal
        enrolled in every group is registered for whole-collection query
        experiments (paper §6.6 assumes such a user).

        Pass *key_service* to use externally managed group keys (e.g. the
        CLI derives them from a user-supplied secret so a later process
        can decrypt the persisted index).
        """
        if len(corpus) == 0:
            raise ConfigurationError("corpus is empty")
        config = config if config is not None else SystemConfig()
        rng = np.random.default_rng(config.seed)

        stats = corpus.all_stats()
        vocabulary = Vocabulary.from_documents(stats)
        probabilities = {
            term: vocabulary.probability(term) for term in vocabulary
        }
        merge_plan = cls._build_merge_plan(probabilities, config, rng)

        trainer_config = (
            config.trainer
            if config.trainer is not None
            else TrainerConfig(sigma_strategy="heuristic")
        )
        training_docs = corpus.sample(config.training_fraction, rng)
        trainer = RstfTrainer(trainer_config)
        rstf_model = trainer.train_from_documents(
            corpus.stats(doc.doc_id) for doc in training_docs
        )

        if key_service is None:
            key_service = GroupKeyService()
        for group in sorted(corpus.groups()):
            key_service.ensure_group(group)
        # Check every group, not an arbitrary one: a pre-seeded key service
        # may have enrolled the superuser in some groups but not others.
        missing = sorted(
            group
            for group in corpus.groups()
            if not key_service.is_member("superuser", group)
        )
        if missing:
            try:
                key_service.register("superuser", set(missing))
            except ConfigurationError:
                for group in missing:
                    key_service.enroll("superuser", group)

        server = ZerberRServer(key_service, num_lists=merge_plan.num_lists)
        system = cls(
            corpus=corpus,
            vocabulary=vocabulary,
            merge_plan=merge_plan,
            rstf_model=rstf_model,
            key_service=key_service,
            server=server,
            config=config,
        )
        system._index_corpus()
        return system

    @staticmethod
    def _build_merge_plan(
        probabilities: dict[str, float],
        config: SystemConfig,
        rng: np.random.Generator,
    ) -> MergePlan:
        if config.merge_scheme == "bfm":
            return bfm_merge(probabilities, config.r)
        if config.merge_scheme == "random":
            return random_merge(probabilities, config.r, rng=rng)
        return greedy_pairing_merge(probabilities, config.r)

    def _index_corpus(self, backend: ZerberRServer | ServerCluster | None = None) -> None:
        """Online insertion phase: per-group owners encrypt and upload.

        *backend* is any object with the server bulk-load surface; it
        defaults to this system's single server and lets
        :meth:`deploy_cluster` re-index the same corpus into a
        :class:`~repro.core.cluster.ServerCluster`.
        """
        backend = backend if backend is not None else self.server
        for group in sorted(self.corpus.groups()):
            owner = f"owner:{group}"
            try:
                self.key_service.register(owner, {group})
            except ConfigurationError:
                self.key_service.enroll(owner, group)
        for group in sorted(self.corpus.groups()):
            owner = f"owner:{group}"
            client = self.client_for(owner)
            items = []
            for doc in self.corpus.documents_in_group(group):
                doc_stats = self.corpus.stats(doc.doc_id)
                for term in sorted(doc_stats.counts):
                    items.append(client.build_element(term, doc_stats, group))
            backend.bulk_load(owner, items)

    # -- principals and clients -----------------------------------------------------

    def register_user(self, name: str, groups: set[str]) -> ZerberRClient:
        """Register a new principal and return its client."""
        self.key_service.register(name, groups)
        return self.client_for(name)

    def client_for(
        self, principal: str, server: ZerberRServer | ServerCluster | None = None
    ) -> ZerberRClient:
        """A (cached) client bound to *principal*.

        Without *server*, the client talks to this system's own server;
        with *server* — e.g. a :class:`~repro.core.cluster.ServerCluster`
        deployed via :meth:`deploy_cluster` — to that backend.  Clients
        are cached per ``(principal, backend)`` for object identity and
        to avoid re-deriving key material; nonce safety does NOT depend
        on the cache — the shared key service owns one
        :class:`~repro.crypto.cipher.NonceSequence` per (principal,
        group), so even independently constructed clients continue one
        counter stream.
        """
        cache_key = (principal, None if server is None else id(server))
        client = self._clients.get(cache_key)
        if client is None:
            client = ZerberRClient(
                principal=principal,
                key_service=self.key_service,
                server=self.server if server is None else server,
                rstf_model=self.rstf_model,
                merge_plan=self.merge_plan,
            )
            self._clients[cache_key] = client
        return client

    def deploy_cluster(
        self,
        num_servers: int,
        replication: int = 1,
        placement: PlacementPolicy | None = None,
        rebalance_every: int | None = None,
        lag: LagModel | int | None = None,
        read_consistency: ReadConsistency | str | None = None,
        read_strategy: ReadSelector | str | None = None,
        anti_entropy_every: int | None = None,
        max_slices_per_envelope: int | None = None,
        max_sessions_per_tick: int | None = None,
        write_consistency: WriteConsistency | str | None = None,
        failover_after: int | None = None,
        telemetry: Telemetry | None = None,
        monitor_every: int | None = None,
        monitor_window: int = 64,
        round_latency: int = 0,
        max_queue_depth: int | None = None,
        credits_per_principal: int | None = None,
    ) -> tuple[ServerCluster, Coordinator]:
        """Stand up a sharded deployment of this system's index.

        Builds a :class:`~repro.core.cluster.ServerCluster` over the same
        key service and merge plan, re-indexes the corpus into it through
        the per-group owners, and fronts it with a
        :class:`~repro.core.router.Coordinator` for cross-query slice
        coalescing.  Query it either directly
        (``system.client_for(p, server=cluster)``) or through coordinator
        sessions — results are identical.

        *lag*, *read_consistency*, *read_strategy*,
        *anti_entropy_every*, *write_consistency* and *failover_after*
        configure the replication subsystem (see
        :mod:`repro.core.replication` and
        :meth:`~repro.core.cluster.ServerCluster.check_failovers`); the
        defaults — zero lag, strong ``PRIMARY`` reads, ``ONE`` writes,
        primary-only routing, no failover election — reproduce the
        synchronous seed behaviour byte-for-byte.
        ``max_slices_per_envelope`` / ``max_sessions_per_tick`` are the
        coordinator's per-round spill caps; ``max_queue_depth`` /
        ``credits_per_principal`` are its admission backpressure bounds,
        and ``round_latency`` defers skim delivery to pipeline rounds
        (see :mod:`repro.core.router` — the zero defaults keep the
        lockstep-identical path).

        *telemetry* (see :mod:`repro.obs`) instruments every layer of the
        deployment — coordinator, cluster read/write paths, replication,
        views, clients obtained via ``client_for(p, server=cluster)`` —
        and *monitor_every* additionally attaches a
        :class:`~repro.obs.ClusterMonitor` sampling heat/load/backlog
        every that many replication ticks into a *monitor_window*-sample
        window.  Both default to off: an uninstrumented deployment runs
        the seed code paths with shared no-op instruments.
        """
        if monitor_every is not None and telemetry is None:
            raise ConfigurationError(
                "monitor_every requires telemetry to record samples into"
            )
        cluster = ServerCluster(
            self.key_service,
            num_lists=self.merge_plan.num_lists,
            num_servers=num_servers,
            replication=replication,
            placement=placement,
            lag=lag,
            read_consistency=read_consistency,
            read_strategy=read_strategy,
            anti_entropy_every=anti_entropy_every,
            write_consistency=write_consistency,
            failover_after=failover_after,
            telemetry=telemetry,
        )
        if monitor_every is not None and telemetry is not None:
            cluster.attach_monitor(
                ClusterMonitor(
                    telemetry, every=monitor_every, window=monitor_window
                )
            )
        self._index_corpus(backend=cluster)
        return cluster, Coordinator(
            cluster,
            rebalance_every=rebalance_every,
            max_slices_per_envelope=max_slices_per_envelope,
            max_sessions_per_tick=max_sessions_per_tick,
            round_latency=round_latency,
            max_queue_depth=max_queue_depth,
            credits_per_principal=credits_per_principal,
        )

    # -- durability (see repro.persist) ------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the single-server index plus public setup artifacts."""
        from repro.persist import save_index

        save_index(path, self.server, self.merge_plan, self.rstf_model)

    def snapshot_cluster(
        self, path: str | Path, cluster: ServerCluster, spill_views: int | None = None
    ) -> None:
        """Snapshot a deployed cluster (lists, logs, placement, hot views).

        The snapshot is crash-consistent with whatever the cluster has
        *acknowledged* at call time: in-flight follower backlogs are
        captured in the replication logs and survive a restart.
        *spill_views* defaults to :data:`repro.persist.DEFAULT_VIEW_SPILL`.
        """
        from repro.persist import DEFAULT_VIEW_SPILL, save_cluster

        save_cluster(
            path,
            cluster,
            self.merge_plan,
            self.rstf_model,
            spill_views=DEFAULT_VIEW_SPILL if spill_views is None else spill_views,
        )

    def restore_cluster(
        self,
        path: str | Path,
        placement: PlacementPolicy | None = None,
        read_strategy: ReadSelector | str | None = None,
        rebalance_every: int | None = None,
        max_slices_per_envelope: int | None = None,
        max_sessions_per_tick: int | None = None,
        telemetry: Telemetry | None = None,
        monitor_every: int | None = None,
        monitor_window: int = 64,
        round_latency: int = 0,
        max_queue_depth: int | None = None,
        credits_per_principal: int | None = None,
    ) -> tuple[ServerCluster, Coordinator]:
        """Recover a snapshotted cluster deployment of *this* system.

        Unlike :meth:`deploy_cluster`, nothing is re-indexed: servers,
        replication logs, applied versions and placement come back from
        the snapshot, and lagged/paused followers resume converging
        through the normal catch-up machinery.  The snapshot must have
        been taken from a deployment of the same merge plan (the trusted
        setup artifacts are the compatibility contract).
        """
        from repro.persist import load_cluster

        if monitor_every is not None and telemetry is None:
            raise ConfigurationError(
                "monitor_every requires telemetry to record samples into"
            )
        cluster, merge_plan, _ = load_cluster(
            path,
            self.key_service,
            placement=placement,
            read_strategy=read_strategy,
            telemetry=telemetry,
        )
        if monitor_every is not None and telemetry is not None:
            cluster.attach_monitor(
                ClusterMonitor(
                    telemetry, every=monitor_every, window=monitor_window
                )
            )
        if merge_plan != self.merge_plan:
            raise ConfigurationError(
                f"{path}: snapshot was taken under a different merge plan; "
                "restore it through repro.persist.load_cluster instead"
            )
        return cluster, Coordinator(
            cluster,
            rebalance_every=rebalance_every,
            max_slices_per_envelope=max_slices_per_envelope,
            max_sessions_per_tick=max_sessions_per_tick,
            round_latency=round_latency,
            max_queue_depth=max_queue_depth,
            credits_per_principal=credits_per_principal,
        )

    # -- convenience -----------------------------------------------------------------

    def query(
        self,
        term: str,
        k: int,
        principal: str = "superuser",
        policy: ResponsePolicy | None = None,
    ) -> QueryResult:
        """Run one single-term top-k query as *principal*."""
        return self.client_for(principal).query(term, k, policy=policy)

    def audit(self) -> ConfidentialityAudit:
        """Def. 2 audit of the deployed merge plan under corpus statistics."""
        probabilities = {
            term: self.vocabulary.probability(term) for term in self.vocabulary
        }
        return audit_merge_plan(self.merge_plan, probabilities)

    def with_config(self, **overrides: Any) -> "ZerberRSystem":
        """Rebuild the system over the same corpus with config overrides."""
        return type(self).build(self.corpus, replace(self.config, **overrides))
