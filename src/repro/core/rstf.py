"""The Relevance Score Transformation Function (paper §4.2, §5.1).

An RSTF must (paper §4.2):

1. map the relevance scores of different terms to one common range ``R``;
2. distribute the transformed values (TRS) uniformly over ``R``;
3. preserve the order of the relevance score values.

Zerber+R builds it as the integral of a Gaussian-sum model of the term's
score density (Eq. 5–6), approximated in closed form by a sum of logistic
curves (Eq. 7–8)::

    RSTF(x) = (1/N) * sum_i  1 / (1 + exp(-sigma * (x - mu_i)))

with one ``mu_i`` per training score and σ the steepness (paper
convention: larger σ = narrower bell = more memorisation).

Terms absent from the training set "are assumed to be rare and can
therefore be assigned a random TRS" (§5.1.1); :class:`RstfModel` delegates
those to a caller-supplied keyed PRF so that independent inserting clients
assign the *same* pseudo-random TRS to the same term.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.core.scoring import extract_term_scores
from repro.core.sigma import heuristic_sigma, select_sigma, default_sigma_grid
from repro.errors import TrainingError
from repro.stats.crossval import train_control_split
from repro.stats.gaussian import gaussian_sum_cdf, logistic_sum_cdf
from repro.text.analysis import DocumentStats

VALID_KINDS = ("logistic", "erf")


@dataclass(frozen=True)
class Rstf:
    """One term's trained transformation function.

    Attributes
    ----------
    mus:
        Sorted training scores (the Gaussian/logistic centres μ_i).
    sigma:
        Steepness parameter σ.
    kind:
        ``"logistic"`` — the paper's Eq. 8 closed form (default);
        ``"erf"`` — the exact Gaussian integral of Eq. 6.
    """

    mus: tuple[float, ...]
    sigma: float
    kind: str = "logistic"

    def __post_init__(self) -> None:
        if not self.mus:
            raise TrainingError("RSTF requires at least one training score")
        if self.sigma <= 0:
            raise TrainingError("sigma must be positive")
        if self.kind not in VALID_KINDS:
            raise TrainingError(f"kind must be one of {VALID_KINDS}")
        if any(m < 0 for m in self.mus):
            raise TrainingError("relevance scores are non-negative")

    @classmethod
    def from_scores(
        cls, scores: Iterable[float], sigma: float, kind: str = "logistic"
    ) -> "Rstf":
        """Build from raw (unsorted) training scores."""
        return cls(mus=tuple(sorted(float(s) for s in scores)), sigma=sigma, kind=kind)

    @property
    def num_training_points(self) -> int:
        return len(self.mus)

    def transform(self, x: float | np.ndarray) -> float | np.ndarray:
        """TRS for score(s) *x*; accepts a scalar or an array.

        Output lies in (0, 1) and is strictly increasing in *x* (property 3
        of §4.2) because it is a positive mixture of increasing curves.
        """
        mus = np.asarray(self.mus)
        if self.kind == "logistic":
            result = logistic_sum_cdf(x, mus, self.sigma)
        else:
            result = gaussian_sum_cdf(x, mus, self.sigma)
        if np.ndim(x) == 0:
            return float(result)
        return np.asarray(result)

    def __call__(self, x: float | np.ndarray) -> float | np.ndarray:
        return self.transform(x)


def train_rstf(scores: Iterable[float], sigma: float, kind: str = "logistic") -> Rstf:
    """Train one term's RSTF with a fixed σ."""
    score_list = list(scores)
    if not score_list:
        raise TrainingError("cannot train an RSTF on an empty score set")
    return Rstf.from_scores(score_list, sigma=sigma, kind=kind)


class RstfModel:
    """The published per-term RSTF registry (paper §5: "Zerber+R
    initializes and publishes the RSTF for each term in the training
    document set").

    Unseen terms get ``None`` from :meth:`get`; :meth:`transform` instead
    accepts an ``unseen_trs`` callable (typically
    :meth:`repro.crypto.GroupKeyService.unseen_term_prf` composed with
    ``evaluate_unit``) implementing the paper's random-TRS rule.
    """

    def __init__(self, functions: Mapping[str, Rstf]) -> None:
        self._functions = dict(functions)

    @property
    def num_terms(self) -> int:
        return len(self._functions)

    def terms(self) -> set[str]:
        return set(self._functions)

    def get(self, term: str) -> Rstf | None:
        """The RSTF of *term*, or ``None`` if the term was not trained."""
        return self._functions.get(term)

    def __contains__(self, term: object) -> bool:
        return term in self._functions

    def transform(
        self,
        term: str,
        score: float,
        unseen_trs: Callable[[str], float] | None = None,
    ) -> float:
        """TRS of *score* for *term*.

        ``unseen_trs(term) -> float in [0,1]`` handles training-unseen terms;
        without it, unseen terms raise :class:`TrainingError` so silent
        misconfiguration cannot slip through.
        """
        rstf = self._functions.get(term)
        if rstf is not None:
            return float(rstf.transform(score))
        if unseen_trs is None:
            raise TrainingError(f"no RSTF trained for term {term!r}")
        trs = float(unseen_trs(term))
        if not 0.0 <= trs <= 1.0:
            raise TrainingError("unseen-term TRS must lie in [0, 1]")
        return trs


@dataclass(frozen=True)
class TrainerConfig:
    """RSTF training policy.

    Attributes
    ----------
    kind:
        Curve family (``"logistic"`` per Eq. 8, or ``"erf"``).
    sigma_strategy:
        ``"cv"`` — per-term cross-validated σ over ``sigma_grid`` (the
        paper's method, Fig. 9); ``"heuristic"`` — the direct spacing-based
        estimate (the paper's "future research" direction, see
        :func:`repro.core.sigma.heuristic_sigma`); ``"fixed"`` — use
        ``fixed_sigma`` for every term.
    sigma_grid:
        Candidate σ values for the CV strategy (``None`` = default grid).
    fixed_sigma:
        σ for the fixed strategy.
    min_cv_scores:
        Terms with fewer training scores than this fall back to the
        heuristic (cross-validation needs a meaningful control split).
    control_fraction:
        Fraction of each term's scores held out as the CV control set
        (paper §6.1.2: about one third).
    seed:
        Seed for the train/control split.
    """

    kind: str = "logistic"
    sigma_strategy: str = "cv"
    sigma_grid: tuple[float, ...] | None = None
    fixed_sigma: float = 100.0
    min_cv_scores: int = 6
    control_fraction: float = 1.0 / 3.0
    seed: int = 29

    def __post_init__(self) -> None:
        if self.kind not in VALID_KINDS:
            raise TrainingError(f"kind must be one of {VALID_KINDS}")
        if self.sigma_strategy not in ("cv", "heuristic", "fixed"):
            raise TrainingError("sigma_strategy must be cv|heuristic|fixed")
        if self.fixed_sigma <= 0:
            raise TrainingError("fixed_sigma must be positive")
        if self.min_cv_scores < 4:
            raise TrainingError("min_cv_scores must be >= 4")


class RstfTrainer:
    """Trains an :class:`RstfModel` from a training document sample."""

    def __init__(self, config: TrainerConfig | None = None) -> None:
        self.config = config if config is not None else TrainerConfig()

    def train_from_documents(self, documents: Iterable[DocumentStats]) -> RstfModel:
        """Offline pre-computing phase (paper §5): one RSTF per seen term."""
        return self.train_from_scores(extract_term_scores(documents))

    def train_from_scores(self, term_scores: Mapping[str, list[float]]) -> RstfModel:
        """Train from precomputed ``term -> scores`` (useful for tests)."""
        functions: dict[str, Rstf] = {}
        rng = np.random.default_rng(self.config.seed)
        for term in sorted(term_scores):
            scores = term_scores[term]
            if not scores:
                continue
            sigma = self._choose_sigma(scores, rng)
            functions[term] = Rstf.from_scores(scores, sigma=sigma, kind=self.config.kind)
        if not functions:
            raise TrainingError("training set produced no term scores")
        return RstfModel(functions)

    def _choose_sigma(self, scores: list[float], rng: np.random.Generator) -> float:
        cfg = self.config
        if cfg.sigma_strategy == "fixed":
            return cfg.fixed_sigma
        if cfg.sigma_strategy == "heuristic" or len(scores) < cfg.min_cv_scores:
            return heuristic_sigma(scores)
        train, control = train_control_split(
            scores, control_fraction=cfg.control_fraction, rng=rng
        )
        if not train or not control:
            return heuristic_sigma(scores)
        grid = cfg.sigma_grid if cfg.sigma_grid is not None else default_sigma_grid()
        selection = select_sigma(train, control, grid=grid, kind=cfg.kind)
        return selection.best_sigma
