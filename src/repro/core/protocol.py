"""Client/server wire protocol and the response-size policy (paper §5.2, §6.4).

The query interaction: the client authenticates, names a merged posting
list and a desired ``k``; the server returns the ``b`` highest-TRS elements
the client may read.  If, after decrypting and filtering, the client holds
fewer than ``k`` elements of the queried term, it issues follow-up
requests; "Zerber+R doubles response size for each follow-up request until
the user is satisfied with the result or obtains the whole list", so the
total after ``n`` follow-ups is (Eq. 12)::

    TRes = b * sum_{i=0..n} 2^i

:class:`ResponsePolicy` encodes the initial size and growth factor;
:class:`QueryTrace` records what a query session cost, feeding the Fig.
11–13 metrics.

Batched fetches: a multi-term query touches one merged list per term, and
issuing those slices as separate server calls pays one network round-trip
each.  :class:`BatchFetchRequest` bundles many :class:`FetchRequest`
slices (all from the same principal) into a single server call and
:class:`BatchFetchResponse` returns the per-slice
:class:`FetchResponse` replies in request order, so a client round of the
doubling protocol over *t* terms costs one round-trip instead of *t*.
:class:`BatchQueryTrace` accounts a batched multi-term session: it
distinguishes server *round-trips* (batched calls, the quantity a
latency-bound deployment cares about) from *sub-fetches* (slices served,
the quantity the Fig. 12 per-term statistics count).

Coalesced envelopes: a :class:`~repro.core.router.Coordinator` collects
the pending slices of *many* concurrent client sessions — potentially
different principals — and ships everything bound for one shard server as
a single :class:`CoalescedBatchRequest` per scheduling tick.  The
envelope nests one single-principal :class:`BatchFetchRequest` per
principal (the server still authenticates each one), carries a flat tuple
of coordinator-assigned *slice ids* so shared slices demultiplex back to
every requesting session, and pins the *placement epoch* it was routed
under so a concurrent shard migration cannot serve it from a stale route.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.errors import ProtocolError
from repro.index.postings import EncryptedPostingElement


@dataclass(frozen=True)
class ResponsePolicy:
    """Initial response size and follow-up growth (paper's doubling rule).

    ``initial_size`` is the paper's ``b`` (best choice: ``b = k``, §6.4);
    ``growth_factor`` is 2 in the paper; values > 1 generalise the ablation.
    """

    initial_size: int
    growth_factor: int = 2

    def __post_init__(self) -> None:
        if self.initial_size < 1:
            raise ProtocolError("initial response size must be >= 1")
        if self.growth_factor < 1:
            raise ProtocolError("growth factor must be >= 1")

    def response_size(self, request_number: int) -> int:
        """Number of elements in the ``request_number``-th response (0-based)."""
        if request_number < 0:
            raise ProtocolError("request number must be non-negative")
        return self.initial_size * self.growth_factor**request_number

    def total_after(self, num_requests: int) -> int:
        """Cumulative elements after *num_requests* responses (Eq. 12)."""
        if num_requests < 0:
            raise ProtocolError("num_requests must be non-negative")
        return sum(self.response_size(i) for i in range(num_requests))


@dataclass(frozen=True)
class FetchRequest:
    """One fetch against a merged posting list.

    ``offset``/``count`` address the server-side TRS order restricted to
    the elements the principal may read.  The server sees exactly these
    fields — they are what the query-observation adversary logs.

    ``min_version`` is a session-consistency floor: the lowest
    replication-log version of the list the response may reflect,
    carried by sessions enforcing read-your-writes and monotonic reads
    (see :class:`~repro.core.client.ClientQuerySession`).  ``None`` (the
    default, and the only value a bare server ever sees) imposes no
    floor; a cluster read below the floor is repaired and re-served.  It
    reveals only how recently the session last touched the list —
    strictly less than the query-observation channel already leaks.

    ``trace_id`` is the telemetry trace-context id (see
    :mod:`repro.obs.trace`): set, it ties every hop this slice takes —
    coalesce, envelope, serve, skim — back to the issuing session's
    span tree.  ``None`` (the default) means tracing is off; the server
    treats the field as opaque, and it carries no query content beyond
    "these slices belong to one session", which the coalesced envelope
    already reveals.
    """

    principal: str
    list_id: int
    offset: int
    count: int
    min_version: int | None = None
    trace_id: int | None = None

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ProtocolError("offset must be non-negative")
        if self.count < 1:
            raise ProtocolError("count must be >= 1")
        if self.min_version is not None and self.min_version < 0:
            raise ProtocolError("min_version must be non-negative")


@dataclass(frozen=True)
class FetchResponse:
    """Server reply: an ordered slice plus an exhaustion flag.

    ``replica_version`` is the serving replica's applied replication-log
    version of the fetched list (see :mod:`repro.core.replication`),
    stamped by the cluster on its read path; ``None`` means the response
    came from an unreplicated backend (a bare
    :class:`~repro.core.server.ZerberRServer`).  The cluster compares it
    against the list's log head to detect a stale replica and trigger
    read-repair.
    """

    elements: tuple[EncryptedPostingElement, ...]
    exhausted: bool
    replica_version: int | None = None

    def __len__(self) -> int:
        return len(self.elements)


@dataclass(frozen=True)
class BatchFetchRequest:
    """Many fetch slices bundled into one server call.

    All slices must come from the same authenticated principal (the
    server authenticates the call once).  Slice order is significant: the
    response carries replies in the same order.
    """

    principal: str
    requests: tuple[FetchRequest, ...]

    def __post_init__(self) -> None:
        if not self.requests:
            raise ProtocolError("batch must contain at least one fetch request")
        for request in self.requests:
            if request.principal != self.principal:
                raise ProtocolError(
                    "all requests in a batch must share the batch principal"
                )

    @classmethod
    def for_slices(
        cls, principal: str, slices: "tuple[tuple[int, int, int], ...] | list"
    ) -> "BatchFetchRequest":
        """Build a batch from ``(list_id, offset, count)`` triples."""
        return cls(
            principal=principal,
            requests=tuple(
                FetchRequest(
                    principal=principal, list_id=list_id, offset=offset, count=count
                )
                for list_id, offset, count in slices
            ),
        )

    def __len__(self) -> int:
        return len(self.requests)


@dataclass(frozen=True)
class BatchFetchResponse:
    """Per-slice replies, aligned with the batch's request order."""

    responses: tuple[FetchResponse, ...]

    def __len__(self) -> int:
        return len(self.responses)

    def __iter__(self) -> Iterator[FetchResponse]:
        return iter(self.responses)

    @property
    def elements_returned(self) -> int:
        return sum(len(r) for r in self.responses)


@dataclass(frozen=True)
class CoalescedBatchRequest:
    """One coordinator→server envelope per scheduling tick.

    ``batches`` holds one single-principal :class:`BatchFetchRequest` per
    principal with slices on this server this tick.  ``slice_ids`` runs
    parallel to the *flattened* slice order (batches concatenated in
    order) and must be unique within the envelope — they are the
    coordinator's demultiplexing handles, opaque to the server.
    ``epoch`` is the placement epoch the envelope was routed under;
    ``None`` means "unrouted" (direct single-server use).  ``trace_id``
    names the telemetry span tree the envelope is recorded under — the
    coordinator attributes each tick's shared coalescing work to the
    oldest admitted session's trace (``None`` when tracing is off).
    """

    batches: tuple[BatchFetchRequest, ...]
    slice_ids: tuple[int, ...]
    epoch: int | None = None
    trace_id: int | None = None

    def __post_init__(self) -> None:
        if not self.batches:
            raise ProtocolError("envelope must contain at least one sub-batch")
        total_slices = sum(len(batch) for batch in self.batches)
        if len(self.slice_ids) != total_slices:
            raise ProtocolError(
                f"envelope carries {total_slices} slices but "
                f"{len(self.slice_ids)} slice ids"
            )
        if len(set(self.slice_ids)) != len(self.slice_ids):
            raise ProtocolError("slice ids must be unique within an envelope")

    def __len__(self) -> int:
        return sum(len(batch) for batch in self.batches)


@dataclass(frozen=True)
class CoalescedBatchResponse:
    """Per-slice replies of an envelope, keyed by the echoed slice ids."""

    responses: tuple[FetchResponse, ...]
    slice_ids: tuple[int, ...]
    epoch: int | None = None

    def __post_init__(self) -> None:
        if len(self.responses) != len(self.slice_ids):
            raise ProtocolError("one response per slice id required")

    def __len__(self) -> int:
        return len(self.responses)

    def by_slice_id(self) -> dict[int, FetchResponse]:
        return dict(zip(self.slice_ids, self.responses))


@dataclass(frozen=True)
class BackpressureSignal:
    """Shed notice a coordinator returns instead of admitting a session.

    Real backpressure replaces silent FIFO spill as the overload story:
    when the bounded admission queue (or a principal's concurrency
    credits) is exhausted, the arrival is *shed* with an explicit,
    deterministic retry hint instead of being parked unboundedly.  This
    is the wire-shaped record of that decision — what a fronting RPC
    layer would serialize back to the client as a 429-with-Retry-After.

    ``retry_after_ticks`` is a lower-bound hint (capacity may free up
    later than estimated; retrying earlier only earns another shed);
    ``reason`` is ``"queue"`` (admission queue full) or ``"credits"``
    (per-principal concurrency credits exhausted).
    """

    principal: str
    tick: int
    retry_after_ticks: int
    queue_depth: int
    limit: int
    reason: str

    def __post_init__(self) -> None:
        if self.retry_after_ticks < 1:
            raise ProtocolError("retry_after_ticks must be >= 1")
        if self.reason not in ("queue", "credits"):
            raise ProtocolError(f"unknown shed reason {self.reason!r}")


@dataclass
class QueryTrace:
    """Cost accounting of one top-k query session.

    Attributes
    ----------
    term / k:
        What was asked (client-side knowledge; the server never sees the
        term).
    num_requests:
        Requests issued, including the initial one.
    elements_transferred:
        Total posting elements shipped (the TRes of Eq. 12 — possibly less
        on the last response if the list ran out).
    bits_transferred:
        Total wire size of shipped elements (for §6.6).
    satisfied:
        Whether k matches were found before the list was exhausted.
    """

    term: str
    k: int
    num_requests: int = 0
    elements_transferred: int = 0
    bits_transferred: int = 0
    satisfied: bool = False

    def record_response(self, response: FetchResponse) -> None:
        self.num_requests += 1
        self.elements_transferred += len(response.elements)
        self.bits_transferred += sum(e.size_bits for e in response.elements)

    @property
    def total_response_size(self) -> int:
        """TRes — elements actually shipped over the session."""
        return self.elements_transferred

    def bandwidth_overhead(self) -> float:
        """``TRes / k`` — this query's contribution to AvBO (Eq. 13)."""
        if self.k <= 0:
            raise ProtocolError("k must be positive")
        return self.elements_transferred / self.k

    def query_efficiency(self) -> float:
        """``k / TRes`` — QRatioeff (Eq. 14); 1.0 is ordinary-index parity."""
        if self.elements_transferred == 0:
            raise ProtocolError("no responses recorded")
        return self.k / self.elements_transferred


@dataclass
class BatchQueryTrace:
    """Cost accounting of one batched multi-term query session.

    ``num_rounds`` counts server round-trips (one per
    :class:`BatchFetchRequest`); ``num_subfetches`` counts the slices
    served across all rounds — what the same session would have cost in
    round-trips had every slice been its own call.  The difference is the
    latency win of batching; bytes shipped are identical either way.
    """

    terms: tuple[str, ...]
    k: int
    num_rounds: int = 0
    num_subfetches: int = 0
    elements_transferred: int = 0
    bits_transferred: int = 0

    def record_round(self, response: BatchFetchResponse) -> None:
        self.num_rounds += 1
        self.num_subfetches += len(response)
        for sub in response:
            self.elements_transferred += len(sub.elements)
            self.bits_transferred += sum(e.size_bits for e in sub.elements)

    @property
    def num_requests(self) -> int:
        """Server calls issued — the batched analogue of
        :attr:`QueryTrace.num_requests`."""
        return self.num_rounds

    def requests_saved(self) -> int:
        """Round-trips avoided versus per-list fetching."""
        return self.num_subfetches - self.num_rounds
