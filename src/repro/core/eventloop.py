"""Deterministic virtual-time event loop for the coordinator/cluster seam.

The coordinator used to run globally synchronous lockstep ticks: every
session advanced one round per :meth:`~repro.core.router.Coordinator.tick`,
and replication delivery was chained to that same scheduling clock.  This
module provides the substrate that decouples them — an event scheduler
over *virtual time* (integer ticks, the same unit as the replication
clock) with deterministic total ordering:

* Events are ``(tick, priority, seq)``-ordered: due tick first, then an
  explicit priority band (foreground work before background daemons at
  the same tick), then FIFO submission order.  Two runs that schedule
  the same events observe the same firing order — there is no wall
  clock, no thread, and no OS entropy anywhere in the loop, so it is
  clean under the ``determinism`` zlint rule and usable from
  ``repro.core``.
* Periodic *background tasks* (:meth:`EventLoop.every`) reschedule
  themselves; they are ``daemon`` by default, meaning they never keep
  the loop alive — :meth:`EventLoop.run_until_quiet` drains until no
  *foreground* events remain.
* ``advance(n)`` is the lockstep-compat primitive: it fires everything
  due strictly before ``now + n`` (including events scheduled *during*
  processing at the current tick) and then moves ``now`` forward — one
  legacy coordinator tick is exactly ``advance(1)``.

A seeded :class:`random.Random` rides on the loop for consumers that
need jitter (e.g. open-loop arrival generators); the loop itself never
draws from it.
"""

from __future__ import annotations

import heapq
import random
from collections.abc import Callable

from repro.errors import ConfigurationError, ProtocolError

#: Priority bands.  Foreground session work (arrivals, flushes, skim
#: deliveries) runs first at a tick; replication delivery daemons run
#: after all foreground work of the tick (matching the legacy ordering
#: "envelopes first, then the replication tick"); placement maintenance
#: (rebalance) runs last.
FOREGROUND = 0
BACKGROUND = 10
MAINTENANCE = 20


class EventHandle:
    """One scheduled callback; orderable by ``(tick, priority, seq)``."""

    __slots__ = ("tick", "priority", "seq", "name", "daemon", "fn", "cancelled")

    def __init__(
        self,
        tick: int,
        priority: int,
        seq: int,
        name: str,
        daemon: bool,
        fn: Callable[[], object],
    ) -> None:
        self.tick = tick
        self.priority = priority
        self.seq = seq
        self.name = name
        self.daemon = daemon
        self.fn = fn
        self.cancelled = False

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.tick, self.priority, self.seq) < (
            other.tick,
            other.priority,
            other.seq,
        )


class PeriodicTask:
    """A self-rescheduling background task registered via :meth:`EventLoop.every`."""

    __slots__ = ("name", "period", "priority", "daemon", "fires", "cancelled", "_fn")

    def __init__(
        self,
        name: str,
        period: int,
        priority: int,
        daemon: bool,
        fn: Callable[[], object],
    ) -> None:
        self.name = name
        self.period = period
        self.priority = priority
        self.daemon = daemon
        self.fires = 0
        self.cancelled = False
        self._fn = fn

    def cancel(self) -> None:
        """Stop future firings (the already-queued one becomes a no-op)."""
        self.cancelled = True


class EventLoop:
    """Virtual-time scheduler with deterministic total event order."""

    def __init__(self, *, seed: int = 0, start_tick: int = 0) -> None:
        if start_tick < 0:
            raise ConfigurationError("start_tick must be >= 0")
        self._now = start_tick
        self._seq = 0
        self._heap: list[EventHandle] = []
        self._pending_foreground = 0
        self._fired = 0
        self._tasks: list[PeriodicTask] = []
        #: Seeded RNG for loop consumers (arrival jitter etc.); the loop
        #: itself is RNG-free.
        self.rng = random.Random(seed)

    @property
    def now(self) -> int:
        """Current virtual tick (the same unit as the replication clock)."""
        return self._now

    @property
    def events_fired(self) -> int:
        return self._fired

    def pending(self) -> int:
        """Foreground events still queued (daemon tasks do not count)."""
        return self._pending_foreground

    def tasks(self) -> list[PeriodicTask]:
        """Registered periodic tasks, in registration order."""
        return [task for task in self._tasks if not task.cancelled]

    # -- scheduling --------------------------------------------------------------

    def call_at(
        self,
        tick: int,
        fn: Callable[[], object],
        *,
        name: str = "event",
        priority: int = FOREGROUND,
        daemon: bool = False,
    ) -> EventHandle:
        """Schedule ``fn`` at virtual ``tick`` (clamped to ``now`` if past)."""
        handle = EventHandle(
            max(tick, self._now), priority, self._seq, name, daemon, fn
        )
        self._seq += 1
        heapq.heappush(self._heap, handle)
        if not daemon:
            self._pending_foreground += 1
        return handle

    def call_later(
        self,
        delay: int,
        fn: Callable[[], object],
        *,
        name: str = "event",
        priority: int = FOREGROUND,
        daemon: bool = False,
    ) -> EventHandle:
        if delay < 0:
            raise ConfigurationError("delay must be >= 0")
        return self.call_at(
            self._now + delay, fn, name=name, priority=priority, daemon=daemon
        )

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a scheduled event (firing a cancelled handle is a no-op)."""
        if not handle.cancelled:
            handle.cancelled = True
            if not handle.daemon:
                self._pending_foreground -= 1

    def every(
        self,
        period: int,
        fn: Callable[[], object],
        *,
        name: str,
        priority: int = BACKGROUND,
        first_at: int | None = None,
        daemon: bool = True,
    ) -> PeriodicTask:
        """Register a periodic task firing every ``period`` ticks.

        The first firing lands at ``first_at`` (default ``now + period - 1``:
        the *end* of the ``period``-th tick from now, so a period-1
        delivery daemon fires once at the end of every tick — the legacy
        "one scheduling tick is one replication tick" cadence).  Daemon
        tasks never keep :meth:`run_until_quiet` running.
        """
        if period < 1:
            raise ConfigurationError("period must be >= 1")
        task = PeriodicTask(name, period, priority, daemon, fn)
        self._tasks.append(task)
        due = first_at if first_at is not None else self._now + period - 1
        self._schedule_task(task, due)
        return task

    def _schedule_task(self, task: PeriodicTask, due: int) -> None:
        def fire() -> None:
            if task.cancelled:
                return
            task.fires += 1
            task._fn()
            if not task.cancelled:
                self._schedule_task(task, self._now + task.period)

        self.call_at(
            due, fire, name=task.name, priority=task.priority, daemon=task.daemon
        )

    # -- execution ---------------------------------------------------------------

    def advance(self, ticks: int = 1) -> int:
        """Fire everything due before ``now + ticks``; returns events fired.

        Events scheduled *during* processing are fired in the same call
        when they fall inside the window, so one ``advance(1)`` drains
        the current tick to quiescence — the lockstep-compat contract.
        """
        if ticks < 1:
            raise ConfigurationError("ticks must be >= 1")
        target = self._now + ticks
        fired = 0
        heap = self._heap
        while heap and heap[0].tick < target:
            handle = heapq.heappop(heap)
            if handle.cancelled:
                continue
            if handle.tick > self._now:
                self._now = handle.tick
            if not handle.daemon:
                self._pending_foreground -= 1
            fired += 1
            self._fired += 1
            handle.fn()
        self._now = target
        return fired

    def run_until_quiet(self, max_ticks: int = 100_000) -> int:
        """Advance tick by tick until no foreground events remain.

        Daemon tasks fire as virtual time passes but never block
        quiescence.  Returns the number of ticks advanced; raises
        :class:`~repro.errors.ProtocolError` if the loop fails to drain
        within ``max_ticks`` (a foreground event kept rescheduling).
        """
        start = self._now
        while self._pending_foreground:
            if self._now - start >= max_ticks:
                raise ProtocolError(
                    f"event loop did not quiesce within {max_ticks} ticks "
                    f"({self._pending_foreground} foreground event(s) pending)"
                )
            self.advance(1)
        return self._now - start
