"""Pluggable list→server placement policies for the sharded cluster.

:class:`~repro.core.cluster.ServerCluster` used to hard-code round-robin
placement (``list_id % num_servers``) inside ``replicas_of``.  That is
fine while all merged lists are equally hot, but the paper's query
workload (Fig. 10) is heavily skewed: a few head-term lists absorb most
fetches, and wherever ``mod`` happens to put them becomes the cluster's
bottleneck.  This module extracts placement into a strategy object so the
cluster can be built with:

* :class:`RoundRobinPlacement` — the seed behaviour, byte-for-byte: list
  ``i`` is primaried on server ``i % N`` with replicas on the next
  ``f - 1`` servers.  Never proposes moves.
* :class:`HeatWeightedPlacement` — observes per-list fetch counters (the
  servers' measured "heat") and greedily repacks hot lists onto the
  least-loaded servers, so two head-term lists no longer share a shard
  just because their ids are congruent mod N.

The cluster owns the authoritative placement table and a monotonically
increasing *placement epoch*, and calls :meth:`PlacementPolicy.propose`
with the measured heat when asked to rebalance.  Policies carry no
placement state of their own; the heat-weighted policy may carry *decay*
state (an exponentially-weighted view of the cumulative counters) so a
briefly-hot list stops pinning placement once its traffic fades.  Only
read load is balanced — fetches are served by the first live replica, so
a list's entire heat lands on its primary; trailing replicas exist for
availability and carry write load only.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping, Sequence

from repro.errors import ConfigurationError

Placement = list[tuple[int, ...]]
"""One replica tuple (primary first) per list id."""


def validate_placement(
    placement: Sequence[Sequence[int]],
    num_lists: int,
    num_servers: int,
    replication: int,
) -> Placement:
    """Check a placement table's shape and server indices; normalise it."""
    if len(placement) != num_lists:
        raise ConfigurationError(
            f"placement covers {len(placement)} lists, expected {num_lists}"
        )
    normalised: Placement = []
    for list_id, replicas in enumerate(placement):
        replicas = tuple(replicas)
        if len(replicas) != replication:
            raise ConfigurationError(
                f"list {list_id} has {len(replicas)} replicas, "
                f"expected {replication}"
            )
        if len(set(replicas)) != len(replicas):
            raise ConfigurationError(f"list {list_id} repeats a replica server")
        if not all(0 <= s < num_servers for s in replicas):
            raise ConfigurationError(f"list {list_id} names an unknown server")
        normalised.append(replicas)
    return normalised


def max_over_mean(loads: Sequence[float]) -> float:
    """Max/mean of per-server loads; 1.0 for an idle (all-zero) cluster."""
    mean = sum(loads) / len(loads)
    if mean == 0:
        return 1.0
    return max(loads) / mean


def load_balance_ratio(
    heat: Mapping[int, int],
    placement: Sequence[Sequence[int]],
    num_servers: int,
) -> float:
    """Max/mean per-server *primary* read load under a placement.

    1.0 is a perfectly balanced cluster; the further above 1, the worse
    the hottest shard fares relative to the average.  Returns 1.0 for a
    cold cluster (no heat anywhere).
    """
    loads = [0.0] * num_servers
    for list_id, replicas in enumerate(placement):
        loads[replicas[0]] += heat.get(list_id, 0)
    return max_over_mean(loads)


class ReadSelector(ABC):
    """Which of a list's live replicas serves a read.

    The seed cluster always served from the first live replica, piling
    every list's whole read load onto its primary while trailing
    replicas idled.  A selector picks among the *eligible* replicas the
    cluster computed for the requested consistency level (all live
    replicas for ``ONE``; the caught-up live replicas for ``PRIMARY``),
    so balancing never weakens consistency.  Selectors must be
    deterministic: same construction seed, same call sequence, same
    choices — benchmarks and the byte-identity tests rely on replay.
    """

    name = "abstract"
    #: Whether select() reads *loads*; lets the cluster skip computing the
    #: per-server counters for load-oblivious strategies.
    needs_loads = False

    @abstractmethod
    def select(
        self, list_id: int, candidates: Sequence[int], loads: Sequence[int]
    ) -> int:
        """Pick one server from *candidates* (non-empty, placement order).

        *loads* is the cluster's per-server slices-served counter
        (indexed by server id), for load-aware strategies.
        """


class PrimaryReads(ReadSelector):
    """The seed behaviour: always the first eligible replica."""

    name = "primary"

    def select(
        self, list_id: int, candidates: Sequence[int], loads: Sequence[int]
    ) -> int:
        return candidates[0]


class RotatingReads(ReadSelector):
    """Deterministic per-list round-robin over the eligible replicas.

    Each list keeps its own rotation cursor, started from *seed*, so
    consecutive reads of a hot list spread over its replicas while the
    sequence stays exactly reproducible under the same seed.
    """

    name = "rotate"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._cursors: dict[int, int] = {}

    def select(
        self, list_id: int, candidates: Sequence[int], loads: Sequence[int]
    ) -> int:
        cursor = self._cursors.get(list_id, self._seed)
        self._cursors[list_id] = cursor + 1
        return candidates[cursor % len(candidates)]


class LeastLoadedReads(ReadSelector):
    """Pick the eligible replica with the lowest served-slice count.

    Ties break by server index, so the choice is deterministic without
    any per-selector state.
    """

    name = "least-loaded"
    needs_loads = True

    def select(
        self, list_id: int, candidates: Sequence[int], loads: Sequence[int]
    ) -> int:
        return min(candidates, key=lambda s: (loads[s], s))


_READ_SELECTORS = {
    PrimaryReads.name: PrimaryReads,
    RotatingReads.name: RotatingReads,
    LeastLoadedReads.name: LeastLoadedReads,
}


def coerce_read_selector(
    value: "ReadSelector | str | None", seed: int = 0
) -> ReadSelector:
    """Resolve a selector instance or name (``None`` = seed behaviour)."""
    if value is None:
        return PrimaryReads()
    if isinstance(value, ReadSelector):
        return value
    try:
        selector_cls = _READ_SELECTORS[str(value)]
    except KeyError:
        raise ConfigurationError(
            f"unknown read strategy {value!r}; "
            f"expected one of {sorted(_READ_SELECTORS)}"
        ) from None
    if selector_cls is RotatingReads:
        return RotatingReads(seed=seed)
    return selector_cls()


class PlacementPolicy(ABC):
    """Strategy deciding which servers hold (and serve) each merged list."""

    name = "abstract"

    @abstractmethod
    def initial_placement(
        self, num_lists: int, num_servers: int, replication: int
    ) -> Placement:
        """The placement table for a freshly built (heat-less) cluster."""

    def propose(
        self,
        heat: Mapping[int, int],
        current: Sequence[tuple[int, ...]],
        num_servers: int,
        replication: int,
        alive: Sequence[bool] | None = None,
    ) -> dict[int, tuple[int, ...]]:
        """Heat-driven moves as ``{list_id: new_replicas}``.

        The default is the empty proposal (static placement).  A policy
        must only return entries that *differ* from ``current`` and must
        only target servers marked live in *alive* (``None`` means all
        live); the cluster migrates each one and bumps the placement
        epoch once.
        """
        return {}


class RoundRobinPlacement(PlacementPolicy):
    """The seed's static placement: primary ``list_id % N``, no rebalancing."""

    name = "round-robin"

    def initial_placement(
        self, num_lists: int, num_servers: int, replication: int
    ) -> Placement:
        return [
            tuple((list_id + i) % num_servers for i in range(replication))
            for list_id in range(num_lists)
        ]


class HeatWeightedPlacement(PlacementPolicy):
    """Greedy repacking of hot lists onto the least-loaded servers.

    Starts out round-robin (no heat has been observed yet).  On
    :meth:`propose`, lists with observed heat are sorted hottest-first
    and each is assigned to the currently least-loaded server (ties by
    server index, so proposals are deterministic); its remaining replicas
    go to the next least-loaded distinct servers.  Cold lists
    (zero observed fetches) keep their current placement — moving them
    costs a migration and buys nothing.

    ``heat_half_life`` adds exponential decay on top of the cluster's
    *cumulative* fetch counters: each :meth:`propose` call is one decay
    tick, new fetches since the previous call arrive at full weight, and
    older traffic halves every ``heat_half_life`` ticks.  A list that was
    hot for one burst therefore stops dominating placement after a few
    rebalance cycles instead of pinning its server forever; once its
    decayed heat falls below half a fetch it counts as cold again.
    ``None`` (the default) disables decay — cumulative counters are used
    as-is, the pre-decay behaviour.

    Greedy longest-processing-time packing is within 4/3 of the optimal
    makespan, which is far better than what ``mod`` does to a Zipf
    workload where hot lists happen to collide.
    """

    name = "heat-weighted"

    _COLD_THRESHOLD = 0.5  # decayed heat below half a fetch counts as cold

    def __init__(self, heat_half_life: float | None = None) -> None:
        if heat_half_life is not None and heat_half_life <= 0:
            raise ConfigurationError("heat_half_life must be positive")
        self.heat_half_life = heat_half_life
        # Decay state: EWMA of fetch activity plus the last cumulative
        # counter seen per list (to turn cumulative heat into deltas).
        self._decayed: dict[int, float] = {}
        self._last_seen: dict[int, int] = {}

    def initial_placement(
        self, num_lists: int, num_servers: int, replication: int
    ) -> Placement:
        return RoundRobinPlacement().initial_placement(
            num_lists, num_servers, replication
        )

    def _next_tick(self, heat: Mapping[int, int]) -> dict[int, float]:
        """One decay step applied to the current state, without committing.

        The previous effective heat decays by ``0.5 ** (1 / half_life)``
        and the fetches since the last committed tick arrive at full
        weight; entries below ``_COLD_THRESHOLD`` are dropped.
        """
        factor = 0.5 ** (1.0 / self.heat_half_life)  # type: ignore[operator]
        updated: dict[int, float] = {}
        for list_id in self._decayed.keys() | heat.keys():
            delta = heat.get(list_id, 0) - self._last_seen.get(list_id, 0)
            value = self._decayed.get(list_id, 0.0) * factor + delta
            if value >= self._COLD_THRESHOLD:
                updated[list_id] = value
        return updated

    def effective_heat(self, heat: Mapping[int, int]) -> dict[int, float]:
        """The heat the next :meth:`propose` would rank by — pure preview.

        Observing heat must not advance the decay clock (only
        :meth:`propose` — one call per rebalance cycle — ticks it), so
        this can be called freely by operators, benchmarks and tests.
        """
        if self.heat_half_life is None:
            return {list_id: float(count) for list_id, count in heat.items()}
        return self._next_tick(heat)

    def _tick(self, heat: Mapping[int, int]) -> dict[int, float]:
        """Advance the decay clock by one rebalance cycle."""
        if self.heat_half_life is None:
            return {list_id: float(count) for list_id, count in heat.items()}
        self._decayed = self._next_tick(heat)
        for list_id, cumulative in heat.items():
            if cumulative:
                self._last_seen[list_id] = cumulative
        return dict(self._decayed)

    def propose(
        self,
        heat: Mapping[int, int],
        current: Sequence[tuple[int, ...]],
        num_servers: int,
        replication: int,
        alive: Sequence[bool] | None = None,
    ) -> dict[int, tuple[int, ...]]:
        live = [
            s for s in range(num_servers) if alive is None or alive[s]
        ]
        if len(live) < replication:
            # Not enough live servers to host a full replica set — moving
            # anything now would strand data; wait for recovery.
            return {}
        effective = self._tick(heat)
        hot = sorted(
            (
                list_id
                for list_id in range(len(current))
                if effective.get(list_id, 0.0) > 0
            ),
            key=lambda list_id: (-effective[list_id], list_id),
        )
        loads = {s: 0.0 for s in live}
        proposal: dict[int, tuple[int, ...]] = {}
        for list_id in hot:
            order = sorted(live, key=lambda s: (loads[s], s))
            replicas = tuple(order[:replication])
            loads[replicas[0]] += effective[list_id]
            if replicas != tuple(current[list_id]):
                proposal[list_id] = replicas
        return proposal
