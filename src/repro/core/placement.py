"""Pluggable list→server placement policies for the sharded cluster.

:class:`~repro.core.cluster.ServerCluster` used to hard-code round-robin
placement (``list_id % num_servers``) inside ``replicas_of``.  That is
fine while all merged lists are equally hot, but the paper's query
workload (Fig. 10) is heavily skewed: a few head-term lists absorb most
fetches, and wherever ``mod`` happens to put them becomes the cluster's
bottleneck.  This module extracts placement into a strategy object so the
cluster can be built with:

* :class:`RoundRobinPlacement` — the seed behaviour, byte-for-byte: list
  ``i`` is primaried on server ``i % N`` with replicas on the next
  ``f - 1`` servers.  Never proposes moves.
* :class:`HeatWeightedPlacement` — observes per-list fetch counters (the
  servers' measured "heat") and greedily repacks hot lists onto the
  least-loaded servers, so two head-term lists no longer share a shard
  just because their ids are congruent mod N.

A policy is stateless: the cluster owns the authoritative placement table
and a monotonically increasing *placement epoch*, and calls
:meth:`PlacementPolicy.propose` with the measured heat when asked to
rebalance.  Only read load is balanced — fetches are served by the first
live replica, so a list's entire heat lands on its primary; trailing
replicas exist for availability and carry write load only.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping, Sequence

from repro.errors import ConfigurationError

Placement = list[tuple[int, ...]]
"""One replica tuple (primary first) per list id."""


def validate_placement(
    placement: Sequence[Sequence[int]],
    num_lists: int,
    num_servers: int,
    replication: int,
) -> Placement:
    """Check a placement table's shape and server indices; normalise it."""
    if len(placement) != num_lists:
        raise ConfigurationError(
            f"placement covers {len(placement)} lists, expected {num_lists}"
        )
    normalised: Placement = []
    for list_id, replicas in enumerate(placement):
        replicas = tuple(replicas)
        if len(replicas) != replication:
            raise ConfigurationError(
                f"list {list_id} has {len(replicas)} replicas, "
                f"expected {replication}"
            )
        if len(set(replicas)) != len(replicas):
            raise ConfigurationError(f"list {list_id} repeats a replica server")
        if not all(0 <= s < num_servers for s in replicas):
            raise ConfigurationError(f"list {list_id} names an unknown server")
        normalised.append(replicas)
    return normalised


def max_over_mean(loads: Sequence[float]) -> float:
    """Max/mean of per-server loads; 1.0 for an idle (all-zero) cluster."""
    mean = sum(loads) / len(loads)
    if mean == 0:
        return 1.0
    return max(loads) / mean


def load_balance_ratio(
    heat: Mapping[int, int],
    placement: Sequence[Sequence[int]],
    num_servers: int,
) -> float:
    """Max/mean per-server *primary* read load under a placement.

    1.0 is a perfectly balanced cluster; the further above 1, the worse
    the hottest shard fares relative to the average.  Returns 1.0 for a
    cold cluster (no heat anywhere).
    """
    loads = [0.0] * num_servers
    for list_id, replicas in enumerate(placement):
        loads[replicas[0]] += heat.get(list_id, 0)
    return max_over_mean(loads)


class PlacementPolicy(ABC):
    """Strategy deciding which servers hold (and serve) each merged list."""

    name = "abstract"

    @abstractmethod
    def initial_placement(
        self, num_lists: int, num_servers: int, replication: int
    ) -> Placement:
        """The placement table for a freshly built (heat-less) cluster."""

    def propose(
        self,
        heat: Mapping[int, int],
        current: Sequence[tuple[int, ...]],
        num_servers: int,
        replication: int,
        alive: Sequence[bool] | None = None,
    ) -> dict[int, tuple[int, ...]]:
        """Heat-driven moves as ``{list_id: new_replicas}``.

        The default is the empty proposal (static placement).  A policy
        must only return entries that *differ* from ``current`` and must
        only target servers marked live in *alive* (``None`` means all
        live); the cluster migrates each one and bumps the placement
        epoch once.
        """
        return {}


class RoundRobinPlacement(PlacementPolicy):
    """The seed's static placement: primary ``list_id % N``, no rebalancing."""

    name = "round-robin"

    def initial_placement(
        self, num_lists: int, num_servers: int, replication: int
    ) -> Placement:
        return [
            tuple((list_id + i) % num_servers for i in range(replication))
            for list_id in range(num_lists)
        ]


class HeatWeightedPlacement(PlacementPolicy):
    """Greedy repacking of hot lists onto the least-loaded servers.

    Starts out round-robin (no heat has been observed yet).  On
    :meth:`propose`, lists with observed heat are sorted hottest-first
    and each is assigned to the currently least-loaded server (ties by
    server index, so proposals are deterministic); its remaining replicas
    go to the next least-loaded distinct servers.  Cold lists
    (zero observed fetches) keep their current placement — moving them
    costs a migration and buys nothing.

    Greedy longest-processing-time packing is within 4/3 of the optimal
    makespan, which is far better than what ``mod`` does to a Zipf
    workload where hot lists happen to collide.
    """

    name = "heat-weighted"

    def initial_placement(
        self, num_lists: int, num_servers: int, replication: int
    ) -> Placement:
        return RoundRobinPlacement().initial_placement(
            num_lists, num_servers, replication
        )

    def propose(
        self,
        heat: Mapping[int, int],
        current: Sequence[tuple[int, ...]],
        num_servers: int,
        replication: int,
        alive: Sequence[bool] | None = None,
    ) -> dict[int, tuple[int, ...]]:
        live = [
            s for s in range(num_servers) if alive is None or alive[s]
        ]
        if len(live) < replication:
            # Not enough live servers to host a full replica set — moving
            # anything now would strand data; wait for recovery.
            return {}
        hot = sorted(
            (list_id for list_id in range(len(current)) if heat.get(list_id, 0) > 0),
            key=lambda list_id: (-heat[list_id], list_id),
        )
        loads = {s: 0.0 for s in live}
        proposal: dict[int, tuple[int, ...]] = {}
        for list_id in hot:
            order = sorted(live, key=lambda s: (loads[s], s))
            replicas = tuple(order[:replication])
            loads[replicas[0]] += heat[list_id]
            if replicas != tuple(current[list_id]):
                proposal[list_id] = replicas
        return proposal
