"""The untrusted Zerber+R index server (paper §5, §5.2).

The server stores merged posting lists whose elements carry an encrypted
payload plus a plaintext TRS, keeps each list sorted by descending TRS, and
serves ``(offset, count)`` slices to authenticated clients.  Access control
is group-based: every element is tagged with its owning group, and a fetch
only ever returns elements of groups the requesting principal belongs to
(paper §4.1: "The index server determines user's access rights").

Two throughput mechanisms sit on the fetch path:

* **Batched fetches** — :meth:`ZerberRServer.batch_fetch` serves a
  :class:`~repro.core.protocol.BatchFetchRequest` bundling many slices
  (one per merged list a multi-term query needs) in a single call, so a
  client round of the doubling protocol costs one round-trip regardless
  of term count.  Each slice is still logged individually (with a shared
  ``batch_id``) because the compromised-server adversary sees them all.
* **Incremental readable views** — the per-principal readable sub-list a
  fetch slices is maintained by a
  :class:`~repro.core.views.ReadableViewIndex`: inserts and deletes patch
  cached views in place (O(log n) order-statistic skip-list updates)
  instead of forcing a full membership-filtered rebuild of the merged
  list, fetches extract ``(offset, count)`` slices in O(log n + count),
  and an LRU over ``(list, principal)`` pairs bounds the memory.

Everything the server can observe — stored TRS values, group tags, and the
stream of fetch requests — is exactly what the threat-model adversary gets
when she compromises the server, so the server also keeps an observation
log that the attack modules read.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.core.protocol import (
    BatchFetchRequest,
    BatchFetchResponse,
    CoalescedBatchRequest,
    CoalescedBatchResponse,
    FetchRequest,
    FetchResponse,
)
from repro.core.views import ReadableViewIndex, ViewStats
from repro.crypto.keys import GroupKeyService
from repro.errors import AccessDeniedError, ProtocolError, UnknownListError
from repro.index.postings import EncryptedPostingElement, MergedPostingList


@dataclass(frozen=True)
class ObservedFetch:
    """What the compromised-server adversary records per served slice.

    ``batch_id`` groups the slices of one batched call (``None`` for a
    singleton fetch) — the adversary sees which slices travelled together.
    """

    principal: str
    list_id: int
    offset: int
    count: int
    returned: int
    batch_id: int | None = None


class ZerberRServer:
    """Merged, TRS-sorted, access-controlled posting-list store."""

    def __init__(
        self,
        key_service: GroupKeyService,
        num_lists: int,
        readable_view_capacity: int = 256,
    ) -> None:
        if num_lists < 1:
            raise ProtocolError("num_lists must be >= 1")
        self._keys = key_service
        self._lists: dict[int, MergedPostingList] = {
            list_id: MergedPostingList(list_id) for list_id in range(num_lists)
        }
        self.observations: list[ObservedFetch] = []
        # Incrementally maintained (list, principal) -> readable sub-list
        # cache; see repro.core.views for the maintenance discipline.
        self._views = ReadableViewIndex(
            key_service, capacity=readable_view_capacity
        )
        self._batch_counter = 0
        # Per-list fetch counters ("heat") — drive heat-weighted placement —
        # and a call counter (round-trips served, whatever the envelope).
        self._fetch_counts: dict[int, int] = {}
        self._calls_served = 0

    # -- properties ----------------------------------------------------------

    @property
    def num_lists(self) -> int:
        return len(self._lists)

    @property
    def num_elements(self) -> int:
        return sum(len(lst) for lst in self._lists.values())

    @property
    def view_stats(self) -> ViewStats:
        """Operation counters of the readable-view index (benchmarks)."""
        return self._views.stats

    @property
    def num_calls(self) -> int:
        """Fetch calls served (a batch or envelope counts once)."""
        return self._calls_served

    @property
    def fetch_counts(self) -> dict[int, int]:
        """Slices served per list id — the list-heat signal placement uses."""
        return dict(self._fetch_counts)

    def list_length(self, list_id: int) -> int:
        return len(self._list(list_id))

    def _list(self, list_id: int) -> MergedPostingList:
        merged = self._lists.get(list_id)
        if merged is None:
            raise UnknownListError(list_id)
        return merged

    # -- inserts (paper §5: online insertion phase) ----------------------------

    def insert(
        self, principal: str, list_id: int, element: EncryptedPostingElement
    ) -> None:
        """Accept one posting element from an authenticated group member.

        The server checks group membership ("checks his group membership
        and accepts the update if appropriate") and inserts by TRS order.
        Cached readable views of the list are patched in place.
        """
        if element.trs is None:
            raise ProtocolError("Zerber+R elements must carry a TRS")
        if not self._keys.is_member(principal, element.group):
            raise AccessDeniedError(principal, element.group)
        merged = self._list(list_id)
        merged.add_sorted_by_trs(element)
        self._views.note_insert(merged, element)

    def insert_many(
        self,
        principal: str,
        items: Iterable[tuple[int, EncryptedPostingElement]],
    ) -> int:
        """Bulk insert; returns the number of accepted elements."""
        accepted = 0
        for list_id, element in items:
            self.insert(principal, list_id, element)
            accepted += 1
        return accepted

    def bulk_load(
        self,
        principal: str,
        items: Iterable[tuple[int, EncryptedPostingElement]],
    ) -> int:
        """Load many elements, sorting each touched list once.

        Functionally identical to :meth:`insert_many` (including the
        membership checks) but O(n log n) per list instead of O(n²); used
        when indexing a whole corpus at system setup.  Touched lists'
        cached views are dropped wholesale — a bulk load changes too much
        for per-element patching to win.
        """
        by_list: dict[int, list[EncryptedPostingElement]] = {}
        accepted = 0
        for list_id, element in items:
            if element.trs is None:
                raise ProtocolError("Zerber+R elements must carry a TRS")
            if not self._keys.is_member(principal, element.group):
                raise AccessDeniedError(principal, element.group)
            self._list(list_id)  # validates the id
            by_list.setdefault(list_id, []).append(element)
            accepted += 1
        for list_id, elements in by_list.items():
            self._lists[list_id].bulk_load_sorted_by_trs(elements)
            self._views.invalidate_list(list_id)
        return accepted

    # -- deletion (collaborative updates, paper §5's "unlimited index
    # update and insert operations") ------------------------------------------

    def delete_element(
        self, principal: str, list_id: int, ciphertext: bytes
    ) -> bool:
        """Remove one posting element by its ciphertext receipt.

        The server cannot read ciphertexts, so deletion is by exact match
        on the receipt the inserting client kept.  Group membership is
        enforced against the stored element's group tag — only members of
        the owning group may delete it.  The list is scanned once: the
        same pass that finds the element yields its position, and cached
        readable views are patched rather than invalidated.  Returns
        whether an element was removed.
        """
        merged = self._list(list_id)
        found = merged.find_by_ciphertext(ciphertext)
        if found is None:
            return False
        position, target = found
        if not self._keys.is_member(principal, target.group):
            raise AccessDeniedError(principal, target.group)
        merged.pop_at(position)
        self._views.note_delete(merged, target)
        return True

    # -- replication (cluster data plane; see repro.core.replication) -----------

    def apply_replicated_insert(
        self, list_id: int, element: EncryptedPostingElement
    ) -> None:
        """Apply an insert op delivered from a list's replication log.

        No membership re-check: the op was validated and admitted at the
        primary when it was acknowledged; re-checking at delivery time
        would let a concurrent revocation make replicas diverge
        permanently.  Cached readable views are patched exactly as for a
        direct insert (attributed to replication in the view stats).
        """
        merged = self._list(list_id)
        merged.add_sorted_by_trs(element)
        self._views.note_insert(merged, element, replication=True)

    def apply_replicated_delete(self, list_id: int, ciphertext: bytes) -> bool:
        """Apply a delete op delivered from a list's replication log.

        Deletion is by ciphertext receipt, like the client protocol, and
        skips the membership check for the same reason as
        :meth:`apply_replicated_insert`.  Returns whether an element was
        removed (a miss is tolerated: log order guarantees the insert
        preceded this delete, so a miss can only mean the state was
        imported wholesale past this op during a migration).
        """
        merged = self._list(list_id)
        found = merged.find_by_ciphertext(ciphertext)
        if found is None:
            return False
        position, target = found
        merged.pop_at(position)
        self._views.note_delete(merged, target, replication=True)
        return True

    # -- shard migration (cluster control plane) --------------------------------

    def export_list(self, list_id: int) -> list[EncryptedPostingElement]:
        """Snapshot one list's elements in server order (migration source)."""
        return list(self._list(list_id).elements)

    def import_list(
        self, list_id: int, elements: Iterable[EncryptedPostingElement]
    ) -> None:
        """Replace one list's content wholesale (migration target).

        Elements arrive already encrypted and TRS-tagged from the source
        replica — no membership re-check, the data was admitted when first
        inserted.  Cached views of the list are dropped.
        """
        merged = self._list(list_id)
        merged.clear()
        merged.bulk_load_sorted_by_trs(elements)
        self._views.invalidate_list(list_id)

    def clear_list(self, list_id: int) -> None:
        """Drop one list's content (this server no longer hosts it)."""
        self._list(list_id).clear()
        self._views.invalidate_list(list_id)

    # -- crash recovery (persistence support; see repro.persist) ----------------

    def list_version(self, list_id: int) -> int:
        """The mutation counter of one merged list (persisted in format v2)."""
        return self._list(list_id).version

    def restore_list(
        self,
        list_id: int,
        elements: Iterable[EncryptedPostingElement],
        version: int,
    ) -> None:
        """Reinstall one list's persisted content *and* version counter.

        Unlike :meth:`import_list` (migration — the counter keeps
        advancing), a restored list resumes at its pre-restart version,
        so version-stamped fetch responses and the replication manager's
        applied versions stay comparable across the restart.
        """
        if version < 0:
            raise ProtocolError(f"list {list_id}: version must be >= 0")
        merged = self._list(list_id)
        merged.clear()
        merged.bulk_load_sorted_by_trs(elements)
        merged.version = version
        self._views.invalidate_list(list_id)

    def restore_heat(
        self, fetch_counts: Mapping[int, int], calls: int
    ) -> None:
        """Reinstall persisted per-list fetch counters and the call count.

        Heat drives heat-weighted placement (and the monitor's read-heat
        series); before it was persisted, every restart silently reset
        the signal to zero and the first post-restart rebalance saw a
        cold cluster.  Counter values must be non-negative; unknown list
        ids are rejected (the snapshot and the topology travel together).
        """
        if calls < 0:
            raise ProtocolError("calls served must be >= 0")
        counts = dict(fetch_counts)
        for list_id, count in counts.items():
            if list_id not in self._lists:
                raise UnknownListError(list_id)
            if count < 0:
                raise ProtocolError(
                    f"list {list_id}: fetch count must be >= 0"
                )
        self._fetch_counts = counts
        self._calls_served = calls

    def spill_views(self, limit: int) -> list[dict]:
        """Spill records of the hottest *fresh* readable views.

        Each record stores the view as merged-list *positions*, not
        element copies — the elements are already in the persisted list,
        so a spilled view costs O(view) small ints.  Stale views (list
        version moved on) are skipped: they would rebuild on first read
        anyway.  Records come coldest-first so adopting them in order
        reproduces the pre-restart LRU.
        """
        spilled = []
        for list_id, principal, version, memberships in self._views.spillable(
            limit
        ):
            merged = self._lists[list_id]
            if version != merged.version:
                continue
            spilled.append(
                {
                    "list": list_id,
                    "principal": principal,
                    "version": version,
                    "groups": sorted(memberships),
                    "positions": [
                        position
                        for position, element in enumerate(merged.elements)
                        if element.group in memberships
                    ],
                }
            )
        return spilled

    def adopt_view(
        self,
        list_id: int,
        principal: str,
        memberships: Iterable[str],
        positions: Iterable[int],
        version: int,
    ) -> None:
        """Warm one readable view from spilled positions (best effort).

        Positions must be a strictly increasing run inside the restored
        list — that is what :meth:`spill_views` emits, and it is what
        guarantees the adopted view is ordered like the merged list.
        Anything else (out of range, duplicated, reordered) means the
        spill is stale or damaged; the view is skipped (it would rebuild
        on first read anyway) rather than installing a mis-ordered view
        or failing the whole restore.
        """
        merged = self._list(list_id)
        positions = list(positions)
        if any(not 0 <= p < len(merged.elements) for p in positions):
            return
        if any(b <= a for a, b in zip(positions, positions[1:])):
            return
        self._views.adopt_view(
            merged,
            principal,
            memberships,
            (merged.elements[p] for p in positions),
            version,
        )

    # -- queries (paper §5.2) --------------------------------------------------

    def fetch(self, request: FetchRequest) -> FetchResponse:
        """Serve a TRS-ordered slice of the principal-readable elements.

        ``offset`` counts within the readable sub-list (the principal never
        learns how many unreadable elements interleave), and ``exhausted``
        signals that no readable elements remain past the returned slice.
        """
        self._calls_served += 1
        return self._serve_slice(request, batch_id=None)

    def batch_fetch(self, batch: BatchFetchRequest) -> BatchFetchResponse:
        """Serve many slices in one call (one client round-trip).

        Slices are served in request order; each is logged as its own
        :class:`ObservedFetch` carrying the shared ``batch_id``.
        """
        self._calls_served += 1
        self._batch_counter += 1
        batch_id = self._batch_counter
        return BatchFetchResponse(
            responses=tuple(
                self._serve_slice(request, batch_id=batch_id)
                for request in batch.requests
            )
        )

    def coalesced_fetch(
        self, envelope: CoalescedBatchRequest
    ) -> CoalescedBatchResponse:
        """Serve a coordinator envelope — many principals, one round-trip.

        Each nested sub-batch keeps the single-principal invariant and is
        served exactly as :meth:`batch_fetch` would; all slices share one
        ``batch_id`` because the compromised-server adversary sees them
        travel together.  The response echoes the coordinator's slice ids
        and placement epoch so demultiplexing is by id, not position.
        """
        self._calls_served += 1
        self._batch_counter += 1
        batch_id = self._batch_counter
        responses = tuple(
            self._serve_slice(request, batch_id=batch_id)
            for batch in envelope.batches
            for request in batch.requests
        )
        return CoalescedBatchResponse(
            responses=responses,
            slice_ids=envelope.slice_ids,
            epoch=envelope.epoch,
        )

    def _serve_slice(
        self, request: FetchRequest, batch_id: int | None
    ) -> FetchResponse:
        merged = self._list(request.list_id)
        slice_, readable_length = self._views.slice(
            merged, request.principal, request.offset, request.count
        )
        exhausted = request.offset + request.count >= readable_length
        self._fetch_counts[request.list_id] = (
            self._fetch_counts.get(request.list_id, 0) + 1
        )
        self.observations.append(
            ObservedFetch(
                principal=request.principal,
                list_id=request.list_id,
                offset=request.offset,
                count=request.count,
                returned=len(slice_),
                batch_id=batch_id,
            )
        )
        return FetchResponse(elements=tuple(slice_), exhausted=exhausted)

    # -- adversary-visible state (for the attack modules) -----------------------

    def visible_trs_values(self, list_id: int) -> list[float]:
        """All plaintext TRS values of a list, in server (descending) order."""
        return [e.trs for e in self._list(list_id) if e.trs is not None]

    def visible_group_tags(self, list_id: int) -> list[str]:
        """Plaintext group tags of a list, in server order."""
        return [e.group for e in self._list(list_id)]

    def storage_score_slots(self) -> int:
        """Per-element score slots stored (the §6.3 comparison quantity)."""
        return self.num_elements

    def storage_bits(self) -> int:
        """Total stored wire size of all posting elements."""
        return sum(lst.size_bits for lst in self._lists.values())

    def clear_observations(self) -> None:
        self.observations.clear()
