"""σ selection for the RSTF (paper §5.1.3, Fig. 9).

The σ parameter is the steepness of the logistic/Gaussian bells: too small
and the RSTF over-smooths (TRS values bunch in the middle of [0, 1]); too
large and it memorises the training points (overfitting — control scores
that fall *between* training points all map near bell plateaus).  The paper
selects σ by cross-validation: transform a held-out control set and measure
how far the TRS distribution is from uniform; the optimal σ minimises that
variance (Fig. 9's U-shaped curve).

The paper leaves "directly determining an optimal σ" as future work; we
implement the natural direct estimator as :func:`heuristic_sigma` (bell
width matched to the mean spacing of the training scores) and benchmark it
against CV in ``benchmarks/bench_fig09_sigma_selection.py``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.stats.gaussian import gaussian_sum_cdf, logistic_sum_cdf
from repro.stats.uniformness import uniformness_variance


def default_sigma_grid(
    minimum: float = 1.0, maximum: float = 1e5, points: int = 25
) -> tuple[float, ...]:
    """Log-spaced σ candidates covering under- to over-fitting regimes."""
    if minimum <= 0 or maximum <= minimum:
        raise ValueError("need 0 < minimum < maximum")
    if points < 2:
        raise ValueError("need at least two grid points")
    return tuple(np.geomspace(minimum, maximum, points).tolist())


def trs_variance_for_sigma(
    train_scores: Sequence[float],
    control_scores: Sequence[float],
    sigma: float,
    kind: str = "logistic",
) -> float:
    """Uniformness variance of the control TRS under σ (Fig. 9's Y-axis)."""
    if not train_scores:
        raise ValueError("empty training scores")
    if not control_scores:
        raise ValueError("empty control scores")
    mus = np.asarray(sorted(train_scores), dtype=float)
    x = np.asarray(control_scores, dtype=float)
    if kind == "logistic":
        trs = logistic_sum_cdf(x, mus, sigma)
    elif kind == "erf":
        trs = gaussian_sum_cdf(x, mus, sigma)
    else:
        raise ValueError("kind must be logistic|erf")
    return uniformness_variance(trs)


@dataclass(frozen=True)
class SigmaSelection:
    """Result of a σ sweep: the Fig. 9 curve plus its argmin.

    Attributes
    ----------
    sigmas / variances:
        The sweep grid and the control-set TRS variance at each σ.
    best_sigma / best_variance:
        The infimum of the variance curve (paper: "An optimal σ for a
        particular term is the infimum of the variance function").
    """

    sigmas: tuple[float, ...]
    variances: tuple[float, ...]

    @property
    def best_index(self) -> int:
        return int(np.argmin(self.variances))

    @property
    def best_sigma(self) -> float:
        return self.sigmas[self.best_index]

    @property
    def best_variance(self) -> float:
        return self.variances[self.best_index]

    def is_u_shaped(self, tolerance: float = 0.0) -> bool:
        """Whether the curve decreases to its minimum then increases.

        The paper's Fig. 9 shape check, used by tests/benches.  *tolerance*
        allows small non-monotonic wiggles (fraction of the value range).
        """
        v = np.asarray(self.variances)
        i = self.best_index
        if i == 0 or i == len(v) - 1:
            return False
        slack = tolerance * float(v.max() - v.min())
        left_ok = bool(np.all(np.diff(v[: i + 1]) <= slack))
        right_ok = bool(np.all(np.diff(v[i:]) >= -slack))
        return left_ok and right_ok


def select_sigma(
    train_scores: Sequence[float],
    control_scores: Sequence[float],
    grid: Sequence[float] | None = None,
    kind: str = "logistic",
) -> SigmaSelection:
    """Sweep σ over *grid* and return the full curve with its minimum."""
    grid = tuple(grid) if grid is not None else default_sigma_grid()
    if not grid:
        raise ValueError("empty sigma grid")
    variances = tuple(
        trs_variance_for_sigma(train_scores, control_scores, sigma, kind=kind)
        for sigma in grid
    )
    return SigmaSelection(sigmas=grid, variances=variances)


def heuristic_sigma(scores: Sequence[float]) -> float:
    """Direct σ estimate: bell width ≈ mean spacing of training scores.

    With N training scores spanning range ``w``, uniformising works best
    when each logistic step has width comparable to the gap between
    neighbouring scores, i.e. steepness σ ≈ N / w.  Degenerate inputs
    (single score, zero range) fall back to a width derived from the score
    magnitude so that the function is always usable.

    This is the reproduction's implementation of the paper's "future
    research" direction (§5.1.3); Fig. 9's benchmark compares it to CV.
    """
    arr = np.asarray(list(scores), dtype=float)
    if arr.size == 0:
        raise ValueError("empty score set")
    spread = float(arr.max() - arr.min())
    if spread > 0:
        sigma = arr.size / spread
        # A denormal spread (e.g. max - min == 5e-324) overflows the
        # division; such scores are numerically identical — fall through
        # to the equal-scores rule rather than returning inf.
        if np.isfinite(sigma):
            return sigma
    # All scores equal: any monotonic curve through the point works;
    # pick a bell width of 10% of the score (or an absolute floor).
    scale = max(abs(float(arr[0])) * 0.1, 1e-4)
    return 1.0 / scale
