"""Incremental per-principal readable views over merged posting lists.

A fetch serves a TRS-ordered slice of the elements a principal may read.
Deriving that readable sub-list from scratch costs O(list) per request;
caching it keyed on the list version (the seed's approach) helps only
between mutations — any insert or delete forced a full rebuild on the
next fetch, which under a mixed read/write workload degenerates back to
O(list) per mutation.

:class:`ReadableViewIndex` keeps the readable sub-lists *incrementally*:
server mutators notify it of each insert/delete, and a cached view whose
version is exactly one behind the list is patched instead of rebuilt.
Views that fall further behind — e.g. after a bulk load, or when tests
mutate list internals directly — fail the version check and rebuild
lazily on next access, so correctness never depends on every mutation
being routed through the notifications.

Performance model: each view is an
:class:`~repro.core.ordstat.OrderStatList` (an indexable skip list)
keyed by the merged list's descending-TRS sort key, so

* an insert/delete patch is a true O(log n) — no O(view) tail memmove,
  which is what the earlier bisect-and-splice representation paid;
* the fetch path asks for ``slice(offset, count)`` directly, which costs
  O(log n + count) — the server never materialises the whole sub-list.

Freshness is two-dimensional: a cached view is served only while the
list *version* and the principal's *membership snapshot* both match, so
an enroll or revoke between requests forces a rebuild — a revoked
principal can never keep reading a group's elements out of a cached
view.

Memory is bounded by an LRU over ``(list_id, principal)`` pairs: a
deployment with millions of users cannot hold one materialised sub-list
per principal per list, so cold pairs are evicted and rebuilt on demand.
:class:`ViewStats` counts hits, builds, incremental patches and
evictions; benchmarks assert on it to prove mutations no longer trigger
rebuilds.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass

from repro.crypto.keys import GroupKeyService
from repro.core.ordstat import OrderStatList
from repro.errors import ConfigurationError
from repro.index.postings import EncryptedPostingElement, MergedPostingList


@dataclass
class ViewStats:
    """Operation counters of a :class:`ReadableViewIndex`.

    ``replication_patches`` is the subset of ``incremental_updates``
    applied on behalf of the replication subsystem (follower catch-up,
    read-repair, anti-entropy — see :mod:`repro.core.replication`), so
    benchmarks can attribute view churn to repair traffic.
    """

    hits: int = 0
    misses: int = 0
    full_builds: int = 0
    stale_rebuilds: int = 0
    incremental_updates: int = 0
    replication_patches: int = 0
    evictions: int = 0
    invalidations: int = 0
    warm_restores: int = 0


class _ReadableView:
    """One materialised readable sub-list as an order-statistic list.

    ``data`` holds ``(sort_key, element)`` pairs in merged-list order.
    ``memberships`` is the principal's group set at build time: a view is
    only fresh while both the list version AND the memberships match, so
    an enroll/revoke between requests forces a rebuild instead of serving
    (or withholding) elements under stale access rights.
    """

    __slots__ = ("data", "version", "memberships")

    def __init__(
        self,
        data: OrderStatList,
        version: int,
        memberships: frozenset[str],
    ) -> None:
        self.data = data
        self.version = version
        self.memberships = memberships


class ReadableViewIndex:
    """LRU-bounded, incrementally maintained readable sub-lists."""

    def __init__(self, key_service: GroupKeyService, capacity: int = 256) -> None:
        if capacity < 1:
            raise ConfigurationError("view capacity must be >= 1")
        self._keys = key_service
        self.capacity = capacity
        self._views: OrderedDict[tuple[int, str], _ReadableView] = OrderedDict()
        # list_id -> principals with a cached view; lets mutators find the
        # views of one list without scanning the whole LRU.
        self._by_list: dict[int, set[str]] = {}
        self.stats = ViewStats()

    def __len__(self) -> int:
        return len(self._views)

    def cached_pairs(self) -> list[tuple[int, str]]:
        """Cached ``(list_id, principal)`` pairs, LRU order (oldest first)."""
        return list(self._views)

    # -- read path -----------------------------------------------------------

    def _fresh_view(
        self, merged: MergedPostingList, principal: str
    ) -> _ReadableView:
        """The up-to-date view of ``(merged, principal)``, building if needed."""
        cache_key = (merged.list_id, principal)
        view = self._views.get(cache_key)
        if (
            view is not None
            and view.version == merged.version
            and view.memberships == self._keys.membership_snapshot(principal)
        ):
            self.stats.hits += 1
            self._views.move_to_end(cache_key)
            return view
        if view is None:
            self.stats.misses += 1
        else:
            self.stats.stale_rebuilds += 1
        view = self._build(merged, principal)
        self._store(cache_key, view)
        return view

    def slice(
        self, merged: MergedPostingList, principal: str, offset: int, count: int
    ) -> tuple[list[EncryptedPostingElement], int]:
        """One fetchable slice of the principal's readable sub-list.

        Returns ``(elements[offset : offset + count], readable_length)``
        in O(log n + count) on a cached view — the fetch hot path never
        materialises the rest of the sub-list.
        """
        view = self._fresh_view(merged, principal)
        return view.data.slice(offset, count), len(view.data)

    def get(
        self, merged: MergedPostingList, principal: str
    ) -> list[EncryptedPostingElement]:
        """The principal's FULL readable sub-list of *merged*, in list order.

        O(view) materialisation — kept for tests and diagnostics; the
        fetch path uses :meth:`slice`.
        """
        return list(self._fresh_view(merged, principal).data)

    def _build(self, merged: MergedPostingList, principal: str) -> _ReadableView:
        self.stats.full_builds += 1
        memberships = self._keys.membership_snapshot(principal)
        sort_key = MergedPostingList.sort_key
        data = OrderStatList.from_sorted(
            (sort_key(e), e) for e in merged.elements if e.group in memberships
        )
        return _ReadableView(data, merged.version, memberships)

    def _store(self, cache_key: tuple[int, str], view: _ReadableView) -> None:
        self._views[cache_key] = view
        self._views.move_to_end(cache_key)
        self._by_list.setdefault(cache_key[0], set()).add(cache_key[1])
        while len(self._views) > self.capacity:
            evicted_key, _ = self._views.popitem(last=False)
            self._forget(evicted_key)
            self.stats.evictions += 1

    def _forget(self, cache_key: tuple[int, str]) -> None:
        principals = self._by_list.get(cache_key[0])
        if principals is not None:
            principals.discard(cache_key[1])
            if not principals:
                del self._by_list[cache_key[0]]

    # -- write path (called by the server AFTER the list mutated) -------------

    def note_insert(
        self,
        merged: MergedPostingList,
        element: EncryptedPostingElement,
        replication: bool = False,
    ) -> None:
        """Patch cached views of *merged* for a just-inserted element.

        Only views that were current immediately before this mutation
        (``view.version == merged.version - 1``) are patched; anything
        further behind rebuilds lazily on next access.  *replication*
        marks patches driven by replica catch-up/repair ops so
        :class:`ViewStats` can attribute the churn.
        """
        for principal in self._by_list.get(merged.list_id, ()):
            view = self._views[(merged.list_id, principal)]
            if view.version != merged.version - 1:
                continue
            # Patch against the view's own membership snapshot so the view
            # stays internally consistent; a concurrent enroll/revoke is
            # caught by the snapshot comparison on the next read.
            if element.group in view.memberships:
                # OrderStatList.insert places ties after existing equals,
                # mirroring MergedPostingList.add_sorted_by_trs, so the
                # view's relative order always matches the list's.
                view.data.insert(MergedPostingList.sort_key(element), element)
                self.stats.incremental_updates += 1
                if replication:
                    self.stats.replication_patches += 1
            view.version = merged.version

    def note_delete(
        self,
        merged: MergedPostingList,
        element: EncryptedPostingElement,
        replication: bool = False,
    ) -> None:
        """Patch cached views of *merged* for a just-removed element."""
        for principal in self._by_list.get(merged.list_id, ()):
            view = self._views[(merged.list_id, principal)]
            if view.version != merged.version - 1:
                continue
            if element.group in view.memberships:
                key = MergedPostingList.sort_key(element)
                low = view.data.bisect_left(key)
                high = view.data.bisect_right(key)
                for position, candidate in enumerate(
                    view.data.slice(low, high - low), start=low
                ):
                    if candidate.ciphertext == element.ciphertext:
                        view.data.pop(position)
                        self.stats.incremental_updates += 1
                        if replication:
                            self.stats.replication_patches += 1
                        break
                else:
                    # The element should have been in the view; treat the
                    # inconsistency as staleness rather than guessing.
                    continue
            view.version = merged.version

    # -- recovery (persistence support; see repro.persist) ---------------------

    def spillable(
        self, limit: int
    ) -> list[tuple[int, str, int, frozenset[str]]]:
        """Up to *limit* hottest views as ``(list_id, principal, version,
        memberships)``, coldest first (the adoption order that rebuilds
        the same LRU).  The caller checks version freshness against its
        lists — a stale view is not worth spilling."""
        if limit <= 0:
            return []
        return [
            (list_id, principal, view.version, view.memberships)
            for (list_id, principal), view in list(self._views.items())[-limit:]
        ]

    def adopt_view(
        self,
        merged: MergedPostingList,
        principal: str,
        memberships: Iterable[str],
        elements: Iterable[EncryptedPostingElement],
        version: int,
    ) -> None:
        """Install a spilled view rebuilt from persisted state.

        *elements* are the principal's readable elements in merged-list
        order and *memberships* is the membership snapshot the view was
        built under, both as recorded at snapshot time.  The view enters
        the LRU like any built view; freshness checks on the next read
        compare against the *current* list version and key service, so a
        membership change or write since the snapshot rebuilds it — a
        warm restore can never serve under stale access rights.
        """
        sort_key = MergedPostingList.sort_key
        data = OrderStatList.from_sorted((sort_key(e), e) for e in elements)
        view = _ReadableView(data, version, frozenset(memberships))
        self._store((merged.list_id, principal), view)
        self.stats.warm_restores += 1

    def invalidate_list(self, list_id: int) -> None:
        """Drop every cached view of one list (bulk loads, external edits)."""
        for principal in list(self._by_list.get(list_id, ())):
            del self._views[(list_id, principal)]
            self._forget((list_id, principal))
            self.stats.invalidations += 1

    def clear(self) -> None:
        self._views.clear()
        self._by_list.clear()
