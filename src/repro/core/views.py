"""Incremental per-principal readable views over merged posting lists.

A fetch serves a TRS-ordered slice of the elements a principal may read.
Deriving that readable sub-list from scratch costs O(list) per request;
caching it keyed on the list version (the seed's approach) helps only
between mutations — any insert or delete forced a full rebuild on the
next fetch, which under a mixed read/write workload degenerates back to
O(list) per mutation.

:class:`ReadableViewIndex` keeps the readable sub-lists *incrementally*:
server mutators notify it of each insert/delete, and a cached view whose
version is exactly one behind the list is patched — an O(log n) bisect
on the view's parallel TRS-key list plus one positional insert/delete
(an O(view) tail shift, but no re-scan, no membership checks, no key
rederivation) — instead of rebuilt from the full merged list.  Views that fall further behind — e.g. after a bulk
load, or when tests mutate list internals directly — fail the version
check and rebuild lazily on next access, so correctness never depends on
every mutation being routed through the notifications.

Freshness is two-dimensional: a cached view is served only while the
list *version* and the principal's *membership snapshot* both match, so
an enroll or revoke between requests forces a rebuild — a revoked
principal can never keep reading a group's elements out of a cached
view.

Memory is bounded by an LRU over ``(list_id, principal)`` pairs: a
deployment with millions of users cannot hold one materialised sub-list
per principal per list, so cold pairs are evicted and rebuilt on demand.
:class:`ViewStats` counts hits, builds, incremental patches and
evictions; benchmarks assert on it to prove mutations no longer trigger
rebuilds.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from dataclasses import dataclass

from repro.crypto.keys import GroupKeyService
from repro.errors import ConfigurationError
from repro.index.postings import EncryptedPostingElement, MergedPostingList


@dataclass
class ViewStats:
    """Operation counters of a :class:`ReadableViewIndex`."""

    hits: int = 0
    misses: int = 0
    full_builds: int = 0
    stale_rebuilds: int = 0
    incremental_updates: int = 0
    evictions: int = 0
    invalidations: int = 0


class _ReadableView:
    """One materialised readable sub-list with its parallel sort keys.

    ``memberships`` is the principal's group set at build time: a view is
    only fresh while both the list version AND the memberships match, so
    an enroll/revoke between requests forces a rebuild instead of serving
    (or withholding) elements under stale access rights.
    """

    __slots__ = ("elements", "keys", "version", "memberships")

    def __init__(
        self,
        elements: list[EncryptedPostingElement],
        keys: list[float],
        version: int,
        memberships: frozenset[str],
    ) -> None:
        self.elements = elements
        self.keys = keys
        self.version = version
        self.memberships = memberships


class ReadableViewIndex:
    """LRU-bounded, incrementally maintained readable sub-lists."""

    def __init__(self, key_service: GroupKeyService, capacity: int = 256) -> None:
        if capacity < 1:
            raise ConfigurationError("view capacity must be >= 1")
        self._keys = key_service
        self.capacity = capacity
        self._views: OrderedDict[tuple[int, str], _ReadableView] = OrderedDict()
        # list_id -> principals with a cached view; lets mutators find the
        # views of one list without scanning the whole LRU.
        self._by_list: dict[int, set[str]] = {}
        self.stats = ViewStats()

    def __len__(self) -> int:
        return len(self._views)

    def cached_pairs(self) -> list[tuple[int, str]]:
        """Cached ``(list_id, principal)`` pairs, LRU order (oldest first)."""
        return list(self._views)

    # -- read path -----------------------------------------------------------

    def get(
        self, merged: MergedPostingList, principal: str
    ) -> list[EncryptedPostingElement]:
        """The principal's readable sub-list of *merged*, in list order."""
        cache_key = (merged.list_id, principal)
        view = self._views.get(cache_key)
        if (
            view is not None
            and view.version == merged.version
            and view.memberships == self._keys.membership_snapshot(principal)
        ):
            self.stats.hits += 1
            self._views.move_to_end(cache_key)
            return view.elements
        if view is None:
            self.stats.misses += 1
        else:
            self.stats.stale_rebuilds += 1
        view = self._build(merged, principal)
        self._store(cache_key, view)
        return view.elements

    def _build(self, merged: MergedPostingList, principal: str) -> _ReadableView:
        self.stats.full_builds += 1
        memberships = self._keys.membership_snapshot(principal)
        elements = [e for e in merged.elements if e.group in memberships]
        keys = [MergedPostingList.sort_key(e) for e in elements]
        return _ReadableView(elements, keys, merged.version, memberships)

    def _store(self, cache_key: tuple[int, str], view: _ReadableView) -> None:
        self._views[cache_key] = view
        self._views.move_to_end(cache_key)
        self._by_list.setdefault(cache_key[0], set()).add(cache_key[1])
        while len(self._views) > self.capacity:
            evicted_key, _ = self._views.popitem(last=False)
            self._forget(evicted_key)
            self.stats.evictions += 1

    def _forget(self, cache_key: tuple[int, str]) -> None:
        principals = self._by_list.get(cache_key[0])
        if principals is not None:
            principals.discard(cache_key[1])
            if not principals:
                del self._by_list[cache_key[0]]

    # -- write path (called by the server AFTER the list mutated) -------------

    def note_insert(
        self, merged: MergedPostingList, element: EncryptedPostingElement
    ) -> None:
        """Patch cached views of *merged* for a just-inserted element.

        Only views that were current immediately before this mutation
        (``view.version == merged.version - 1``) are patched; anything
        further behind rebuilds lazily on next access.
        """
        for principal in self._by_list.get(merged.list_id, ()):
            view = self._views[(merged.list_id, principal)]
            if view.version != merged.version - 1:
                continue
            # Patch against the view's own membership snapshot so the view
            # stays internally consistent; a concurrent enroll/revoke is
            # caught by the snapshot comparison on the next get().
            if element.group in view.memberships:
                key = MergedPostingList.sort_key(element)
                # bisect_right mirrors MergedPostingList.add_sorted_by_trs:
                # ties land after existing equals in both, so the view's
                # relative order always matches the list's.
                position = bisect.bisect_right(view.keys, key)
                view.keys.insert(position, key)
                view.elements.insert(position, element)
                self.stats.incremental_updates += 1
            view.version = merged.version

    def note_delete(
        self, merged: MergedPostingList, element: EncryptedPostingElement
    ) -> None:
        """Patch cached views of *merged* for a just-removed element."""
        for principal in self._by_list.get(merged.list_id, ()):
            view = self._views[(merged.list_id, principal)]
            if view.version != merged.version - 1:
                continue
            if element.group in view.memberships:
                key = MergedPostingList.sort_key(element)
                low = bisect.bisect_left(view.keys, key)
                high = bisect.bisect_right(view.keys, key)
                for position in range(low, high):
                    if view.elements[position].ciphertext == element.ciphertext:
                        del view.elements[position]
                        del view.keys[position]
                        self.stats.incremental_updates += 1
                        break
                else:
                    # The element should have been in the view; treat the
                    # inconsistency as staleness rather than guessing.
                    continue
            view.version = merged.version

    def invalidate_list(self, list_id: int) -> None:
        """Drop every cached view of one list (bulk loads, external edits)."""
        for principal in list(self._by_list.get(list_id, ())):
            del self._views[(list_id, principal)]
            self._forget((list_id, principal))
            self.stats.invalidations += 1

    def clear(self) -> None:
        self._views.clear()
        self._by_list.clear()
