"""Relevance score computation (paper §3.2, Eq. 3 and Eq. 4).

Zerber+R ranks single-term queries by normalized term frequency
``rscore(q, d) = TF_q / |d|`` (Eq. 4) — deliberately *without* IDF, which
would leak collection statistics.  The TFxIDF form (Eq. 3) is provided for
the ordinary-index baseline and the multi-term accuracy study.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.text.analysis import DocumentStats
from repro.text.vocabulary import Vocabulary


def rscore(tf: int, doc_length: int) -> float:
    """Single-term relevance score ``TF / |d|`` (Eq. 4)."""
    if doc_length <= 0:
        raise ValueError("document length must be positive")
    if not 0 <= tf <= doc_length:
        raise ValueError("tf must be in [0, doc_length]")
    return tf / doc_length


def tfidf_rscore(
    query_terms: Iterable[str], doc: DocumentStats, vocabulary: Vocabulary
) -> float:
    """TFxIDF relevance of *doc* for a multi-term query (Eq. 3).

    Terms missing from the vocabulary contribute nothing (a live engine
    would never have indexed them).
    """
    score = 0.0
    for term in query_terms:
        tf = doc.tf(term)
        if tf == 0 or term not in vocabulary:
            continue
        score += rscore(tf, doc.length) * vocabulary.idf(term)
    return score


def extract_term_scores(
    documents: Iterable[DocumentStats],
) -> dict[str, list[float]]:
    """Per-term relevance scores over a document set (RSTF training input).

    Returns ``term -> [rscore(term, d) for every d containing term]``.
    This is the "relevance scores for each term-document pair" extraction
    of paper §5.1.1.
    """
    scores: dict[str, list[float]] = {}
    for doc in documents:
        if doc.length == 0:
            raise ValueError(f"document {doc.doc_id!r} is empty")
        for term, tf in doc.counts.items():
            scores.setdefault(term, []).append(tf / doc.length)
    return scores


def scores_by_term_for_corpus(
    documents: Iterable[DocumentStats], terms: Iterable[str]
) -> Mapping[str, list[float]]:
    """Like :func:`extract_term_scores` restricted to *terms* (memory bound)."""
    wanted = set(terms)
    scores: dict[str, list[float]] = {term: [] for term in wanted}
    for doc in documents:
        for term, tf in doc.counts.items():
            if term in wanted:
                scores[term].append(tf / doc.length)
    return scores
