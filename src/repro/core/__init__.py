"""Zerber+R core: RSTF, σ selection, confidentiality, server/client/protocol."""

from repro.core.scoring import rscore, extract_term_scores, tfidf_rscore
from repro.core.rstf import Rstf, RstfModel, RstfTrainer, train_rstf
from repro.core.sigma import (
    SigmaSelection,
    default_sigma_grid,
    heuristic_sigma,
    select_sigma,
    trs_variance_for_sigma,
)
from repro.core.confidentiality import (
    attribution_probabilities,
    audit_merge_plan,
    probability_amplification,
    ConfidentialityAudit,
)
from repro.core.protocol import (
    BatchFetchRequest,
    BatchFetchResponse,
    BatchQueryTrace,
    FetchRequest,
    FetchResponse,
    QueryTrace,
    ResponsePolicy,
)
from repro.core.server import ZerberRServer
from repro.core.views import ReadableViewIndex, ViewStats
from repro.core.client import ZerberRClient, MultiQueryResult, QueryResult
from repro.core.system import ZerberRSystem, SystemConfig

__all__ = [
    "rscore",
    "extract_term_scores",
    "tfidf_rscore",
    "Rstf",
    "RstfModel",
    "RstfTrainer",
    "train_rstf",
    "SigmaSelection",
    "default_sigma_grid",
    "heuristic_sigma",
    "select_sigma",
    "trs_variance_for_sigma",
    "attribution_probabilities",
    "audit_merge_plan",
    "probability_amplification",
    "ConfidentialityAudit",
    "BatchFetchRequest",
    "BatchFetchResponse",
    "BatchQueryTrace",
    "FetchRequest",
    "FetchResponse",
    "QueryTrace",
    "ResponsePolicy",
    "ZerberRServer",
    "ReadableViewIndex",
    "ViewStats",
    "ZerberRClient",
    "MultiQueryResult",
    "QueryResult",
    "ZerberRSystem",
    "SystemConfig",
]
