"""Zerber+R core: RSTF, σ selection, confidentiality, server/client/protocol."""

from repro.core.scoring import rscore, extract_term_scores, tfidf_rscore
from repro.core.rstf import Rstf, RstfModel, RstfTrainer, train_rstf
from repro.core.sigma import (
    SigmaSelection,
    default_sigma_grid,
    heuristic_sigma,
    select_sigma,
    trs_variance_for_sigma,
)
from repro.core.confidentiality import (
    attribution_probabilities,
    audit_merge_plan,
    probability_amplification,
    ConfidentialityAudit,
)
from repro.core.eventloop import (
    BACKGROUND,
    FOREGROUND,
    MAINTENANCE,
    EventHandle,
    EventLoop,
    PeriodicTask,
)
from repro.core.protocol import (
    BackpressureSignal,
    BatchFetchRequest,
    BatchFetchResponse,
    BatchQueryTrace,
    CoalescedBatchRequest,
    CoalescedBatchResponse,
    FetchRequest,
    FetchResponse,
    QueryTrace,
    ResponsePolicy,
)
from repro.core.server import ZerberRServer
from repro.core.ordstat import OrderStatList
from repro.core.views import ReadableViewIndex, ViewStats
from repro.core.client import (
    ClientQuerySession,
    MultiQueryResult,
    QueryResult,
    ZerberRClient,
)
from repro.core.placement import (
    HeatWeightedPlacement,
    LeastLoadedReads,
    PlacementPolicy,
    PrimaryReads,
    ReadSelector,
    RotatingReads,
    RoundRobinPlacement,
    load_balance_ratio,
)
from repro.core.replication import (
    FailoverEvent,
    LagModel,
    ReadConsistency,
    ReplicationLog,
    ReplicationManager,
    ReplicationOp,
    ReplicationStats,
    WriteConsistency,
)
from repro.core.router import Coordinator, CoordinatorStats
from repro.core.system import ZerberRSystem, SystemConfig

__all__ = [
    "rscore",
    "extract_term_scores",
    "tfidf_rscore",
    "Rstf",
    "RstfModel",
    "RstfTrainer",
    "train_rstf",
    "SigmaSelection",
    "default_sigma_grid",
    "heuristic_sigma",
    "select_sigma",
    "trs_variance_for_sigma",
    "attribution_probabilities",
    "audit_merge_plan",
    "probability_amplification",
    "ConfidentialityAudit",
    "FOREGROUND",
    "BACKGROUND",
    "MAINTENANCE",
    "EventHandle",
    "EventLoop",
    "PeriodicTask",
    "BackpressureSignal",
    "BatchFetchRequest",
    "BatchFetchResponse",
    "BatchQueryTrace",
    "CoalescedBatchRequest",
    "CoalescedBatchResponse",
    "FetchRequest",
    "FetchResponse",
    "QueryTrace",
    "ResponsePolicy",
    "ZerberRServer",
    "OrderStatList",
    "ReadableViewIndex",
    "ViewStats",
    "ClientQuerySession",
    "ZerberRClient",
    "MultiQueryResult",
    "QueryResult",
    "PlacementPolicy",
    "RoundRobinPlacement",
    "HeatWeightedPlacement",
    "ReadSelector",
    "PrimaryReads",
    "RotatingReads",
    "LeastLoadedReads",
    "load_balance_ratio",
    "FailoverEvent",
    "LagModel",
    "ReadConsistency",
    "ReplicationLog",
    "ReplicationManager",
    "ReplicationOp",
    "ReplicationStats",
    "WriteConsistency",
    "Coordinator",
    "CoordinatorStats",
    "ZerberRSystem",
    "SystemConfig",
]
