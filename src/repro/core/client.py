"""The Zerber+R client: inserting documents and running top-k queries.

Insert path (paper §5): "To index a document, its owner extracts the
document's terms, builds their elements, encrypts them, calculates TRS
values, and sends encrypted posting elements to the server along with the
IDs of the merged posting list that the new element belongs to, the
document's group and the TRS value."

Query path (paper §5.2): fetch the head of the merged list, decrypt what
the user's group keys open, filter for the queried term, and follow up with
doubled response sizes until ``k`` matches are held or the list is
exhausted.  The client returns results ranked by the *decrypted* relevance
score — identical to TRS order for a single term because the RSTF is
monotonic (§4.2 property 3).

Multi-term queries run the same per-term doubling protocol for every term
*in lockstep*: each round bundles the next slice of every still-active
term into one :class:`~repro.core.protocol.BatchFetchRequest`, so a round
costs one server round-trip instead of one per term.  The per-term fetch
sequence (offsets, counts, stop conditions) is identical to running
:meth:`ZerberRClient.query` term by term — batching changes latency and
request counts, never results or bytes.

The lockstep state machine is reified as :class:`ClientQuerySession` so a
query can also be driven *externally*: a
:class:`~repro.core.router.Coordinator` holds many users' sessions and
coalesces their pending slices into shared per-shard server calls.  The
self-driven and coordinator-driven paths share every line of step logic,
so their results are identical by construction.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import TypeVar

from repro.core.protocol import (
    BatchFetchRequest,
    BatchFetchResponse,
    BatchQueryTrace,
    FetchRequest,
    FetchResponse,
    QueryTrace,
    ResponsePolicy,
)
from repro.core.rstf import RstfModel
from repro.core.server import ZerberRServer
from repro.crypto.cipher import NonceSequence, StreamCipher
from repro.crypto.keys import GroupKeyService
from repro.errors import (
    ProtocolError,
    QuorumWriteUnavailableError,
    UnknownTermError,
)
from repro.obs.instruments import ClientInstruments, Telemetry
from repro.obs.trace import Span
from repro.index.merge import MergePlan
from repro.index.postings import EncryptedPostingElement, PostingElement
from repro.text.analysis import DocumentStats

_W = TypeVar("_W")


@dataclass(frozen=True)
class RankedHit:
    """One decrypted query hit."""

    doc_id: str
    rscore: float
    group: str


def skim_plaintexts(
    elements: Sequence[EncryptedPostingElement],
    cipher_for: Callable[[str], StreamCipher],
    readable: set[str] | frozenset[str] | None = None,
) -> tuple[list[bytes | None], int]:
    """Batch-decrypt a fetched slice, one entry per element in order.

    Groups the elements per owning group and runs one
    :meth:`~repro.crypto.cipher.StreamCipher.try_decrypt_many` call per
    group (``cipher_for(group)`` supplies the cipher), so the skim costs
    one cipher call per readable group rather than one per element.
    Elements whose group is not in *readable* (``None`` = skim all) and
    elements that fail authentication yield ``None``.

    Returns the plaintexts plus this batch's decrypt-memo hit count —
    counted here with two attribute reads per touched cipher, so the
    telemetry layer never has to re-walk the caller's cipher table on
    the skim hot path.
    """
    by_group: dict[str, list[int]] = {}
    for index, element in enumerate(elements):
        if readable is None or element.group in readable:
            by_group.setdefault(element.group, []).append(index)
    plaintexts: list[bytes | None] = [None] * len(elements)
    memo_hits = 0
    for group, indices in by_group.items():
        cipher = cipher_for(group)
        hits_before = cipher.memo_hits
        decrypted = cipher.try_decrypt_many(
            [elements[i].ciphertext for i in indices]
        )
        memo_hits += cipher.memo_hits - hits_before
        for i, plaintext in zip(indices, decrypted):
            plaintexts[i] = plaintext
    return plaintexts, memo_hits


@dataclass(frozen=True)
class QueryResult:
    """Top-k hits plus the session's cost trace."""

    hits: tuple[RankedHit, ...]
    trace: QueryTrace

    def doc_ids(self) -> list[str]:
        return [hit.doc_id for hit in self.hits]


@dataclass(frozen=True)
class MultiQueryResult:
    """Batched multi-term result: aggregate ranking plus cost traces.

    ``traces`` holds one per-term :class:`QueryTrace` (slice-level
    accounting, comparable to sequential per-term queries);
    ``batch_trace`` holds the session-level round-trip accounting.
    """

    ranked: tuple[tuple[str, float], ...]
    traces: tuple[QueryTrace, ...]
    batch_trace: BatchQueryTrace

    def doc_ids(self) -> list[str]:
        return [doc_id for doc_id, _ in self.ranked]


class _TermSession:
    """Mutable state of one term's doubling protocol.

    Holds exactly what :meth:`ZerberRClient.query`'s loop used to keep in
    locals, so the single-term and batched multi-term paths share one
    step function and cannot drift apart.
    """

    __slots__ = (
        "term",
        "list_id",
        "k",
        "policy",
        "max_requests",
        "trace",
        "hits",
        "hit_trs",
        "offset",
        "request_number",
        "done",
    )

    def __init__(
        self,
        term: str,
        list_id: int,
        k: int,
        policy: ResponsePolicy,
        max_requests: int,
    ) -> None:
        self.term = term
        self.list_id = list_id
        self.k = k
        self.policy = policy
        self.max_requests = max_requests
        self.trace = QueryTrace(term=term, k=k)
        self.hits: list[RankedHit] = []
        self.hit_trs: list[float] = []
        self.offset = 0
        self.request_number = 0
        # max_requests < 1 means "issue no requests at all" (the old
        # for-range loop's semantics): empty, unsatisfied result.
        self.done = max_requests < 1

    def next_request(
        self,
        principal: str,
        min_version: int | None = None,
        trace_id: int | None = None,
    ) -> FetchRequest:
        return FetchRequest(
            principal=principal,
            list_id=self.list_id,
            offset=self.offset,
            count=self.policy.response_size(self.request_number),
            min_version=min_version,
            trace_id=trace_id,
        )

    def ranked_hits(self) -> tuple[RankedHit, ...]:
        # TRS order equals rscore order per term (monotonic RSTF), but the
        # decrypted scores are the ground truth — sort defensively and trim.
        self.hits.sort(key=lambda h: (-h.rscore, h.doc_id))
        return tuple(self.hits[: self.k])


class ClientQuerySession:
    """A multi-term query session as a resumable object.

    One instance is one user's in-flight query: it exposes the next round's
    fetch slices (:meth:`pending_requests`) and absorbs their responses
    (:meth:`deliver`), holding all per-term doubling state in between.
    :meth:`ZerberRClient.query_multi_batched` drives one session against
    the client's own server; a :class:`~repro.core.router.Coordinator`
    drives *many* sessions in lockstep, coalescing their slices into shared
    per-shard envelopes.  Either driver feeds the identical step logic
    (:meth:`ZerberRClient._absorb_response`), so results cannot depend on
    who drives.
    """

    def __init__(
        self, client: "ZerberRClient", sessions: list[_TermSession], k: int
    ) -> None:
        self._client = client
        self._sessions = sessions
        self._k = k
        self.principal = client.principal
        self.batch_trace = BatchQueryTrace(
            terms=tuple(s.term for s in sessions), k=k
        )
        # The session root span outlives any call frame (a coordinator
        # advances it across many scheduling ticks), so it is the one
        # sanctioned begin/end trace pair; everything below it uses the
        # context-manager span API.  trace_id rides every FetchRequest.
        self._tracer = client._obs.tracer
        self.trace_id: int | None = None
        if client._obs.enabled:
            self.trace_id = self._tracer.begin_trace(
                "query",
                principal=self.principal,
                terms=len(sessions),
                k=k,
            )
        self.rounds = 0

    @property
    def backend(self) -> ZerberRServer:
        """The server/cluster the owning client is bound to.

        A coordinator checks this at submit time: scheduling a session
        whose client talks to a *different* backend would silently answer
        it from the wrong index.
        """
        return self._client._server

    @property
    def done(self) -> bool:
        return all(s.done for s in self._sessions)

    def pending_requests(self) -> tuple[FetchRequest, ...]:
        """Next slice of every still-active term, in term order.

        Each request carries the owning client's per-list version floor
        (``min_version``), so a coordinator that coalesces this session's
        slices with other sessions' still enforces *this* session's
        read-your-writes/monotonic-reads guarantees (shared slices are
        served at the max of the sharing sessions' floors).
        """
        return tuple(
            s.next_request(
                self.principal,
                self._client.version_floor(s.list_id),
                self.trace_id,
            )
            for s in self._sessions
            if not s.done
        )

    def deliver(self, responses: Sequence[FetchResponse]) -> None:
        """Absorb one round's responses (aligned with the pending order)."""
        active = [s for s in self._sessions if not s.done]
        if not active:
            raise ProtocolError("session has no pending requests")
        if len(responses) != len(active):
            raise ProtocolError(
                f"expected {len(active)} responses, got {len(responses)}"
            )
        # One span covers the whole round; it is named for the decrypt
        # skim that dominates it.  A span per term slice (inside
        # ``_decrypt_matches``) measurably ate the ``bench_hotpath``
        # instrumentation budget, and per-term element counts are already
        # on the ``crypto_skim_*`` counters.
        with self._tracer.span(
            "skim", trace=self.trace_id, slices=len(responses)
        ) as skim_span:
            self.batch_trace.record_round(
                BatchFetchResponse(responses=tuple(responses))
            )
            for session, response in zip(active, responses):
                self._client._absorb_response(session, response)
            self._client._flush_skim(skim_span)
        self.rounds += 1
        if self.done:
            self._tracer.end_trace(self.trace_id)

    def result(self) -> MultiQueryResult:
        """Aggregate ranking once every term session has finished.

        Scores aggregate by summation *without* IDF (the confidentiality
        trade-off the paper accepts, §3.2).
        """
        if not self.done:
            raise ProtocolError("query session still has active terms")
        self._tracer.end_trace(self.trace_id)  # no-op unless never delivered
        scores: dict[str, float] = {}
        for session in self._sessions:
            for hit in session.ranked_hits():
                scores[hit.doc_id] = scores.get(hit.doc_id, 0.0) + hit.rscore
        ranked = tuple(
            sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))[: self._k]
        )
        return MultiQueryResult(
            ranked=ranked,
            traces=tuple(s.trace for s in self._sessions),
            batch_trace=self.batch_trace,
        )


class ZerberRClient:
    """A group member that inserts into and queries a Zerber+R server."""

    def __init__(
        self,
        principal: str,
        key_service: GroupKeyService,
        server: ZerberRServer,
        rstf_model: RstfModel,
        merge_plan: MergePlan,
    ) -> None:
        self.principal = principal
        self._keys = key_service
        self._server = server
        self._rstf = rstf_model
        self._plan = merge_plan
        self._ciphers: dict[str, StreamCipher] = {}
        # Telemetry is discovered from the backend (duck-typed, like
        # primary_version below): a cluster deployed with a Telemetry
        # exposes it, a bare server does not, and the client stays usable
        # against both.  With no telemetry every instrument is a no-op.
        self.telemetry: Telemetry | None = getattr(server, "telemetry", None)
        self._obs = ClientInstruments(self.telemetry)
        # Cumulative skim tallies, kept as plain ints on the decrypt
        # path (one add per term slice) and mirrored into the bound
        # counters once per delivery round / query by
        # :meth:`_flush_skim` — two counter updates per round instead
        # of two per term, which is what the bench_hotpath
        # instrumentation budget demands.  The ``*_flushed`` watermarks
        # track what the registry has already seen.
        self._skim_elements = 0
        self._skim_memo_hits = 0
        self._skim_elements_flushed = 0
        self._skim_memo_flushed = 0
        # Session-consistency tokens: list_id -> highest replication-log
        # version this client has written or read (the floor its future
        # reads of the list must reflect — read-your-writes + monotonic
        # reads).  Stays empty against a bare unreplicated server, which
        # exposes neither primary_version nor response versions.
        self._version_floors: dict[int, int] = {}

    # -- session-consistency tokens ----------------------------------------------

    def version_floor(self, list_id: int) -> int | None:
        """The version floor this client's reads of *list_id* must meet.

        ``None`` until the client first writes the list or sees a
        versioned response for it.  The floor is stamped into every
        :class:`~repro.core.protocol.FetchRequest` the client (or a
        session it opened) issues, and a replicated backend repairs and
        re-serves any answer below it.
        """
        return self._version_floors.get(list_id)

    def _note_version(self, list_id: int, version: int | None) -> None:
        """Raise the floor of one list (floors only ever go up)."""
        if version is not None and version > self._version_floors.get(list_id, 0):
            self._version_floors[list_id] = version

    def _note_written(self, list_ids: Iterable[int]) -> None:
        """Record a write's acknowledged versions (read-your-writes).

        The backend's post-write log head bounds the written op's
        version; duck-typed so a bare :class:`ZerberRServer` (no
        ``primary_version``, no replication) keeps floor-free requests.
        """
        version_of = getattr(self._server, "primary_version", None)
        if version_of is None:
            return
        for list_id in dict.fromkeys(list_ids):
            self._note_version(list_id, version_of(list_id))

    # -- failover-aware write retry ------------------------------------------------

    def _failover_retry_budget(
        self, error: QuorumWriteUnavailableError
    ) -> int | None:
        """Ticks to park a refused write for, when an election can fix it.

        ``None`` means surface the error immediately: the backend has no
        failover election (bare server, or ``failover_after`` unset), no
        live replica exists to elect, or the list's primary is still
        reachable — then the refusal is a genuine ack shortfall that an
        election cannot repair.  Otherwise the election fires within
        ``failover_after`` replication ticks of the primary becoming
        unreachable; one extra tick covers a timer that starts on the
        tick the write was refused.
        """
        failover_after = getattr(self._server, "failover_after", None)
        replicas_of = getattr(self._server, "replicas_of", None)
        if (
            failover_after is None
            or replicas_of is None
            or getattr(self._server, "replication_tick", None) is None
        ):
            return None
        if not error.live_replicas:
            return None
        primary = replicas_of(error.list_id)[0]
        if (
            primary not in error.down_replicas
            and primary not in error.paused_replicas
        ):
            return None
        return int(failover_after) + 1

    def _write_with_failover_retry(self, op: Callable[[], _W]) -> _W:
        """Run a write op, parking through a pending failover election.

        A :class:`~repro.errors.QuorumWriteUnavailableError` is a clean
        no-op (nothing mutated, nothing logged), so retrying is safe.
        When the refusal names an unreachable primary and the backend
        runs failover elections, the write parks: replication ticks are
        driven until the election deposes the dead primary (bumping the
        epoch and promoting a live replica), then the op retries against
        the new primary.  If the budget elapses without the write going
        through — e.g. too few replicas live even after promotion — the
        last refusal surfaces unchanged.
        """
        try:
            return op()
        except QuorumWriteUnavailableError as error:
            budget = self._failover_retry_budget(error)
            if budget is None:
                raise
            tick: Callable[[], int] = getattr(self._server, "replication_tick")
            last = error
            for _ in range(budget):
                tick()
                try:
                    return op()
                except QuorumWriteUnavailableError as retry_error:
                    last = retry_error
            raise last

    # -- key plumbing -----------------------------------------------------------

    def _cipher(self, group: str) -> StreamCipher:
        cipher = self._ciphers.get(group)
        if cipher is None:
            cipher = self._keys.cipher_for(self.principal, group)
            self._ciphers[group] = cipher
        return cipher

    def _nonce_sequence(self, group: str) -> NonceSequence:
        # The key service owns THE sequence per (principal, group): two
        # clients for one principal (e.g. bound to different backends)
        # must continue one counter stream, never restart it — a restart
        # reuses nonces on different plaintexts.
        return self._keys.nonce_sequence(self.principal, group)

    def _unseen_trs(self, group: str, doc_id: str) -> Callable[[str], float]:
        """The paper's rule for training-unseen terms: a random TRS.

        Realised as PRF(term || doc id) under the group key: deterministic
        (re-inserting the same document is idempotent and concurrent
        clients agree) yet unique per posting element, so the TRS stream
        stays tie-free and uniform.  Order among an unseen term's elements
        is arbitrary — the accepted trade-off for terms "assumed to be
        rare" (§5.1.1).
        """
        prf = self._keys.unseen_term_prf(self.principal, group)
        return lambda term: prf.evaluate_unit(f"{term}\x00{doc_id}".encode())

    def _readable_groups(self) -> set[str]:
        return self._keys.memberships(self.principal)

    # -- inserting (paper §5) -----------------------------------------------------

    def build_element(
        self, term: str, doc: DocumentStats, group: str
    ) -> tuple[int, EncryptedPostingElement]:
        """Build one encrypted posting element with its target list id."""
        tf = doc.tf(term)
        if tf == 0:
            raise UnknownTermError(term)
        plain = PostingElement(
            term=term, doc_id=doc.doc_id, tf=tf, doc_length=doc.length
        )
        trs = self._rstf.transform(
            term, plain.rscore, unseen_trs=self._unseen_trs(group, doc.doc_id)
        )
        ciphertext = self._cipher(group).encrypt(
            plain.to_bytes(), self._nonce_sequence(group).next()
        )
        try:
            list_id = self._plan.list_of(term)
        except KeyError:
            raise UnknownTermError(term) from None
        return list_id, EncryptedPostingElement(
            ciphertext=ciphertext, group=group, trs=trs
        )

    def index_document(self, doc: DocumentStats, group: str) -> int:
        """Encrypt and upload every term of *doc*; returns elements sent."""
        items = [self.build_element(term, doc, group) for term in sorted(doc.counts)]
        sent = self._write_with_failover_retry(
            lambda: self._server.insert_many(self.principal, items)
        )
        self._note_written(list_id for list_id, _ in items)
        return sent

    def index_document_with_receipts(
        self, doc: DocumentStats, group: str
    ) -> list[tuple[int, bytes]]:
        """Like :meth:`index_document` but returns deletion receipts.

        Each receipt is ``(list_id, ciphertext)``; presenting it to
        :meth:`delete_document` removes the element.  The server never
        learns which document the receipts belong to.
        """
        items = [self.build_element(term, doc, group) for term in sorted(doc.counts)]
        self._write_with_failover_retry(
            lambda: self._server.insert_many(self.principal, items)
        )
        self._note_written(list_id for list_id, _ in items)
        return [(list_id, element.ciphertext) for list_id, element in items]

    def delete_document(self, receipts: Iterable[tuple[int, bytes]]) -> int:
        """Remove a previously inserted document by its receipts.

        Returns the number of elements actually removed (receipts for
        already-removed elements are counted as misses, not errors —
        deletion is idempotent).
        """
        removed = 0
        touched: list[int] = []
        for list_id, ciphertext in receipts:
            if self._write_with_failover_retry(
                lambda lid=list_id, ct=ciphertext: self._server.delete_element(
                    self.principal, lid, ct
                )
            ):
                removed += 1
                touched.append(list_id)
        self._note_written(touched)
        return removed

    # -- querying (paper §5.2) ------------------------------------------------------

    def _start_session(
        self, term: str, k: int, policy: ResponsePolicy | None, max_requests: int
    ) -> "_TermSession":
        if k < 1:
            raise ValueError("k must be >= 1")
        policy = policy if policy is not None else ResponsePolicy(initial_size=k)
        try:
            list_id = self._plan.list_of(term)
        except KeyError:
            raise UnknownTermError(term) from None
        return _TermSession(
            term=term,
            list_id=list_id,
            k=k,
            policy=policy,
            max_requests=max_requests,
        )

    def _absorb_response(
        self, session: "_TermSession", response: FetchResponse
    ) -> None:
        """Feed one fetch response into a term session (shared step logic)."""
        session.trace.record_response(response)
        # Monotonic reads: later fetches of this list — this session's
        # follow-ups or any future session — never go below this version.
        self._note_version(session.list_id, response.replica_version)
        session.offset += len(response.elements)
        session.request_number += 1
        matches, trs_values = self._decrypt_matches(response.elements, session.term)
        session.hits.extend(matches)
        session.hit_trs.extend(trs_values)
        if len(session.hits) >= session.k and self._topk_complete(
            session.hit_trs, session.k, response.elements
        ):
            session.trace.satisfied = True
            session.done = True
        elif response.exhausted:
            session.trace.satisfied = len(session.hits) >= session.k
            session.done = True
        elif session.request_number >= session.max_requests:
            session.done = True

    def query(
        self,
        term: str,
        k: int,
        policy: ResponsePolicy | None = None,
        max_requests: int = 64,
    ) -> QueryResult:
        """Single-term top-k with the doubling follow-up protocol.

        ``policy`` defaults to the paper's recommendation ``b = k``
        (§6.4).  ``max_requests`` is a safety valve against runaway loops;
        the doubling rule reaches any list length long before it triggers.
        """
        session = self._start_session(term, k, policy, max_requests)
        while not session.done:
            response = self._server.fetch(
                session.next_request(
                    self.principal, self.version_floor(session.list_id)
                )
            )
            self._absorb_response(session, response)
        if self._obs.enabled:
            self._flush_skim(None)
        return QueryResult(hits=session.ranked_hits(), trace=session.trace)

    @staticmethod
    def _topk_complete(
        hit_trs: list[float],
        k: int,
        last_elements: Sequence[EncryptedPostingElement],
    ) -> bool:
        """Whether no unfetched element can still enter the top-k.

        The merged list is served in descending TRS order, so every
        unfetched element's TRS is <= the last fetched one.  If the k-th
        best matched TRS is at least the boundary, later elements cannot
        strictly beat the current top-k.  TRS values are tie-free by
        construction (continuous RSTF outputs; unseen terms get a
        per-element PRF value), so treating equality as complete is safe
        up to float collisions.
        """
        if not last_elements:
            return True
        boundary = last_elements[-1].trs
        if boundary is None:
            return True
        kth = sorted(hit_trs, reverse=True)[k - 1]
        return kth >= boundary

    def _decrypt_matches(
        self, elements: Sequence[EncryptedPostingElement], term: str
    ) -> tuple[list[RankedHit], list[float]]:
        """Decrypt readable elements and keep those matching *term*.

        Returns the hits plus their server-visible TRS values (needed for
        the completeness check of :meth:`_topk_complete`).  The skim is
        batched per group through :func:`skim_plaintexts`, so a fetched
        slice costs one cipher call per readable group rather than one
        per element.
        """
        plaintexts, memo_hits = skim_plaintexts(
            elements, self._cipher, self._readable_groups()
        )
        if self._obs.enabled:
            self._skim_elements += len(elements)
            self._skim_memo_hits += memo_hits
        matches: list[RankedHit] = []
        trs_values: list[float] = []
        for element, plaintext in zip(elements, plaintexts):
            if plaintext is None:
                continue
            posting = PostingElement.from_bytes(plaintext)
            if posting.term == term:
                matches.append(
                    RankedHit(
                        doc_id=posting.doc_id,
                        rscore=posting.rscore,
                        group=element.group,
                    )
                )
                trs_values.append(element.trs if element.trs is not None else 0.0)
        return matches, trs_values

    def _flush_skim(self, span: Span | None) -> None:
        """Mirror the plain-int skim tallies into the bound counters.

        Called once per delivery round (and once per self-driven
        :meth:`query`) instead of once per term slice — the watermark
        diff keeps the registry totals exact while taking the counter
        updates off the per-slice decrypt path.
        """
        elements = self._skim_elements - self._skim_elements_flushed
        if elements:
            self._skim_elements_flushed = self._skim_elements
            self._obs.skim_elements.inc(elements)
        memo = self._skim_memo_hits - self._skim_memo_flushed
        if memo:
            self._skim_memo_flushed = self._skim_memo_hits
            self._obs.skim_memo_hits.inc(memo)
            if span is not None:
                span.annotate(memo_hits=memo)

    def query_multi_batched(
        self,
        terms: Iterable[str],
        k: int,
        policy: ResponsePolicy | None = None,
        max_requests: int = 64,
    ) -> MultiQueryResult:
        """Multi-term query over the batched fetch protocol.

        Runs every term's doubling protocol in lockstep: each round issues
        one :class:`BatchFetchRequest` carrying the next slice of every
        still-active term, so the session costs ``max_t rounds(t)``
        round-trips instead of ``Σ_t rounds(t)``.  Per-term offsets,
        counts and stop conditions are identical to :meth:`query`, so
        hits, scores and bytes shipped match the sequential path exactly.

        Scores aggregate by summation *without* IDF (the confidentiality
        trade-off the paper accepts, §3.2).
        """
        session = self.open_multi_session(
            terms, k, policy=policy, max_requests=max_requests
        )
        while not session.done:
            batch = BatchFetchRequest(
                principal=self.principal, requests=session.pending_requests()
            )
            session.deliver(self._server.batch_fetch(batch).responses)
        return session.result()

    def open_multi_session(
        self,
        terms: Iterable[str],
        k: int,
        policy: ResponsePolicy | None = None,
        max_requests: int = 64,
    ) -> ClientQuerySession:
        """Open a multi-term query session without driving it.

        The caller (usually a :class:`~repro.core.router.Coordinator`)
        repeatedly reads :meth:`ClientQuerySession.pending_requests`,
        fetches them however it likes, and feeds the responses back via
        :meth:`ClientQuerySession.deliver`.
        """
        sessions = [
            self._start_session(term, k, policy, max_requests) for term in terms
        ]
        return ClientQuerySession(self, sessions, k)

    def query_multi(
        self,
        terms: Iterable[str],
        k: int,
        policy: ResponsePolicy | None = None,
    ) -> tuple[list[tuple[str, float]], list[QueryTrace]]:
        """Multi-term query as per-term top-k sessions (§3.2).

        Thin compatibility wrapper over :meth:`query_multi_batched` — same
        results and per-term traces, one batched server call per round.
        """
        result = self.query_multi_batched(terms, k, policy=policy)
        return list(result.ranked), list(result.traces)
