"""Asynchronous replica maintenance: logs, lag, read-repair, anti-entropy.

The seed cluster *faked* replication: every insert/delete applied to all
replicas synchronously inside the write call, so replicas could never
diverge and "replication" bought availability only.  This module gives
:class:`~repro.core.cluster.ServerCluster` a real replication data plane:

* each merged list has a **primary** replica (the first server in its
  placement tuple) and a monotonically versioned :class:`ReplicationLog`;
* a write applies to the primary immediately (that is the acknowledged
  durable copy — the op also lives in the log until every replica holds
  it) and is *recorded* as a :class:`ReplicationOp` with the next log
  sequence number;
* followers receive recorded ops asynchronously through a tick-driven
  scheduler embedded in :class:`ReplicationManager`: each op becomes due
  ``LagModel.delay_for(server)`` ticks after it was recorded, and
  :meth:`ReplicationManager.tick` applies every due op in log order;
* a follower can be **paused** (network partition): deliveries to it are
  held — not dropped — until :meth:`ReplicationManager.resume`;
* an **anti-entropy sweep** (every ``anti_entropy_every`` ticks) force-
  syncs every reachable stale follower, bounding worst-case staleness
  even for lists that nobody reads.

Version / log invariants
------------------------

1. ``head_seq(list)`` increments by exactly one per recorded op (insert
   or delete); it is the version of the primary's state, because a write
   applies to the primary in the same call that records the op.
2. ``applied(list, server)`` is the number of log ops server has applied.
   Every replica's state is always a *prefix* of the log: ops are
   delivered strictly in sequence order, per (list, server) FIFO, and
   nothing else mutates a replicated list (bulk loads and migrations go
   through :meth:`record_synchronous` / :meth:`register_replica`, which
   keep the prefix property by construction).
3. ``base_seq(list) <= min(applied(list, s) for s in replicas(list))`` —
   the log retains at least every op some current replica still lacks,
   so any reachable replica can always be caught up from the log alone
   (read-repair, anti-entropy, migration cut-over), even if the primary
   is down.  Ops at or below the minimum applied version are truncated.
4. Staleness of a replica is ``head_seq - applied``; it is what fetch
   responses expose as the serving replica's
   :attr:`~repro.core.protocol.FetchResponse.replica_version` and what
   read-repair keys on.

With a zero lag model, no paused follower and no backlog, the manager
reports :meth:`is_synchronous` and the cluster takes the seed's
synchronous write path verbatim (followers mutate inline, versions
advance in lockstep via :meth:`record_synchronous`) — the default
configuration is byte-identical to the pre-replication cluster.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, ProtocolError
from repro.index.postings import EncryptedPostingElement
from repro.obs.instruments import ReplicationInstruments

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.server import ZerberRServer


class ReadConsistency(Enum):
    """Tunable read consistency of cluster fetches.

    ``ONE``
        Serve from whichever replica routing picked, as-is — fastest,
        possibly stale.  Divergence is still *detected* (the response
        version is compared against the log head) and triggers catch-up
        of the stale follower, but the stale response is returned.
    ``PRIMARY``
        Strong reads (the default, and the seed's effective behaviour):
        if the serving replica is behind the log head, it is caught up
        from the log when reachable, and the slice is re-served — from
        the repaired replica, or from the primary — so the response
        reflects every acknowledged write whenever any reachable replica
        can be brought to the head.
    ``QUORUM``
        Version-max across a majority: the read consults the applied
        versions of a majority of live replicas, serves from the highest
        one, and repairs the stale members it examined.  Raises
        :class:`~repro.errors.QuorumUnavailableError` when fewer than a
        majority of replicas are live.
    """

    ONE = "one"
    PRIMARY = "primary"
    QUORUM = "quorum"

    @classmethod
    def coerce(cls, value: "ReadConsistency | str | None") -> "ReadConsistency":
        if value is None:
            return cls.PRIMARY
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ConfigurationError(
                f"unknown read consistency {value!r}; "
                f"expected one of {[c.value for c in cls]}"
            ) from None


class WriteConsistency(Enum):
    """Tunable acknowledgement requirement of cluster writes.

    The write-side half of the consistency matrix (reads are tuned by
    :class:`ReadConsistency`).  Whatever the level, the mutation itself
    always applies to the primary first and is recorded in the
    replication log; the level only controls how many replicas must
    *hold* the op before the write call returns — acks are forced
    synchronously through the log (no wall-clock waiting), so an
    acknowledged write is never outrun by a crash of fewer than W
    replicas.

    ``ONE``
        Primary ack only — the default, and the pre-quorum behaviour:
        followers converge asynchronously under the lag model.
    ``QUORUM``
        A majority of the list's replicas must hold the op before the
        call returns; the most-caught-up reachable followers are forced
        current through the log.  Raises
        :class:`~repro.errors.QuorumWriteUnavailableError` (a clean
        no-op: nothing mutated, nothing logged) when fewer than a
        majority are reachable.
    ``ALL``
        Every replica must hold the op — linearizable against any
        single-replica read, at the cost of refusing writes whenever any
        replica is down or partitioned.
    """

    ONE = "one"
    QUORUM = "quorum"
    ALL = "all"

    @classmethod
    def coerce(cls, value: "WriteConsistency | str | None") -> "WriteConsistency":
        if value is None:
            return cls.ONE
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ConfigurationError(
                f"unknown write consistency {value!r}; "
                f"expected one of {[c.value for c in cls]}"
            ) from None

    def required_acks(self, num_replicas: int) -> int:
        """Replicas that must hold an op before the write is acked."""
        if num_replicas < 1:
            raise ConfigurationError("num_replicas must be >= 1")
        if self is WriteConsistency.ONE:
            return 1
        elif self is WriteConsistency.QUORUM:
            return num_replicas // 2 + 1
        elif self is WriteConsistency.ALL:
            return num_replicas
        raise ConfigurationError(f"unknown write consistency {self!r}")


@dataclass(frozen=True)
class FailoverEvent:
    """One primary failover election (see ``ServerCluster``).

    Recorded when the cluster promotes ``new_primary`` over *list_id*
    because ``old_primary`` had been unreachable past the failover
    threshold at replication tick ``tick``.  The history is persisted
    with the cluster snapshot, so a restart keeps the promotion audit
    trail (and the elected primary, via the placement table).
    """

    list_id: int
    old_primary: int
    new_primary: int
    tick: int


@dataclass(frozen=True)
class LagModel:
    """How many scheduler ticks an op takes to reach each follower.

    ``fixed_ticks`` is the default delay; ``per_server`` overrides it for
    individual servers (e.g. one straggler replica).  A delay of 0 means
    the op is due on the tick it was recorded (and is drained inline by
    the write call).  Pausing a follower is *not* a lag value — it is a
    partition, modelled by :meth:`ReplicationManager.pause`.
    """

    fixed_ticks: int = 0
    per_server: Mapping[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.fixed_ticks < 0:
            raise ConfigurationError("replication lag must be >= 0 ticks")
        if any(delay < 0 for delay in self.per_server.values()):
            raise ConfigurationError("per-server replication lag must be >= 0")

    @classmethod
    def coerce(cls, value: "LagModel | int | None") -> "LagModel":
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        return cls(fixed_ticks=int(value))

    def delay_for(self, server_index: int) -> int:
        return self.per_server.get(server_index, self.fixed_ticks)

    @property
    def is_zero(self) -> bool:
        return self.fixed_ticks == 0 and not any(self.per_server.values())


@dataclass(frozen=True)
class ReplicationOp:
    """One recorded mutation of a merged list.

    ``seq`` is the list's log sequence number after applying this op
    (the first op of a list has ``seq == 1``).  ``kind`` is ``"insert"``
    (payload in ``element``) or ``"delete"`` (payload in ``ciphertext``
    — deletion is by receipt, exactly like the client protocol).
    """

    seq: int
    kind: str
    element: EncryptedPostingElement | None = None
    ciphertext: bytes | None = None


class ReplicationLog:
    """The monotonically versioned op log of one merged list.

    Retains every op above ``base_seq``; invariant 3 of the module
    docstring governs truncation (the manager advances the base only
    past the minimum applied version of the list's current replicas).
    """

    __slots__ = ("list_id", "head_seq", "base_seq", "_ops")

    def __init__(self, list_id: int) -> None:
        self.list_id = list_id
        self.head_seq = 0
        self.base_seq = 0  # ops with seq <= base_seq are truncated
        self._ops: deque[ReplicationOp] = deque()

    def __len__(self) -> int:
        return len(self._ops)

    def append(
        self,
        kind: str,
        element: EncryptedPostingElement | None = None,
        ciphertext: bytes | None = None,
    ) -> ReplicationOp:
        op = ReplicationOp(
            seq=self.head_seq + 1, kind=kind, element=element, ciphertext=ciphertext
        )
        self._ops.append(op)
        self.head_seq = op.seq
        return op

    def advance_synced(self, num_ops: int) -> None:
        """Version a batch of ops applied to *every* replica inline.

        The synchronous write path mutates all replicas before
        returning, so nothing ever needs these ops again: the head and
        the base advance together and no op object is retained.
        """
        self.head_seq += num_ops
        self.base_seq = self.head_seq
        self._ops.clear()

    def ops_between(self, after_seq: int, upto_seq: int) -> list[ReplicationOp]:
        """Ops with ``after_seq < seq <= upto_seq``, in order."""
        if after_seq < self.base_seq:
            raise ProtocolError(
                f"list {self.list_id}: ops after seq {after_seq} were "
                f"truncated (log base is {self.base_seq})"
            )
        return [op for op in self._ops if after_seq < op.seq <= upto_seq]

    def truncate_to(self, min_applied: int) -> None:
        """Drop ops every current replica has applied (invariant 3)."""
        while self._ops and self._ops[0].seq <= min_applied:
            self._ops.popleft()
        self.base_seq = max(self.base_seq, min(min_applied, self.head_seq))

    def iter_ops(self) -> list[ReplicationOp]:
        """Every retained op (``base_seq < seq <= head_seq``), in order.

        The persistence layer serialises exactly this: the retained tail
        is what some replica may still need after a restart.
        """
        return list(self._ops)

    def restore(
        self, head_seq: int, base_seq: int, ops: Sequence[ReplicationOp]
    ) -> None:
        """Reinstall persisted log state (recovery path; see ``repro.persist``).

        The restored state must satisfy the module invariants: the base
        never exceeds the head, and the retained ops are exactly a
        strictly increasing run ending at the head (or empty when base ==
        head — everything truncated before the snapshot).
        """
        if not 0 <= base_seq <= head_seq:
            raise ProtocolError(
                f"list {self.list_id}: invalid restored log bounds "
                f"base={base_seq} head={head_seq}"
            )
        expected = range(base_seq + 1, head_seq + 1)
        if [op.seq for op in ops] != list(expected):
            raise ProtocolError(
                f"list {self.list_id}: restored ops do not form the "
                f"contiguous run ({base_seq}, {head_seq}]"
            )
        self.head_seq = head_seq
        self.base_seq = base_seq
        self._ops = deque(ops)


@dataclass
class ReplicationStats:
    """Counters of the replication data plane (benchmarks assert on these).

    ``ops_logged`` counts ops recorded through the async path;
    ``follower_ops_applied`` counts scheduled (lag-driven) deliveries;
    ``repair_ops`` and ``anti_entropy_ops`` count the same deliveries
    when forced by read-repair or the anti-entropy sweep instead.
    ``read_reserves`` counts slices re-served for consistency after a
    stale first answer; ``version_probes`` counts replica version checks
    done by quorum reads.  ``max_staleness_seen`` is the largest
    head-minus-applied gap any read ever observed.

    Write-side counters: ``write_ack_syncs`` / ``write_ack_ops`` count
    follower catch-ups forced synchronously by QUORUM/ALL writes (the
    price of a W > 1 ack).  ``failovers`` / ``failover_ops`` count
    primary elections and the catch-up ops they forced through the log.
    ``staleness_fallbacks`` counts ONE reads escalated to a fresh
    re-serve because a ``max_staleness`` bound was violated;
    ``floor_reserves`` counts re-serves forced by a session's
    read-your-writes/monotonic-reads version floor.
    """

    ticks: int = 0
    ops_logged: int = 0
    follower_ops_applied: int = 0
    stale_reads_detected: int = 0
    read_repairs: int = 0
    repair_ops: int = 0
    read_reserves: int = 0
    anti_entropy_runs: int = 0
    anti_entropy_syncs: int = 0
    anti_entropy_ops: int = 0
    version_probes: int = 0
    max_staleness_seen: int = 0
    write_ack_syncs: int = 0
    write_ack_ops: int = 0
    failovers: int = 0
    failover_ops: int = 0
    staleness_fallbacks: int = 0
    floor_reserves: int = 0


class ReplicationManager:
    """Per-list replication logs plus the tick-driven delivery scheduler.

    The manager owns no placement: the cluster passes ``replicas_of``
    (current replica tuple per list, primary first) and ``server_alive``
    callables so migrations and failures are always judged against the
    cluster's authoritative state.  It owns the server *mutations* of the
    async path: follower deliveries go through
    :meth:`ZerberRServer.apply_replicated_insert` /
    ``apply_replicated_delete`` (no membership re-check — the op was
    admitted at the primary; re-checking at drain time would let a
    concurrent revocation fork the replicas).
    """

    def __init__(
        self,
        servers: "Sequence[ZerberRServer]",
        replicas_of: Callable[[int], Sequence[int]],
        server_alive: Callable[[int], bool],
        num_lists: int,
        lag: LagModel | int | None = None,
        anti_entropy_every: int | None = None,
        instruments: ReplicationInstruments | None = None,
    ) -> None:
        if anti_entropy_every is not None and anti_entropy_every < 1:
            raise ConfigurationError("anti_entropy_every must be >= 1")
        self._servers = servers
        self._replicas_of = replicas_of
        self._alive = server_alive
        self.lag = LagModel.coerce(lag)
        self.anti_entropy_every = anti_entropy_every
        self._obs = (
            instruments if instruments is not None else ReplicationInstruments(None)
        )
        self._logs: dict[int, ReplicationLog] = {
            list_id: ReplicationLog(list_id) for list_id in range(num_lists)
        }
        # (list_id, server) -> applied log seq; one entry per current replica.
        self._applied: dict[tuple[int, int], int] = {}
        # (list_id, server) -> FIFO of (due_tick, upto_seq, recorded_tick)
        # deliveries; the recorded tick is what ack latency is measured from.
        self._due: dict[tuple[int, int], deque[tuple[int, int, int]]] = {}
        self._paused: set[int] = set()
        self.tick_count = 0
        self.stats = ReplicationStats()
        for list_id in range(num_lists):
            for server_index in replicas_of(list_id):
                self._applied[(list_id, server_index)] = 0

    # -- mode ------------------------------------------------------------------

    def is_synchronous(self) -> bool:
        """Whether writes may take the seed's inline all-replica path.

        True only when the lag model is zero, no follower is paused and
        no delivery is outstanding — an inline write while a follower
        holds a backlog would apply out of log order.
        """
        return self.lag.is_zero and not self._paused and not self._due

    def pause(self, server_index: int) -> None:
        """Partition one server away from replication traffic.

        The server still serves reads (that is the point: its answers go
        stale), but deliveries to it are held until :meth:`resume`.
        Pausing any server also forces the cluster off the synchronous
        write path, so an inline write can never jump the held backlog.
        """
        self._check_server(server_index)
        self._paused.add(server_index)

    def resume(self, server_index: int) -> None:
        """Heal the partition; the backlog drains on subsequent ticks."""
        self._check_server(server_index)
        self._paused.discard(server_index)

    def is_paused(self, server_index: int) -> bool:
        return server_index in self._paused

    def _check_server(self, server_index: int) -> None:
        if not 0 <= server_index < len(self._servers):
            raise ConfigurationError(f"unknown server index {server_index}")

    def _deliverable(self, server_index: int) -> bool:
        return self._alive(server_index) and server_index not in self._paused

    # -- versions --------------------------------------------------------------

    def head_version(self, list_id: int) -> int:
        """The primary's (log head) version of *list_id*."""
        return self._logs[list_id].head_seq

    def applied_version(self, list_id: int, server_index: int) -> int:
        """Ops of *list_id*'s log that *server_index* has applied."""
        try:
            return self._applied[(list_id, server_index)]
        except KeyError:
            raise ProtocolError(
                f"server {server_index} does not hold list {list_id}"
            ) from None

    def staleness(self, list_id: int, server_index: int) -> int:
        return self.head_version(list_id) - self.applied_version(
            list_id, server_index
        )

    def outstanding_deliveries(self) -> int:
        """Queued (not yet applied) delivery records across all pairs."""
        return sum(len(queue) for queue in self._due.values())

    # -- write path ------------------------------------------------------------

    def record_synchronous(self, list_id: int, num_ops: int) -> None:
        """Version ops the cluster applied to every replica inline."""
        self._logs[list_id].advance_synced(num_ops)
        head = self._logs[list_id].head_seq
        for server_index in self._replicas_of(list_id):
            self._applied[(list_id, server_index)] = head

    def record_insert(
        self, list_id: int, element: EncryptedPostingElement
    ) -> ReplicationOp:
        """Log an insert the cluster just applied to the primary."""
        return self._record(
            list_id, self._logs[list_id].append("insert", element=element)
        )

    def record_delete(self, list_id: int, ciphertext: bytes) -> ReplicationOp:
        """Log a delete the cluster just applied to the primary."""
        return self._record(
            list_id, self._logs[list_id].append("delete", ciphertext=ciphertext)
        )

    def _record(self, list_id: int, op: ReplicationOp) -> ReplicationOp:
        self.stats.ops_logged += 1
        replicas = self._replicas_of(list_id)
        if self._applied[(list_id, replicas[0])] != op.seq - 1:
            # The cluster guards every async write with a primary
            # catch-up (ServerCluster._ensure_primary_current); stamping
            # a gapped primary to op.seq here would mark its missing ops
            # as applied and silently lose them, so fail loudly instead.
            raise ProtocolError(
                f"list {list_id}: primary {replicas[0]} is at version "
                f"{self._applied[(list_id, replicas[0])]}, cannot "
                f"acknowledge op {op.seq}"
            )
        self._applied[(list_id, replicas[0])] = op.seq
        for follower in replicas[1:]:
            due = self.tick_count + self.lag.delay_for(follower)
            self._due.setdefault((list_id, follower), deque()).append(
                (due, op.seq, self.tick_count)
            )
        return op

    # -- delivery --------------------------------------------------------------

    def tick(self) -> int:
        """Advance the replication clock one tick; deliver due ops.

        Returns the number of ops applied to followers this tick.  Every
        ``anti_entropy_every`` ticks the sweep additionally force-syncs
        all reachable stale followers.
        """
        self.tick_count += 1
        self.stats.ticks += 1
        applied = self.deliver_due()
        if (
            self.anti_entropy_every is not None
            and self.tick_count % self.anti_entropy_every == 0
        ):
            applied += self.anti_entropy_sweep()
        return applied

    def deliver_due(self) -> int:
        """Apply every delivery that is due at the current tick."""
        total = 0
        for (list_id, server_index), queue in list(self._due.items()):
            if not self._deliverable(server_index):
                continue
            upto = None
            while queue and queue[0][0] <= self.tick_count:
                _, upto, recorded = queue.popleft()
                self._obs.ack_latency.observe(float(self.tick_count - recorded))
            if upto is not None:
                total += self._apply_ops(list_id, server_index, upto)
            if not queue:
                self._due.pop((list_id, server_index), None)
        self.stats.follower_ops_applied += total
        return total

    def sync(self, list_id: int, server_index: int, reason: str = "repair") -> int:
        """Catch one replica up to the log head right now (if reachable).

        Used by read-repair, the anti-entropy sweep and migration
        cut-over.  Returns the number of ops applied (0 when the replica
        is already current, paused or down).
        """
        if (list_id, server_index) not in self._applied:
            raise ProtocolError(f"server {server_index} does not hold list {list_id}")
        if not self._deliverable(server_index):
            return 0
        applied = self._apply_ops(
            list_id, server_index, self._logs[list_id].head_seq
        )
        if applied:
            if reason == "anti-entropy":
                self.stats.anti_entropy_syncs += 1
                self.stats.anti_entropy_ops += applied
            elif reason == "write-ack":
                self.stats.write_ack_syncs += 1
                self.stats.write_ack_ops += applied
            elif reason == "failover":
                self.stats.failover_ops += applied
            else:
                self.stats.repair_ops += applied
            self._due.pop((list_id, server_index), None)
        return applied

    def anti_entropy_sweep(self) -> int:
        """Force-sync every reachable stale follower of every list."""
        self.stats.anti_entropy_runs += 1
        total = 0
        for list_id, log in self._logs.items():
            for server_index in self._replicas_of(list_id):
                if self._applied[(list_id, server_index)] < log.head_seq:
                    total += self.sync(list_id, server_index, reason="anti-entropy")
        return total

    def _apply_ops(self, list_id: int, server_index: int, upto_seq: int) -> int:
        applied = self._applied[(list_id, server_index)]
        if upto_seq <= applied:
            return 0
        ops = self._logs[list_id].ops_between(applied, upto_seq)
        server = self._servers[server_index]
        for op in ops:
            if op.kind == "insert":
                assert op.element is not None
                server.apply_replicated_insert(list_id, op.element)
            else:
                assert op.ciphertext is not None
                server.apply_replicated_delete(list_id, op.ciphertext)
        self._applied[(list_id, server_index)] = upto_seq
        # Drop delivery records this application already satisfied.
        queue = self._due.get((list_id, server_index))
        if queue:
            while queue and queue[0][1] <= upto_seq:
                queue.popleft()
            if not queue:
                self._due.pop((list_id, server_index), None)
        self._truncate(list_id)
        return len(ops)

    def _truncate(self, list_id: int) -> None:
        replicas = self._replicas_of(list_id)
        min_applied = min(self._applied[(list_id, s)] for s in replicas)
        self._logs[list_id].truncate_to(min_applied)

    # -- topology (migration support) ------------------------------------------

    def register_replica(
        self, list_id: int, server_index: int, at_version: int
    ) -> None:
        """Admit a new replica whose state was imported at *at_version*.

        If the import source was behind the log head, the remaining ops
        are scheduled for normal lag-driven delivery, so a cut-over from
        a stale source still converges through the log.
        """
        self._applied[(list_id, server_index)] = at_version
        head = self._logs[list_id].head_seq
        if at_version < head:
            due = self.tick_count + self.lag.delay_for(server_index)
            self._due.setdefault((list_id, server_index), deque()).append(
                (due, head, self.tick_count)
            )

    def drop_replica(self, list_id: int, server_index: int) -> None:
        """Forget a replica that no longer hosts the list."""
        self._applied.pop((list_id, server_index), None)
        self._due.pop((list_id, server_index), None)
        self._truncate(list_id)

    # -- recovery (persistence support; see repro.persist) ----------------------

    def log_snapshot(self, list_id: int) -> tuple[int, int, list[ReplicationOp]]:
        """One list's durable log state: ``(head_seq, base_seq, retained ops)``."""
        log = self._logs[list_id]
        return log.head_seq, log.base_seq, log.iter_ops()

    def applied_snapshot(self, list_id: int) -> dict[int, int]:
        """Applied version per current replica of *list_id*."""
        return {
            server_index: self._applied[(list_id, server_index)]
            for server_index in self._replicas_of(list_id)
        }

    def paused_servers(self) -> set[int]:
        """Servers currently partitioned away from replication traffic."""
        return set(self._paused)

    def restore_clock(self, tick_count: int, paused: Iterable[int] = ()) -> None:
        """Reinstall the persisted replication clock and partition set.

        Called before :meth:`restore_list_state` so catch-up deliveries
        scheduled during the restore are due relative to the restored
        clock, exactly as the pre-restart schedule was.
        """
        if tick_count < 0:
            raise ConfigurationError("tick_count must be >= 0")
        paused = set(paused)
        for server_index in paused:
            self._check_server(server_index)
        self.tick_count = tick_count
        self._paused = paused

    def restore_list_state(
        self,
        list_id: int,
        head_seq: int,
        base_seq: int,
        ops: Sequence[ReplicationOp],
        applied: Mapping[int, int],
    ) -> None:
        """Reinstall one list's persisted log and per-replica versions.

        *applied* must name exactly the list's current replicas (the
        cluster restores its placement table first), each at a version
        within ``[base_seq, head_seq]`` — invariant 3 guarantees a
        snapshot taken through :meth:`log_snapshot` satisfies this.
        Replicas behind the restored head are re-registered through
        :meth:`register_replica`, which schedules their remaining log ops
        for normal lag-driven delivery: a restarted follower converges
        through the existing catch-up machinery instead of starting
        blank, so no acknowledged-but-undelivered op is lost.
        """
        replicas = list(self._replicas_of(list_id))
        if set(applied) != set(replicas):
            raise ProtocolError(
                f"list {list_id}: restored applied versions name servers "
                f"{sorted(applied)}, placement says {sorted(replicas)}"
            )
        for server_index, version in applied.items():
            if not base_seq <= version <= head_seq:
                raise ProtocolError(
                    f"list {list_id}: restored applied version {version} of "
                    f"server {server_index} outside log bounds "
                    f"[{base_seq}, {head_seq}]"
                )
        self._logs[list_id].restore(head_seq, base_seq, ops)
        for key in [k for k in self._applied if k[0] == list_id]:
            del self._applied[key]
        for key in [k for k in self._due if k[0] == list_id]:
            del self._due[key]
        for server_index in replicas:
            self.register_replica(list_id, server_index, applied[server_index])

    def best_source(self, list_id: int) -> int | None:
        """The live replica with the highest applied version (ties by
        placement order) — the migration export source."""
        best: int | None = None
        best_version = -1
        for server_index in self._replicas_of(list_id):
            if not self._alive(server_index):
                continue
            version = self._applied[(list_id, server_index)]
            if version > best_version:
                best, best_version = server_index, version
        return best

    # -- observability ---------------------------------------------------------

    def observe_staleness(self, staleness: int) -> None:
        if staleness > 0:
            self.stats.stale_reads_detected += 1
            if staleness > self.stats.max_staleness_seen:
                self.stats.max_staleness_seen = staleness

    def pending_lag_ticks(self, list_id: int, server_index: int) -> int:
        """Ticks until the last scheduled delivery to one replica is due.

        0 means the replica has nothing scheduled (it is at the head, or
        its remaining staleness has no delivery yet — e.g. it is paused
        with its queue drained by a sync).  This is the tick-denominated
        answer to "how long until a read from this replica would be
        fresh", which the cluster's per-consistency read-latency
        histogram observes.
        """
        queue = self._due.get((list_id, server_index))
        if not queue:
            return 0
        return max(0, queue[-1][0] - self.tick_count)

    def log_lengths(self) -> dict[int, int]:
        """Retained (untruncated) op count per list's replication log."""
        return {list_id: len(log) for list_id, log in self._logs.items()}

    def backlog(self) -> dict[tuple[int, int], int]:
        """Current staleness per (list, server) pair, stale pairs only."""
        return {
            (list_id, server_index): self._logs[list_id].head_seq - applied
            for (list_id, server_index), applied in self._applied.items()
            if applied < self._logs[list_id].head_seq
        }

    def reachable_backlog(self) -> dict[tuple[int, int], int]:
        """The backlog restricted to live, un-paused servers — what ticks
        alone can still drain."""
        return {
            (list_id, server_index): staleness
            for (list_id, server_index), staleness in self.backlog().items()
            if self._deliverable(server_index)
        }
