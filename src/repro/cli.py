"""Command-line interface: build, inspect, and query a confidential index.

Usage (after ``pip install -e .``)::

    repro-index build  --input docs/ --output index.json --r 4.0
    repro-index info   --index index.json
    repro-index query  --index index.json --term budget --k 10
    repro-index lint   src/

``build`` indexes every ``*.txt`` file under ``--input``; the file's
immediate parent directory is its collaboration group.  The key service
derives group keys from ``--secret`` (hex, >= 32 hex chars), so running
``query`` with the same secret reconstructs them — a convenience for
demos and tests, not a production key-management story (see
``repro.crypto.keys``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.client import ZerberRClient
from repro.core.system import SystemConfig, ZerberRSystem
from repro.corpus.documents import Corpus, Document
from repro.crypto.keys import GroupKeyService
from repro.errors import ReproError
from repro.persist import load_cluster, load_index, save_index

DEFAULT_SECRET = "0f" * 32


def _corpus_from_directory(root: Path) -> Corpus:
    corpus = Corpus(name=root.name)
    files = sorted(root.rglob("*.txt"))
    if not files:
        raise ReproError(f"no .txt files under {root}")
    for path in files:
        group = path.parent.name if path.parent != root else "public"
        corpus.add(
            Document(
                doc_id=str(path.relative_to(root)),
                group=group,
                text=path.read_text(errors="replace"),
            )
        )
    return corpus


def _key_service(secret_hex: str, groups: set[str]) -> GroupKeyService:
    service = GroupKeyService(master_secret=bytes.fromhex(secret_hex))
    for group in sorted(groups):
        service.ensure_group(group)
    service.register("superuser", set(groups))
    return service


def cmd_build(args: argparse.Namespace) -> int:
    corpus = _corpus_from_directory(Path(args.input))
    print(
        f"indexing {len(corpus)} documents in {len(corpus.groups())} group(s)...",
        file=sys.stderr,
    )
    service = _key_service(args.secret, corpus.groups())
    system = ZerberRSystem.build(
        corpus,
        SystemConfig(r=args.r, training_fraction=args.training_fraction),
        key_service=service,
    )
    save_index(args.output, system.server, system.merge_plan, system.rstf_model)
    audit = system.audit()
    print(
        f"wrote {args.output}: {system.server.num_elements} elements, "
        f"{system.merge_plan.num_lists} merged lists, "
        f"r={args.r} (confidential={audit.is_confidential})"
    )
    return 0


def _server_groups(server) -> set[str]:
    """Group tags visible in a single-server index (public accessor)."""
    return {
        tag
        for list_id in range(server.num_lists)
        for tag in server.visible_group_tags(list_id)
    }


def cmd_info(args: argparse.Namespace) -> int:
    service = GroupKeyService(master_secret=bytes.fromhex(args.secret))
    server, plan, model = load_index(args.index, service)
    groups = _server_groups(server)
    print(f"index: {args.index}")
    print(f"  posting elements : {server.num_elements}")
    print(f"  merged lists     : {plan.num_lists} (r={plan.r})")
    print(f"  trained RSTFs    : {model.num_terms}")
    print(f"  groups           : {', '.join(sorted(groups))}")
    return 0


def _run_query(
    service: GroupKeyService,
    backend,
    plan,
    model,
    groups: set[str],
    args: argparse.Namespace,
    with_trace: bool = True,
) -> int:
    """Register the querying principal, run one query, print the hits.

    Shared by ``query`` (single-server index) and ``restore`` (recovered
    cluster) — *backend* is anything with the fetch surface.
    """
    service.register(args.principal, set(args.groups) if args.groups else groups)
    client = ZerberRClient(
        principal=args.principal,
        key_service=service,
        server=backend,
        rstf_model=model,
        merge_plan=plan,
    )
    result = client.query(args.term, k=args.k)
    for rank, hit in enumerate(result.hits, start=1):
        print(f"{rank:2d}. {hit.doc_id}  rscore={hit.rscore:.4f}  group={hit.group}")
    if not result.hits:
        print("(no readable results)")
    if with_trace:
        trace = result.trace
        print(
            f"-- {trace.num_requests} request(s), {trace.elements_transferred} "
            f"elements, {trace.bits_transferred / 8 / 1024:.2f} KB",
            file=sys.stderr,
        )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    service = GroupKeyService(master_secret=bytes.fromhex(args.secret))
    server, plan, model = load_index(args.index, service)
    groups = _server_groups(server)
    for group in sorted(groups):
        service.ensure_group(group)
    return _run_query(service, server, plan, model, groups, args)


def cmd_snapshot(args: argparse.Namespace) -> int:
    """Build a sharded deployment and write a whole-cluster snapshot."""
    corpus = _corpus_from_directory(Path(args.input))
    print(
        f"indexing {len(corpus)} documents into {args.servers} server(s) "
        f"(replication={args.replication}, lag={args.lag})...",
        file=sys.stderr,
    )
    service = _key_service(args.secret, corpus.groups())
    system = ZerberRSystem.build(
        corpus,
        SystemConfig(r=args.r, training_fraction=args.training_fraction),
        key_service=service,
    )
    cluster, _ = system.deploy_cluster(
        num_servers=args.servers,
        replication=args.replication,
        lag=args.lag,
        anti_entropy_every=args.anti_entropy_every,
    )
    system.snapshot_cluster(args.output, cluster)
    backlog = cluster.replication_backlog()
    print(
        f"wrote {args.output}: {cluster.num_elements} elements over "
        f"{cluster.num_servers} servers, {cluster.num_lists} merged lists, "
        f"epoch {cluster.placement_epoch}, "
        f"{len(backlog)} replica(s) still catching up (preserved in snapshot)"
    )
    return 0


def _cluster_groups(cluster) -> set[str]:
    """Group tags visible in the cluster (read from each list's primary)."""
    return {
        tag
        for list_id in range(cluster.num_lists)
        for tag in cluster.server(cluster.replicas_of(list_id)[0]).visible_group_tags(
            list_id
        )
    }


def cmd_restore(args: argparse.Namespace) -> int:
    """Recover a cluster snapshot; show its state and optionally query it."""
    service = GroupKeyService(master_secret=bytes.fromhex(args.secret))
    cluster, plan, model = load_cluster(args.snapshot, service)
    groups = _cluster_groups(cluster)
    for group in sorted(groups):
        service.ensure_group(group)
    backlog = cluster.replication_backlog()
    print(f"snapshot: {args.snapshot}")
    print(f"  posting elements : {cluster.num_elements}")
    print(f"  merged lists     : {plan.num_lists} (r={plan.r})")
    print(f"  servers          : {cluster.num_servers} "
          f"(replication={cluster.replication}, epoch={cluster.placement_epoch})")
    print(f"  trained RSTFs    : {model.num_terms}")
    print(f"  groups           : {', '.join(sorted(groups))}")
    print(f"  catch-up backlog : {len(backlog)} replica(s) behind")
    if args.converge:
        ticks = cluster.run_replication_until_quiet()
        print(f"  converged        : {ticks} replication tick(s), "
              f"{len(cluster.replication_backlog())} pair(s) still held")
    if args.term is None:
        return 0
    return _run_query(service, cluster, plan, model, groups, args, with_trace=False)


def _scripted_workload(
    telemetry,
) -> tuple[ZerberRSystem, object, object]:
    """Build a small deterministic deployment and exercise every layer.

    The workload behind ``repro-index metrics`` / ``trace``: index a
    synthetic corpus into an instrumented 3-server cluster (replication
    2, 1-tick lag, anti-entropy, failover elections, monitor attached),
    run coalesced coordinator sessions plus direct reads and writes at
    each consistency level, force a failover election, and snapshot the
    cluster to a scratch file — so the emitted registry covers the
    coordinator, cluster read/write, replication, view and persist
    metric families in one run.
    """
    import tempfile

    from repro.core.protocol import FetchRequest

    corpus = Corpus(name="scripted")
    for i in range(24):
        group = f"g{i % 3}"
        words = [
            "alpha",
            "beta",
            "gamma",
            "delta",
            f"term{i % 5}",
            "shared",
            f"word{i}",
        ]
        corpus.add(
            Document(doc_id=f"doc-{i:02d}", group=group, text=" ".join(words))
        )
    service = _key_service(DEFAULT_SECRET, corpus.groups())
    system = ZerberRSystem.build(
        corpus, SystemConfig(seed=11, training_fraction=0.9), key_service=service
    )
    cluster, coordinator = system.deploy_cluster(
        num_servers=3,
        replication=2,
        lag=1,
        anti_entropy_every=4,
        failover_after=2,
        round_latency=2,
        max_queue_depth=2,
        telemetry=telemetry,
        monitor_every=2,
        read_strategy="rotate",
    )
    client = system.client_for("superuser", server=cluster)

    # Coalesced coordinator sessions (coordinator + envelope + skim).
    sessions = [
        coordinator.open_session(client, ["alpha", "beta", "shared"], k=3),
        coordinator.open_session(client, ["gamma", "shared"], k=2),
    ]
    ticks = 0
    while any(not s.done for s in sessions) and ticks < 64:
        coordinator.tick()
        cluster.replication_tick()
        ticks += 1

    # An arrival-driven burst past the queue bound (shed + retry path,
    # round pipelining): staggered arrivals against max_queue_depth=2.
    # The second session is admitted one tick into the first one's
    # in-flight round (initial_size=1 forces several doubling rounds),
    # so their flushes interleave with pending deliveries — pipeline
    # overlap; the later arrivals find the queue full and are shed with
    # retry hints, and retry-on-shed drains every session to completion.
    from repro.core.protocol import ResponsePolicy

    burst_policy = ResponsePolicy(initial_size=1)
    burst = [
        client.open_multi_session(terms, k, policy=burst_policy)
        for terms, k in (
            (["alpha", "shared"], 2),
            (["beta", "shared"], 2),
            (["gamma", "delta"], 2),
            (["alpha", "beta"], 3),
        )
    ]
    for offset, session in enumerate(burst):
        coordinator.submit_arrival(session, at=coordinator.loop.now + offset)
    coordinator.drain()

    # Direct reads at every consistency level (read-path histograms).
    list_id = system.merge_plan.list_of("alpha")
    for consistency in ("one", "primary", "quorum"):
        cluster.fetch(
            FetchRequest(
                principal="superuser", list_id=list_id, offset=0, count=2
            ),
            consistency=consistency,
        )

    # Writes at every consistency level (write counters, ack latency).
    owner = system.client_for("owner:g0")
    doc = next(iter(corpus.documents_in_group("g0")))
    doc_stats = corpus.stats(doc.doc_id)
    for consistency in ("one", "quorum", "all"):
        target_list, element = owner.build_element("alpha", doc_stats, "g0")
        cluster.insert("owner:g0", target_list, element, consistency=consistency)
    for _ in range(4):
        cluster.replication_tick()

    # A failover election inside a monitor window (election counters).
    victim = cluster.replicas_of(list_id)[0]
    cluster.fail_server(victim)
    for _ in range(4):
        cluster.replication_tick()
    cluster.restore_server(victim)
    cluster.run_replication_until_quiet()

    # A snapshot (persist metrics) to a scratch file.
    with tempfile.TemporaryDirectory() as scratch:
        system.snapshot_cluster(Path(scratch) / "snapshot.json", cluster)
    return system, cluster, coordinator


def _emit(text: str, output: str | None) -> None:
    if output is None:
        print(text)
    else:
        Path(output).write_text(text + "\n")
        print(f"wrote {output}", file=sys.stderr)


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run the scripted workload and emit the metrics registry."""
    from repro.obs import Telemetry, metrics_to_json, metrics_to_text

    telemetry = Telemetry()
    _scripted_workload(telemetry)
    snapshot = telemetry.registry.snapshot()
    monitor = telemetry.monitor
    if args.format == "json":
        _emit(metrics_to_json(snapshot, monitor=monitor), args.output)
    else:
        _emit(metrics_to_text(snapshot), args.output)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one traced multi-term query and emit its span tree."""
    from repro.obs import Telemetry, trace_to_json, trace_to_text

    telemetry = Telemetry()
    system, cluster, coordinator = _scripted_workload(telemetry)
    client = system.client_for("superuser", server=cluster)
    session = coordinator.open_session(
        client, ["alpha", "beta", "shared"], k=args.k
    )
    ticks = 0
    while not session.done and ticks < 64:
        coordinator.tick()
        cluster.replication_tick()
        ticks += 1
    session.result()
    trace = next(
        (t for t in telemetry.tracer.traces() if t.trace_id == session.trace_id),
        None,
    )
    if trace is None:
        print("error: traced session left no recorded trace", file=sys.stderr)
        return 2
    if args.format == "json":
        _emit(trace_to_json(trace), args.output)
    else:
        _emit(trace_to_text(trace), args.output)
    return 0


def cmd_cluster_status(args: argparse.Namespace) -> int:
    """Recover a snapshot and show its availability / failover state."""
    service = GroupKeyService(master_secret=bytes.fromhex(args.secret))
    try:
        cluster, _, _ = load_cluster(args.snapshot, service)
    except OSError as error:
        print(f"error: cannot read snapshot: {error}", file=sys.stderr)
        return 2
    repl = cluster.replication_manager
    tick = repl.tick_count
    timers = cluster.unreachable_since()
    backlog = cluster.replication_backlog()
    per_server_behind: dict[int, int] = {}
    for (_, server_index), depth in backlog.items():
        per_server_behind[server_index] = (
            per_server_behind.get(server_index, 0) + depth
        )
    print(f"cluster: {args.snapshot}")
    print(
        f"  servers={cluster.num_servers} replication={cluster.replication} "
        f"epoch={cluster.placement_epoch} tick={tick} "
        f"failover_after={cluster.failover_after}"
    )
    for server_index in range(cluster.num_servers):
        alive = cluster.is_alive(server_index)
        paused = repl.is_paused(server_index)
        state = "up" if alive else "DOWN"
        if paused:
            state += ",partitioned"
        line = f"  server {server_index}: {state}"
        since = timers.get(server_index)
        if since is not None:
            line += f"  unreachable_since=tick {since}"
            if cluster.failover_after is not None:
                remaining = cluster.failover_after - (tick - since)
                if remaining > 0:
                    line += f"  election in {remaining} tick(s)"
                else:
                    line += "  election due"
        behind = per_server_behind.get(server_index, 0)
        if behind:
            line += f"  backlog={behind} op(s)"
        print(line)
    history = cluster.failover_history()
    print(f"  failover history : {len(history)} election(s)")
    for event in history:
        print(
            f"    tick {event.tick}: list {event.list_id} primary "
            f"{event.old_primary} -> {event.new_primary}"
        )
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the zlint invariant checks (see repro.analysis)."""
    from repro.analysis.framework import main as zlint_main

    argv: list[str] = list(args.paths)
    argv += ["--format", args.format]
    if args.report is not None:
        argv += ["--output", args.report]
    if args.rules is not None:
        argv += ["--rules", args.rules]
    return zlint_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-index",
        description="Zerber+R confidential top-k index (EDBT 2009 reproduction)",
    )
    parser.add_argument(
        "--secret",
        default=DEFAULT_SECRET,
        help="hex master secret for group-key derivation (demo key management)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="index a directory of .txt files")
    p_build.add_argument("--input", required=True, help="directory of documents")
    p_build.add_argument("--output", required=True, help="index file to write")
    p_build.add_argument("--r", type=float, default=4.0, help="confidentiality bound")
    p_build.add_argument(
        "--training-fraction", type=float, default=0.9, dest="training_fraction"
    )
    p_build.set_defaults(func=cmd_build)

    p_info = sub.add_parser("info", help="show index statistics")
    p_info.add_argument("--index", required=True)
    p_info.set_defaults(func=cmd_info)

    p_query = sub.add_parser("query", help="run a single-term top-k query")
    p_query.add_argument("--index", required=True)
    p_query.add_argument("--term", required=True)
    p_query.add_argument("--k", type=int, default=10)
    p_query.add_argument("--principal", default="reader")
    p_query.add_argument(
        "--groups", nargs="*", help="restrict the principal's group memberships"
    )
    p_query.set_defaults(func=cmd_query)

    p_snapshot = sub.add_parser(
        "snapshot", help="index a directory into a cluster and snapshot it"
    )
    p_snapshot.add_argument("--input", required=True, help="directory of documents")
    p_snapshot.add_argument("--output", required=True, help="snapshot file to write")
    p_snapshot.add_argument("--servers", type=int, default=3)
    p_snapshot.add_argument("--replication", type=int, default=2)
    p_snapshot.add_argument(
        "--lag", type=int, default=0, help="replication lag in scheduler ticks"
    )
    p_snapshot.add_argument(
        "--anti-entropy-every", type=int, default=None, dest="anti_entropy_every"
    )
    p_snapshot.add_argument("--r", type=float, default=4.0, help="confidentiality bound")
    p_snapshot.add_argument(
        "--training-fraction", type=float, default=0.9, dest="training_fraction"
    )
    p_snapshot.set_defaults(func=cmd_snapshot)

    p_restore = sub.add_parser(
        "restore", help="recover a cluster snapshot and optionally query it"
    )
    p_restore.add_argument("--snapshot", required=True)
    p_restore.add_argument(
        "--converge",
        action="store_true",
        help="run replication ticks until reachable followers are caught up",
    )
    p_restore.add_argument("--term", default=None, help="optional query term")
    p_restore.add_argument("--k", type=int, default=10)
    p_restore.add_argument("--principal", default="reader")
    p_restore.add_argument(
        "--groups", nargs="*", help="restrict the principal's group memberships"
    )
    p_restore.set_defaults(func=cmd_restore)

    p_metrics = sub.add_parser(
        "metrics",
        help="run a scripted workload on an instrumented cluster and emit "
        "the metrics registry",
    )
    p_metrics.add_argument("--format", choices=("json", "text"), default="json")
    p_metrics.add_argument(
        "--output", default=None, help="write to this file instead of stdout"
    )
    p_metrics.set_defaults(func=cmd_metrics)

    p_trace = sub.add_parser(
        "trace", help="run one traced multi-term query and emit its span tree"
    )
    p_trace.add_argument("--format", choices=("json", "text"), default="text")
    p_trace.add_argument("--k", type=int, default=3)
    p_trace.add_argument(
        "--output", default=None, help="write to this file instead of stdout"
    )
    p_trace.set_defaults(func=cmd_trace)

    p_status = sub.add_parser(
        "cluster-status",
        help="show a snapshot's per-replica availability and failover state",
    )
    p_status.add_argument("--snapshot", required=True)
    p_status.set_defaults(func=cmd_cluster_status)

    p_lint = sub.add_parser(
        "lint", help="run the zlint invariant checks over source paths"
    )
    p_lint.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    p_lint.add_argument("--format", choices=("human", "json"), default="human")
    p_lint.add_argument(
        "--report", default=None, help="also write a JSON report to this file"
    )
    p_lint.add_argument(
        "--rules", default=None, help="comma-separated rule ids (default: all)"
    )
    p_lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
