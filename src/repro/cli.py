"""Command-line interface: build, inspect, and query a confidential index.

Usage (after ``pip install -e .``)::

    repro-index build  --input docs/ --output index.json --r 4.0
    repro-index info   --index index.json
    repro-index query  --index index.json --term budget --k 10

``build`` indexes every ``*.txt`` file under ``--input``; the file's
immediate parent directory is its collaboration group.  The key service
derives group keys from ``--secret`` (hex, >= 32 hex chars), so running
``query`` with the same secret reconstructs them — a convenience for
demos and tests, not a production key-management story (see
``repro.crypto.keys``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.client import ZerberRClient
from repro.core.system import SystemConfig, ZerberRSystem
from repro.corpus.documents import Corpus, Document
from repro.crypto.keys import GroupKeyService
from repro.errors import ReproError
from repro.persist import load_index, save_index

DEFAULT_SECRET = "0f" * 32


def _corpus_from_directory(root: Path) -> Corpus:
    corpus = Corpus(name=root.name)
    files = sorted(root.rglob("*.txt"))
    if not files:
        raise ReproError(f"no .txt files under {root}")
    for path in files:
        group = path.parent.name if path.parent != root else "public"
        corpus.add(
            Document(
                doc_id=str(path.relative_to(root)),
                group=group,
                text=path.read_text(errors="replace"),
            )
        )
    return corpus


def _key_service(secret_hex: str, groups: set[str]) -> GroupKeyService:
    service = GroupKeyService(master_secret=bytes.fromhex(secret_hex))
    for group in sorted(groups):
        service.ensure_group(group)
    service.register("superuser", set(groups))
    return service


def cmd_build(args: argparse.Namespace) -> int:
    corpus = _corpus_from_directory(Path(args.input))
    print(
        f"indexing {len(corpus)} documents in {len(corpus.groups())} group(s)...",
        file=sys.stderr,
    )
    service = _key_service(args.secret, corpus.groups())
    system = ZerberRSystem.build(
        corpus,
        SystemConfig(r=args.r, training_fraction=args.training_fraction),
        key_service=service,
    )
    save_index(args.output, system.server, system.merge_plan, system.rstf_model)
    audit = system.audit()
    print(
        f"wrote {args.output}: {system.server.num_elements} elements, "
        f"{system.merge_plan.num_lists} merged lists, "
        f"r={args.r} (confidential={audit.is_confidential})"
    )
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    service = GroupKeyService(master_secret=bytes.fromhex(args.secret))
    server, plan, model = load_index(args.index, service)
    groups = {
        element.group
        for list_id in range(server.num_lists)
        for element in server._lists[list_id].elements
    }
    print(f"index: {args.index}")
    print(f"  posting elements : {server.num_elements}")
    print(f"  merged lists     : {plan.num_lists} (r={plan.r})")
    print(f"  trained RSTFs    : {model.num_terms}")
    print(f"  groups           : {', '.join(sorted(groups))}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    service = GroupKeyService(master_secret=bytes.fromhex(args.secret))
    server, plan, model = load_index(args.index, service)
    groups = {
        element.group
        for list_id in range(server.num_lists)
        for element in server._lists[list_id].elements
    }
    for group in sorted(groups):
        service.ensure_group(group)
    service.register(args.principal, set(args.groups) if args.groups else groups)
    client = ZerberRClient(
        principal=args.principal,
        key_service=service,
        server=server,
        rstf_model=model,
        merge_plan=plan,
    )
    result = client.query(args.term, k=args.k)
    for rank, hit in enumerate(result.hits, start=1):
        print(f"{rank:2d}. {hit.doc_id}  rscore={hit.rscore:.4f}  group={hit.group}")
    if not result.hits:
        print("(no readable results)")
    trace = result.trace
    print(
        f"-- {trace.num_requests} request(s), {trace.elements_transferred} "
        f"elements, {trace.bits_transferred / 8 / 1024:.2f} KB",
        file=sys.stderr,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-index",
        description="Zerber+R confidential top-k index (EDBT 2009 reproduction)",
    )
    parser.add_argument(
        "--secret",
        default=DEFAULT_SECRET,
        help="hex master secret for group-key derivation (demo key management)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="index a directory of .txt files")
    p_build.add_argument("--input", required=True, help="directory of documents")
    p_build.add_argument("--output", required=True, help="index file to write")
    p_build.add_argument("--r", type=float, default=4.0, help="confidentiality bound")
    p_build.add_argument(
        "--training-fraction", type=float, default=0.9, dest="training_fraction"
    )
    p_build.set_defaults(func=cmd_build)

    p_info = sub.add_parser("info", help="show index statistics")
    p_info.add_argument("--index", required=True)
    p_info.set_defaults(func=cmd_info)

    p_query = sub.add_parser("query", help="run a single-term top-k query")
    p_query.add_argument("--index", required=True)
    p_query.add_argument("--term", required=True)
    p_query.add_argument("--k", type=int, default=10)
    p_query.add_argument("--principal", default="reader")
    p_query.add_argument(
        "--groups", nargs="*", help="restrict the principal's group memberships"
    )
    p_query.set_defaults(func=cmd_query)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
