"""Static analysis for the Zerber+R reproduction (the ``zlint`` tool).

Run it as ``python -m repro.analysis src/``, through the CLI as
``repro-index lint``, or via the ``zlint`` console script.  The framework
(finding model, checker registry, suppressions, output formats) lives in
:mod:`repro.analysis.framework`; the repo-specific rules in
:mod:`repro.analysis.checkers`; the invariant catalog in
``docs/ANALYSIS.md``.
"""

from repro.analysis.framework import (
    Checker,
    FileContext,
    Finding,
    all_checkers,
    analyze_file,
    analyze_paths,
    analyze_source,
    main,
    module_name_for_path,
    register,
)

__all__ = [
    "Checker",
    "FileContext",
    "Finding",
    "all_checkers",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "main",
    "module_name_for_path",
    "register",
]
