"""Exception-discipline rule for the persist/cli public surfaces.

PR 5's contract ("corruption fails loudly"): ``repro.persist`` and
``repro.cli`` never let a raw ``KeyError``/``IndexError``/``TypeError``/
``ValueError``/``json.JSONDecodeError``/``UnicodeDecodeError`` escape to
a caller — corrupt or hand-edited dumps must surface as a
:class:`~repro.errors.ConfigurationError` naming the source file and the
offending value.  Three statically checkable obligations:

* ``json.loads``/``json.load`` calls must sit inside a ``try`` whose
  handlers catch ``JSONDecodeError`` (or ``ValueError``);
* an ``except`` handler that catches one of the raw types must raise
  ``ConfigurationError`` in its body (not swallow, not re-raise raw);
* inside the public ``load_*``/``read_*`` module-level functions, a bare
  subscript (``payload["section"]``) must be protected by an enclosing
  ``try`` that catches a raw type — an unguarded subscript is exactly the
  raw-``KeyError`` escape the contract forbids.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.framework import (
    Checker,
    FileContext,
    Finding,
    call_name,
    dotted_name,
    module_matches,
    register,
)

_SCOPE_PREFIXES = ("repro.persist",)
_SCOPE_EXACT = frozenset({"repro.cli"})

_RAW_TYPES = frozenset(
    {
        "KeyError",
        "IndexError",
        "TypeError",
        "ValueError",
        "JSONDecodeError",
        "UnicodeDecodeError",
    }
)

#: Handler types that also protect a json.loads call (ValueError is the
#: base class of JSONDecodeError) or an unguarded subscript.
_JSON_GUARDS = frozenset({"JSONDecodeError", "ValueError", "Exception"})
_SUBSCRIPT_GUARDS = _RAW_TYPES | {"Exception"}

_JSON_PARSERS = frozenset({"json.loads", "json.load"})

_PUBLIC_FUNC_PREFIXES = ("load_", "read_")


def _handler_type_names(handler: ast.ExceptHandler) -> set[str]:
    """Terminal names of the exception types one handler catches."""
    node = handler.type
    if node is None:
        return {"Exception"}  # bare except catches everything
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    names: set[str] = set()
    for expr in exprs:
        dotted = dotted_name(expr)
        if dotted is not None:
            names.add(dotted.rsplit(".", 1)[-1])
    return names


def _try_catches(try_node: ast.Try, wanted: frozenset[str]) -> bool:
    return any(_handler_type_names(h) & wanted for h in try_node.handlers)


def _raises_configuration_error(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and isinstance(node.exc, ast.Call):
            name = call_name(node.exc)
            if name is not None and name.rsplit(".", 1)[-1] == "ConfigurationError":
                return True
    return False


@register
class ExceptionDisciplineChecker(Checker):
    rule = "exception-discipline"
    description = (
        "repro.persist/repro.cli wrap raw KeyError/IndexError/JSONDecodeError "
        "into ConfigurationError (corruption fails loudly)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not (
            ctx.module in _SCOPE_EXACT
            or module_matches(ctx.module, _SCOPE_PREFIXES)
        ):
            return
        # Subscripts inside annotations (``tuple[Server, ...]``) are type
        # expressions, not data accesses — exempt them up front.
        self._annotation_nodes: set[int] = set()
        for node in ast.walk(ctx.tree):
            annotations: list[ast.expr | None] = []
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                annotations.append(node.returns)
            elif isinstance(node, ast.arg):
                annotations.append(node.annotation)
            elif isinstance(node, ast.AnnAssign):
                annotations.append(node.annotation)
            for annotation in annotations:
                if annotation is not None:
                    self._annotation_nodes.update(
                        id(sub) for sub in ast.walk(annotation)
                    )
        yield from self._walk(ctx, ctx.tree, try_stack=(), func_stack=())

    def _walk(
        self,
        ctx: FileContext,
        node: ast.AST,
        try_stack: tuple[ast.Try, ...],
        func_stack: tuple[str, ...],
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_try_stack = try_stack
            child_func_stack = func_stack
            if isinstance(child, ast.Try):
                child_try_stack = try_stack + (child,)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_func_stack = func_stack + (child.name,)

            if isinstance(child, ast.ExceptHandler):
                caught_raw = _handler_type_names(child) & _RAW_TYPES
                if caught_raw and not _raises_configuration_error(child):
                    yield ctx.finding(
                        self.rule,
                        child,
                        f"handler catches raw {'/'.join(sorted(caught_raw))} "
                        "but does not raise ConfigurationError — the persist/"
                        "cli contract wraps corruption into a named error",
                    )
                # The handler body runs OUTSIDE its own try's protection:
                # drop the owning try (the innermost stack entry).
                yield from self._walk(
                    ctx, child, try_stack[:-1], child_func_stack
                )
                continue
            if isinstance(child, ast.Call):
                name = call_name(child)
                if name in _JSON_PARSERS and not any(
                    _try_catches(t, _JSON_GUARDS) for t in try_stack
                ):
                    yield ctx.finding(
                        self.rule,
                        child,
                        f"{name}() outside a try/except catching "
                        "JSONDecodeError — a corrupt dump would escape as a "
                        "raw parse error instead of ConfigurationError",
                    )
            elif isinstance(child, ast.Subscript):
                in_public_loader = (
                    id(child) not in self._annotation_nodes
                    and len(func_stack) == 1
                    and func_stack[0].startswith(_PUBLIC_FUNC_PREFIXES)
                )
                if in_public_loader and not any(
                    _try_catches(t, frozenset(_SUBSCRIPT_GUARDS)) for t in try_stack
                ):
                    yield ctx.finding(
                        self.rule,
                        child,
                        f"unguarded subscript in public {func_stack[0]}() — a "
                        "missing key/index escapes as a raw error; wrap in "
                        "try/except raising ConfigurationError",
                    )
            yield from self._walk(ctx, child, child_try_stack, child_func_stack)
