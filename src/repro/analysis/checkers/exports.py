"""Export-sanity rule: ``__all__`` is complete and every name resolves.

The package ``__init__`` modules are the public API contract; tests and
benchmarks import through them.  Two failure modes accumulate silently:
an ``__all__`` entry whose binding was renamed away (``from repro import
*`` then raises ``AttributeError``), and a re-export import that never
made it into ``__all__`` (the name works today but is not part of the
contract, so a cleanup pass deletes it and downstream code breaks).

For any module that declares a literal ``__all__``: every listed name
must be bound at top level, and every top-level ``from X import Y`` whose
name is neither used in the module body nor exported is flagged — it
exists only as an accidental re-export.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.framework import Checker, FileContext, Finding, register


def _literal_all(tree: ast.Module) -> tuple[ast.stmt, list[str]] | None:
    """The ``__all__ = [...]`` statement and its strings, if literal."""
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        if isinstance(value, (ast.List, ast.Tuple)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in value.elts
        ):
            return stmt, [e.value for e in value.elts]  # type: ignore[union-attr]
        return None  # computed __all__: not checkable
    return None


def _top_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Module body plus one level of top-level ``if`` (TYPE_CHECKING etc.)."""
    for stmt in tree.body:
        yield stmt
        if isinstance(stmt, ast.If):
            yield from stmt.body
            yield from stmt.orelse


@register
class ExportSanityChecker(Checker):
    rule = "export-sanity"
    description = (
        "__all__ names resolve to bindings; re-export imports appear in "
        "__all__"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        found = _literal_all(ctx.tree)
        if found is None:
            return
        all_stmt, exported = found
        bound: set[str] = set()
        star_import = False
        reexport_candidates: list[tuple[ast.stmt, str]] = []
        for stmt in _top_level_statements(ctx.tree):
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name == "*":
                        star_import = True
                        continue
                    name = alias.asname or alias.name
                    bound.add(name)
                    if stmt.module != "__future__" and not name.startswith("_"):
                        reexport_candidates.append((stmt, name))
            elif isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(stmt.name)

        if not star_import:
            for name in exported:
                if name not in bound:
                    yield ctx.finding(
                        self.rule,
                        all_stmt,
                        f"__all__ exports {name!r} but the module does not "
                        "bind it — `from ... import *` would raise",
                    )

        used = {n.id for n in ast.walk(ctx.tree) if isinstance(n, ast.Name)}
        exported_set = set(exported)
        for stmt, name in reexport_candidates:
            if name not in exported_set and name not in used:
                yield ctx.finding(
                    self.rule,
                    stmt,
                    f"{name!r} is imported but neither used nor listed in "
                    "__all__ — an accidental re-export; export it or drop "
                    "the import",
                )
