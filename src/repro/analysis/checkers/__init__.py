"""Bundled zlint checkers; importing this package registers every rule.

One module per invariant family — see each module's docstring for the
contract it enforces and ``docs/ANALYSIS.md`` for the catalog mapping
rule ids to the PRs that introduced the underlying contracts.
"""

from repro.analysis.checkers import (
    consistency,
    crypto,
    determinism,
    epoch,
    eventloop,
    exceptions,
    exports,
    obs,
    replication,
)

__all__ = [
    "consistency",
    "crypto",
    "determinism",
    "epoch",
    "eventloop",
    "exceptions",
    "exports",
    "obs",
    "replication",
]
