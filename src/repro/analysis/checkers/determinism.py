"""Determinism rule: ``repro.core`` owns no wall clock and no entropy.

PR 5's crash-point fuzzing replays whole cluster histories; that only
works because the core's notion of time is the replication tick clock
and every random draw comes from an explicitly seeded generator.  One
``time.time()`` or unseeded ``default_rng()`` in ``repro.core`` makes a
failing fuzz case unreproducible.  This rule bans wall-clock reads, OS
entropy (``os.urandom``/``secrets``/``uuid``), the module-level
``random.*`` functions (shared global state), and unseeded generator
construction (``random.Random()`` / ``np.random.default_rng()`` with no
arguments) inside ``repro.core`` — and, since PR 9, inside
``repro.obs``, whose tick-stamped traces and monitor windows must
replay the same way.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.framework import (
    Checker,
    FileContext,
    Finding,
    call_name,
    module_matches,
    register,
)

_SCOPE = ("repro.core", "repro.obs")

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
    }
)

_OS_ENTROPY_EXACT = frozenset({"os.urandom", "os.getrandom"})
_OS_ENTROPY_PREFIXES = ("secrets.", "uuid.")

#: Generator constructors that are fine *with* a seed, banned without.
_SEEDED_CONSTRUCTORS = frozenset(
    {"random.Random", "np.random.default_rng", "numpy.random.default_rng", "default_rng"}
)


@register
class DeterminismChecker(Checker):
    rule = "determinism"
    description = (
        "no wall-clock, OS entropy, global random state or unseeded "
        "generators in repro.core/repro.obs (replayability contract)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not module_matches(ctx.module, _SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            if name in _WALL_CLOCK:
                yield ctx.finding(
                    self.rule,
                    node,
                    f"{name}() in {ctx.module} — the replication tick clock is "
                    "the only time source (crash-point fuzzing replays "
                    "depend on it)",
                )
            elif name in _OS_ENTROPY_EXACT or name.startswith(_OS_ENTROPY_PREFIXES):
                yield ctx.finding(
                    self.rule,
                    node,
                    f"{name}() in {ctx.module} — OS entropy makes runs "
                    "unreplayable; draw from an explicitly seeded generator",
                )
            elif name in _SEEDED_CONSTRUCTORS:
                first = node.args[0] if node.args else None
                unseeded = (not node.args and not node.keywords) or (
                    isinstance(first, ast.Constant) and first.value is None
                )
                if unseeded:
                    yield ctx.finding(
                        self.rule,
                        node,
                        f"unseeded {name}() in {ctx.module} — pass an explicit "
                        "seed so failing runs replay byte-for-byte",
                    )
            elif name.startswith("random.") and name not in _SEEDED_CONSTRUCTORS:
                yield ctx.finding(
                    self.rule,
                    node,
                    f"{name}() in {ctx.module} uses the process-global RNG — "
                    "construct a seeded random.Random(seed) instead",
                )
