"""Crypto-misuse rules: construction discipline and key-material leaks.

PR 2 made nonce safety a *service* property: the
:class:`~repro.crypto.keys.GroupKeyService` owns THE
:class:`~repro.crypto.cipher.NonceSequence` per (principal, group), so
every writer — clients, snippet publishers, baselines — continues one
counter stream.  A second sequence built ad hoc over the same key
restarts the counter and reuses nonces on different plaintexts: an
XOR-keystream confidentiality break that no test observes, because
decryption still succeeds.  ``crypto-construct`` therefore bans direct
cipher/keystream/nonce construction and raw ``hmac``/``hashlib`` calls
outside ``repro.crypto`` (the ``Prf``/``derive_key`` surface stays
public — it is stateless, so duplicating it is safe).

``crypto-key-leak`` guards the other failure mode: key bytes reaching an
f-string, ``print`` or logger call.  The untrusted-host model collapses
if a key ever lands in server-side logs or reprs.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.framework import (
    Checker,
    FileContext,
    Finding,
    call_name,
    module_matches,
    register,
)

_SANCTIONED_MODULES = ("repro.crypto",)

#: Stateful constructions whose duplication breaks nonce/keystream safety.
_STATEFUL_CONSTRUCTORS = frozenset({"StreamCipher", "NonceSequence", "XofKeystream"})

_RAW_HASH_PREFIXES = ("hmac.", "hashlib.")


@register
class CryptoConstructChecker(Checker):
    rule = "crypto-construct"
    description = (
        "no StreamCipher/NonceSequence/XofKeystream or raw hmac/hashlib "
        "construction outside repro.crypto (nonce-reuse hazard)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if module_matches(ctx.module, _SANCTIONED_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            terminal = name.rsplit(".", 1)[-1]
            if terminal in _STATEFUL_CONSTRUCTORS:
                yield ctx.finding(
                    self.rule,
                    node,
                    f"direct {terminal}() construction outside repro.crypto — "
                    "obtain ciphers and nonce sequences from GroupKeyService; "
                    "an ad-hoc sequence restarts the nonce counter (XOR-"
                    "keystream reuse hazard)",
                )
            elif name.startswith(_RAW_HASH_PREFIXES):
                yield ctx.finding(
                    self.rule,
                    node,
                    f"raw {name}() call outside repro.crypto — use the "
                    "Prf/derive_key surface so key separation stays auditable",
                )


#: Identifiers that plausibly bind key material.
_KEYISH_EXACT = frozenset(
    {
        "key",
        "master_key",
        "master_secret",
        "secret",
        "secret_key",
        "group_key",
        "subkey",
        "keystream",
    }
)
_KEYISH_SUFFIXES = ("_key", "_secret")

#: Common non-cryptographic names the suffix heuristic would catch.
_KEYISH_EXEMPT = frozenset({"cache_key", "sort_key", "dispatch_key", "dedup_key"})

_LOGGER_BASES = frozenset({"logging", "logger", "log", "_logger", "_log"})
_LOGGER_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)


def _keyish(identifier: str) -> bool:
    if identifier in _KEYISH_EXEMPT:
        return False
    name = identifier.lstrip("_")
    if name in _KEYISH_EXACT:
        return True
    return any(name.endswith(suffix) and name != suffix for suffix in _KEYISH_SUFFIXES)


def _keyish_refs(expr: ast.expr, prune_fstrings: bool = False) -> Iterator[tuple[ast.AST, str]]:
    """Key-ish Name/Attribute references inside *expr*.

    With *prune_fstrings* nested JoinedStr subtrees are skipped — the
    f-string pass reports those, so a ``print(f"...")`` is not doubled.
    """
    stack: list[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        if prune_fstrings and isinstance(node, ast.JoinedStr):
            continue
        if isinstance(node, ast.Name) and _keyish(node.id):
            yield node, node.id
        elif isinstance(node, ast.Attribute) and _keyish(node.attr):
            yield node, node.attr
        stack.extend(ast.iter_child_nodes(node))


def _is_logging_sink(name: str) -> bool:
    if name in ("print", "repr"):
        return True
    if "." in name:
        base, _, method = name.rpartition(".")
        return base.rsplit(".", 1)[-1] in _LOGGER_BASES and method in _LOGGER_METHODS
    return False


@register
class CryptoKeyLeakChecker(Checker):
    rule = "crypto-key-leak"
    description = "no key material in f-strings, print or logging calls"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.JoinedStr):
                for value in node.values:
                    if not isinstance(value, ast.FormattedValue):
                        continue
                    for ref, identifier in _keyish_refs(value.value):
                        yield ctx.finding(
                            self.rule,
                            ref,
                            f"possible key material {identifier!r} interpolated "
                            "into an f-string — key bytes must never reach "
                            "logs, messages or reprs",
                        )
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name is None or not _is_logging_sink(name):
                    continue
                sink_args: list[ast.expr] = list(node.args)
                sink_args.extend(kw.value for kw in node.keywords)
                for arg in sink_args:
                    for ref, identifier in _keyish_refs(arg, prune_fstrings=True):
                        yield ctx.finding(
                            self.rule,
                            ref,
                            f"possible key material {identifier!r} passed to "
                            f"{name}() — key bytes must never reach logs or "
                            "console output",
                        )
