"""Replication-bypass rule: all list mutations flow through the log.

PR 4's contract: a :class:`~repro.core.server.ZerberRServer` write is only
durable-and-replicated when it enters through the server's public
mutators, because those are what the
:class:`~repro.core.replication.ReplicationManager` records.  Calling a
:class:`~repro.index.postings.MergedPostingList` mutator directly — or
reaching into ``server._lists`` from outside the server/persist layers —
produces a write that no replica ever sees and no snapshot can account
for: replicas diverge silently and read-repair cannot converge them.

Sanctioned modules are the storage/replication layers themselves, the
persistence codecs (restore is by definition not a replicated write), the
cluster (which orchestrates migrations under an epoch bump) and the
non-replicated baselines, which own private list state of the same shape.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.framework import (
    Checker,
    FileContext,
    Finding,
    module_matches,
    register,
)

_SANCTIONED_MUTATION_MODULES = (
    "repro.core.server",
    "repro.core.cluster",
    "repro.core.replication",
    "repro.core.views",
    "repro.core.ordstat",
    "repro.index",
    "repro.persist",
    "repro.baselines",
)

#: MergedPostingList-level mutators: distinctive names, safe to match on.
_LIST_MUTATORS = frozenset(
    {
        "add_sorted_by_trs",
        "add_random",
        "bulk_load_sorted_by_trs",
        "pop_at",
        "remove_by_ciphertext",
    }
)

_STATE_ATTR_MODULES = ("repro.core.server", "repro.persist")


def _receiver_is_self(node: ast.Attribute) -> bool:
    return isinstance(node.value, ast.Name) and node.value.id == "self"


@register
class ReplicationBypassChecker(Checker):
    rule = "replication-bypass"
    description = (
        "no direct MergedPostingList mutation or server list-state access "
        "outside the server/replication/persist layers"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        mutation_sanctioned = module_matches(ctx.module, _SANCTIONED_MUTATION_MODULES)
        state_sanctioned = module_matches(ctx.module, _STATE_ATTR_MODULES)
        for node in ast.walk(ctx.tree):
            if (
                not mutation_sanctioned
                and isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _LIST_MUTATORS
            ):
                yield ctx.finding(
                    self.rule,
                    node,
                    f"direct MergedPostingList.{node.func.attr}() outside the "
                    "storage layers — writes must enter through ZerberRServer "
                    "so the ReplicationManager logs them; a bypassed write "
                    "never reaches replicas",
                )
            elif (
                not state_sanctioned
                and isinstance(node, ast.Attribute)
                and node.attr == "_lists"
                and not _receiver_is_self(node)
            ):
                yield ctx.finding(
                    self.rule,
                    node,
                    "reaching into a server's private list state (._lists) — "
                    "use the public accessors (visible_group_tags, "
                    "num_elements, fetch) or the replication surface",
                )
