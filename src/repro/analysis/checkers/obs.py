"""Obs-discipline rule: telemetry flows only through ``repro.obs``.

The telemetry subsystem (PR 9) makes three promises that hold only if
every call site cooperates.  First, trace spans are balanced: a span
closes when its ``with`` block exits, even on exception — so
:meth:`Tracer.span` must ONLY be used as a ``with`` context expression
(``begin_trace`` / ``end_trace`` are the one sanctioned non-context
pair, for session roots that outlive a call frame).  Second, the metric
namespace is closed: instruments are created from the literal names in
:data:`repro.obs.registry.METRIC_CATALOG`, never ad hoc — ``repro.core``
never creates instruments at all (it holds bundles from
``repro.obs.instruments``), and everywhere else a literal metric name
must come from the catalog.  Third, there is no side-channel telemetry:
``print()`` in ``repro.core`` is banned outright.

The catalog names are mirrored here (not imported) so zlint stays
dependency-free; ``tests/test_obs_discipline.py`` asserts the mirror
matches the live catalog, so drift fails CI.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.framework import (
    Checker,
    FileContext,
    Finding,
    call_name,
    module_matches,
    register,
)

#: Modules where instrument *creation* is banned outright.
_CORE_SCOPE = ("repro.core",)

#: Modules where literal metric names are checked against the mirror.
_CATALOG_SCOPE = ("repro",)

#: Modules allowed to build metric names dynamically (the stats-mirror
#: loop in ``instruments._mirror_stats`` derives names from dataclass
#: fields; the registry itself re-creates series when merging snapshots).
_DYNAMIC_NAME_OK = ("repro.obs", "repro.analysis")

_INSTRUMENT_FACTORIES = frozenset({"counter", "gauge", "histogram"})

#: Mirror of the ``repro.obs.registry.METRIC_CATALOG`` names.  The
#: ``_stats_counters`` families are spelled out flat so this file keeps
#: zlint's no-runtime-imports property.
CATALOG_METRIC_NAMES = frozenset(
    {
        # coordinator stats mirrors + direct instruments
        "coordinator_ticks_total",
        "coordinator_server_calls_total",
        "coordinator_slices_requested_total",
        "coordinator_slices_sent_total",
        "coordinator_sessions_completed_total",
        "coordinator_sessions_spilled_total",
        "coordinator_slices_spilled_total",
        "coordinator_rebalances_total",
        "coordinator_lists_migrated_total",
        "coordinator_stale_epoch_reroutes_total",
        "coordinator_backpressure_sheds_total",
        "coordinator_pipeline_overlap_total",
        "coordinator_queue_depth",
        "coordinator_envelope_slices",
        "coordinator_session_rounds",
        # cluster read/write paths
        "cluster_reads_total",
        "cluster_writes_total",
        "cluster_read_lag_ticks",
        "cluster_read_staleness",
        "cluster_quorum_write_refusals_total",
        "cluster_server_load",
        "cluster_list_read_heat",
        "cluster_list_write_heat",
        # replication stats mirrors + direct instruments
        "replication_ticks_total",
        "replication_ops_logged_total",
        "replication_follower_ops_applied_total",
        "replication_stale_reads_detected_total",
        "replication_read_repairs_total",
        "replication_repair_ops_total",
        "replication_read_reserves_total",
        "replication_anti_entropy_runs_total",
        "replication_anti_entropy_syncs_total",
        "replication_anti_entropy_ops_total",
        "replication_version_probes_total",
        "replication_write_ack_syncs_total",
        "replication_write_ack_ops_total",
        "replication_failovers_total",
        "replication_failover_ops_total",
        "replication_staleness_fallbacks_total",
        "replication_floor_reserves_total",
        "replication_max_staleness",
        "replication_ack_latency_ticks",
        "replication_log_length",
        "replication_replica_lag",
        "replication_elections_total",
        # readable-view stats mirrors
        "views_hits_total",
        "views_misses_total",
        "views_full_builds_total",
        "views_stale_rebuilds_total",
        "views_incremental_updates_total",
        "views_replication_patches_total",
        "views_evictions_total",
        "views_invalidations_total",
        "views_warm_restores_total",
        # crypto skim
        "crypto_skim_elements_total",
        "crypto_skim_memo_hits_total",
        # persistence
        "persist_snapshots_total",
        "persist_snapshot_bytes",
        "persist_snapshot_seconds",
        "persist_restores_total",
    }
)


def _is_span_call(node: ast.Call) -> bool:
    return isinstance(node.func, ast.Attribute) and node.func.attr == "span"


def _instrument_factory(node: ast.Call) -> str | None:
    """``counter``/``gauge``/``histogram`` if *node* calls one, else None.

    Only attribute calls count (``registry.counter(...)``); a bare local
    function that happens to share the name is not instrument creation.
    """
    if isinstance(node.func, ast.Attribute) and node.func.attr in _INSTRUMENT_FACTORIES:
        return node.func.attr
    return None


@register
class ObsDisciplineChecker(Checker):
    rule = "obs-discipline"
    description = (
        "spans only via `with tracer.span(...)`, metric names only from "
        "the registered catalog, no print() telemetry in repro.core"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        in_core = module_matches(ctx.module, _CORE_SCOPE)
        check_names = module_matches(ctx.module, _CATALOG_SCOPE) and not in_core
        dynamic_ok = module_matches(ctx.module, _DYNAMIC_NAME_OK)
        if not (in_core or check_names):
            return

        # Span calls that appear as a `with` item context expression are
        # the sanctioned form; collect them first so the walk below can
        # flag every other `.span(` call.
        with_spans: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        with_spans.add(id(item.context_expr))

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if in_core:
                name = call_name(node)
                if name == "print":
                    yield ctx.finding(
                        self.rule,
                        node,
                        "print() in repro.core — telemetry goes through the "
                        "metrics registry or tracer, not stdout",
                    )
                if _is_span_call(node) and id(node) not in with_spans:
                    yield ctx.finding(
                        self.rule,
                        node,
                        ".span(...) outside a `with` statement in repro.core — "
                        "spans must be context-managed so they close on "
                        "exception (begin_trace/end_trace are the only "
                        "sanctioned non-context pair)",
                    )
                factory = _instrument_factory(node)
                if factory is not None:
                    yield ctx.finding(
                        self.rule,
                        node,
                        f".{factory}(...) in repro.core — the core never "
                        "creates instruments; hold a bundle from "
                        "repro.obs.instruments instead",
                    )
            elif check_names:
                factory = _instrument_factory(node)
                if factory is None:
                    continue
                first = node.args[0] if node.args else None
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    if first.value not in CATALOG_METRIC_NAMES:
                        yield ctx.finding(
                            self.rule,
                            node,
                            f"metric {first.value!r} is not in METRIC_CATALOG — "
                            "declare it in repro.obs.registry and the "
                            "obs-discipline mirror first",
                        )
                elif not dynamic_ok:
                    yield ctx.finding(
                        self.rule,
                        node,
                        f".{factory}(...) with a non-literal metric name — "
                        "outside repro.obs, metric names must be catalog "
                        "literals so this rule can check them",
                    )
