"""Epoch-discipline rule: envelopes and placement reads thread an epoch.

PR 2/4's contract: a
:class:`~repro.core.protocol.CoalescedBatchRequest` is routed against one
placement epoch and must carry it, so
:meth:`~repro.core.cluster.ServerCluster.serve_envelope` can reject an
envelope built before a rebalance instead of serving it from a reshuffled
shard map.  The dataclass field defaults to ``None`` ("unrouted") for
protocol-level tests, which makes it easy to *forget* — this rule flags
any construction outside ``repro.core.protocol`` that omits ``epoch=`` or
pins the literal ``None``, and any read of a cluster's private
``._placement`` table outside the cluster/persist layers (the public
``placement_table()``/``replicas_of()`` accessors are epoch-consistent).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.framework import (
    Checker,
    FileContext,
    Finding,
    call_name,
    module_matches,
    register,
)

_ENVELOPE_TYPES = frozenset({"CoalescedBatchRequest", "CoalescedBatchResponse"})

_PROTOCOL_MODULE = ("repro.core.protocol",)
_PLACEMENT_MODULES = ("repro.core.cluster", "repro.persist")


@register
class EpochDisciplineChecker(Checker):
    rule = "epoch-discipline"
    description = (
        "coalesced envelopes must thread epoch=; no direct placement-table "
        "reads outside the cluster/persist layers"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        envelope_scope = not module_matches(ctx.module, _PROTOCOL_MODULE)
        placement_scope = not module_matches(ctx.module, _PLACEMENT_MODULES)
        for node in ast.walk(ctx.tree):
            if envelope_scope and isinstance(node, ast.Call):
                name = call_name(node)
                if name is None:
                    continue
                terminal = name.rsplit(".", 1)[-1]
                if terminal not in _ENVELOPE_TYPES:
                    continue
                keywords = {kw.arg: kw.value for kw in node.keywords}
                has_splat = any(kw.arg is None for kw in node.keywords)
                if "epoch" not in keywords and not has_splat:
                    yield ctx.finding(
                        self.rule,
                        node,
                        f"{terminal}(...) constructed without epoch= — an "
                        "unpinned envelope can be served across a rebalance "
                        "from a stale shard map; thread the routing epoch "
                        "(cluster.placement_epoch)",
                    )
                else:
                    epoch = keywords.get("epoch")
                    if isinstance(epoch, ast.Constant) and epoch.value is None:
                        yield ctx.finding(
                            self.rule,
                            node,
                            f"{terminal}(...) pins epoch=None — pass the "
                            "placement epoch the envelope was routed under",
                        )
            elif (
                placement_scope
                and isinstance(node, ast.Attribute)
                and node.attr == "_placement"
                and not (isinstance(node.value, ast.Name) and node.value.id == "self")
            ):
                yield ctx.finding(
                    self.rule,
                    node,
                    "direct read of a cluster's private placement table — use "
                    "placement_table()/replicas_of(), which are consistent "
                    "with placement_epoch",
                )
