"""Consistency-exhaustiveness rule: dispatch covers every consistency level.

The cluster's read path branches on
:class:`~repro.core.replication.ReadConsistency` (ONE / PRIMARY /
QUORUM) and its write path on
:class:`~repro.core.replication.WriteConsistency` (ONE / QUORUM / ALL).
A new member added to either enum would silently fall through any
``if``/``elif`` chain or ``match`` that neither covers all members nor
carries an explicit default — and a fallen-through level degrades to
whatever the last branch did, which is a *consistency* bug, not a crash.
This rule flags multi-branch dispatches over either enum's members that
lack an ``else``/``case _`` and do not test every member.

The member lists are mirrored here (not imported) so zlint stays
dependency-free; ``tests/test_analysis_checkers.py`` asserts each mirror
matches the live enum, so drift fails CI.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.framework import Checker, FileContext, Finding, register

#: Mirror of repro.core.replication.ReadConsistency member names.
READ_CONSISTENCY_MEMBERS = frozenset({"ONE", "PRIMARY", "QUORUM"})

#: Mirror of repro.core.replication.WriteConsistency member names.
WRITE_CONSISTENCY_MEMBERS = frozenset({"ONE", "QUORUM", "ALL"})

#: Guarded enum name -> its mirrored member set.
CONSISTENCY_ENUMS = {
    "ReadConsistency": READ_CONSISTENCY_MEMBERS,
    "WriteConsistency": WRITE_CONSISTENCY_MEMBERS,
}


def _member_of(expr: ast.expr) -> tuple[str, str] | None:
    """``(Enum, X)`` if *expr* is ``ReadConsistency.X`` or
    ``WriteConsistency.X`` (possibly dotted), else None."""
    if not isinstance(expr, ast.Attribute):
        return None
    base = expr.value
    base_name = base.attr if isinstance(base, ast.Attribute) else (
        base.id if isinstance(base, ast.Name) else None
    )
    if base_name in CONSISTENCY_ENUMS:
        return base_name, expr.attr
    return None


def _test_members(test: ast.expr) -> tuple[str, set[str]] | None:
    """``(enum, members)`` tested by one branch condition, or None if it
    is not a pure single-enum consistency test (``x is Enum.M``, ``==``,
    or an ``or`` of those over one enum)."""
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
        enum: str | None = None
        members: set[str] = set()
        for value in test.values:
            sub = _test_members(value)
            if sub is None or (enum is not None and sub[0] != enum):
                return None
            enum = sub[0]
            members |= sub[1]
        assert enum is not None
        return enum, members
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], (ast.Is, ast.Eq))
    ):
        for side in (test.left, test.comparators[0]):
            member = _member_of(side)
            if member is not None:
                return member[0], {member[1]}
    return None


@register
class ConsistencyExhaustivenessChecker(Checker):
    rule = "consistency-exhaustiveness"
    description = (
        "every if/match dispatch over ReadConsistency or WriteConsistency "
        "covers all members or has an explicit default"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        elif_nodes: set[int] = set()
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.If)
                and len(node.orelse) == 1
                and isinstance(node.orelse[0], ast.If)
            ):
                elif_nodes.add(id(node.orelse[0]))
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.If) and id(node) not in elif_nodes:
                yield from self._check_chain(ctx, node)
            elif isinstance(node, ast.Match):
                yield from self._check_match(ctx, node)

    def _check_chain(self, ctx: FileContext, node: ast.If) -> Iterator[Finding]:
        enum: str | None = None
        tested: set[str] = set()
        branches = 0
        current: ast.If = node
        while True:
            result = _test_members(current.test)
            if result is None or (enum is not None and result[0] != enum):
                # A non-consistency (or mixed-enum) branch acts as a
                # fallback path.
                return
            enum = result[0]
            tested |= result[1]
            branches += 1
            orelse = current.orelse
            if len(orelse) == 1 and isinstance(orelse[0], ast.If):
                current = orelse[0]
                continue
            has_else = bool(orelse)
            break
        if branches < 2 or has_else:
            return  # single guards and defaulted chains are fine
        missing = CONSISTENCY_ENUMS[enum] - tested
        if missing:
            yield ctx.finding(
                self.rule,
                node,
                f"if/elif over {enum} has no else and does not "
                f"handle {', '.join(sorted(missing))} — a new or unhandled "
                "consistency level silently falls through",
            )

    def _check_match(self, ctx: FileContext, node: ast.Match) -> Iterator[Finding]:
        enum: str | None = None
        tested: set[str] = set()
        for case in node.cases:
            patterns = (
                case.pattern.patterns
                if isinstance(case.pattern, ast.MatchOr)
                else [case.pattern]
            )
            for pattern in patterns:
                if isinstance(pattern, ast.MatchValue):
                    member = _member_of(pattern.value)
                    if member is not None:
                        if enum is not None and member[0] != enum:
                            return  # mixed-enum match: not a pure dispatch
                        enum = member[0]
                        tested.add(member[1])
                elif isinstance(pattern, ast.MatchAs) and pattern.pattern is None:
                    return  # wildcard / capture default: exhaustive
        if enum is None:
            return
        missing = CONSISTENCY_ENUMS[enum] - tested
        if missing:
            yield ctx.finding(
                self.rule,
                node,
                f"match over {enum} has no wildcard case and does "
                f"not handle {', '.join(sorted(missing))} — add the missing "
                "members or a `case _`",
            )
