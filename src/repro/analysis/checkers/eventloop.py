"""Event-loop discipline: ``repro.core`` schedules through the scheduler.

The event-driven refactor moved the coordinator/cluster seam onto the
deterministic virtual-time scheduler in :mod:`repro.core.eventloop` —
its ``(tick, priority, seq)`` total order is what makes two runs of the
same workload fire the same events in the same order.  That guarantee
only holds if nothing else in the core builds its own callback or timer
machinery.  This rule bans:

* importing host concurrency/timer modules (``threading``, ``asyncio``,
  ``sched``, ``_thread``, ``concurrent``, ``queue``, ``signal``) inside
  ``repro.core`` — the virtual-time loop is the only scheduler, and any
  OS thread or wall-clock timer would race it nondeterministically;
* raw one-shot scheduling (``.call_at(...)`` / ``.call_later(...)``)
  outside the loop itself and its driver, :mod:`repro.core.router` —
  everywhere else, periodic work must register through
  ``EventLoop.every(...)``, which names the task, tracks its firings,
  and keeps daemons from blocking quiescence.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.framework import (
    Checker,
    FileContext,
    Finding,
    module_matches,
    register,
)

_SCOPE = ("repro.core",)

#: Modules whose raw-scheduling surface may call ``call_at``/``call_later``
#: directly: the loop itself, and the coordinator (arrival/flush/delivery
#: events are genuinely one-shot).
_RAW_SCHEDULING_MODULES = ("repro.core.eventloop", "repro.core.router")

_BANNED_MODULES = frozenset(
    {
        "threading",
        "_thread",
        "asyncio",
        "sched",
        "concurrent",
        "concurrent.futures",
        "queue",
        "signal",
    }
)

_RAW_SCHEDULE_METHODS = frozenset({"call_at", "call_later"})


def _banned_import(name: str) -> bool:
    top = name.split(".", 1)[0]
    return top in _BANNED_MODULES or name in _BANNED_MODULES


@register
class EventLoopDisciplineChecker(Checker):
    rule = "eventloop-discipline"
    description = (
        "repro.core schedules only through repro.core.eventloop: no host "
        "thread/timer modules, no raw call_at/call_later outside the loop "
        "and its driver (periodic work registers via EventLoop.every)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not module_matches(ctx.module, _SCOPE):
            return
        raw_scheduling_ok = module_matches(ctx.module, _RAW_SCHEDULING_MODULES)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if _banned_import(alias.name):
                        yield ctx.finding(
                            self.rule,
                            node,
                            f"import {alias.name} in {ctx.module} — host "
                            "threads and wall-clock timers race the "
                            "deterministic event loop; schedule through "
                            "repro.core.eventloop instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module is not None and _banned_import(node.module):
                    yield ctx.finding(
                        self.rule,
                        node,
                        f"from {node.module} import ... in {ctx.module} — "
                        "host threads and wall-clock timers race the "
                        "deterministic event loop; schedule through "
                        "repro.core.eventloop instead",
                    )
            elif isinstance(node, ast.Call) and not raw_scheduling_ok:
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _RAW_SCHEDULE_METHODS
                ):
                    yield ctx.finding(
                        self.rule,
                        node,
                        f".{func.attr}(...) in {ctx.module} — ad-hoc one-shot "
                        "callbacks belong to the loop and its driver; "
                        "register periodic work with EventLoop.every(...) "
                        "so firings stay named, counted and deterministic",
                    )
