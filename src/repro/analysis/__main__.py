"""``python -m repro.analysis`` — run zlint."""

from repro.analysis.framework import main

if __name__ == "__main__":
    raise SystemExit(main())
