"""zlint — AST-based invariant checks for the Zerber+R codebase.

The reproduction's correctness rests on contracts that unit tests cannot
see at every call site: nonce sequences are singletons owned by the
:class:`~repro.crypto.keys.GroupKeyService` (one restarted counter is an
XOR-keystream confidentiality break), every list mutation flows through
the replication log (a bypassed write silently diverges replicas),
coordinator envelopes pin the placement epoch they were routed under,
``repro.core`` draws time and randomness only from the tick clock and
seeded generators (crash-point fuzzing replays depend on it), and the
persistence layer never lets a raw ``KeyError`` escape to a caller.

This module is the engine: the :class:`Finding` model, the
:class:`Checker` registry, suppression comments, file walking and the
``zlint`` command line.  The rules themselves live in
:mod:`repro.analysis.checkers`; see ``docs/ANALYSIS.md`` for the catalog.

Suppressions::

    risky_call()  # zlint: disable=crypto-construct  -- why it is safe
    # zlint: disable-file=determinism  -- whole-file opt-out

The framework deliberately imports nothing from the rest of ``repro`` (or
third-party packages), so ``zlint`` runs in environments where the
runtime dependencies are absent.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Checker",
    "FileContext",
    "Finding",
    "all_checkers",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "call_name",
    "dotted_name",
    "main",
    "module_matches",
    "module_name_for_path",
    "register",
]

REPORT_VERSION = 1

# Rule lists are comma-separated; anything after bare whitespace (e.g. a
# trailing "-- why it is safe" justification) is not part of the list.
_RULE_LIST = r"[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*"
_SUPPRESS_LINE = re.compile(rf"#\s*zlint:\s*disable=({_RULE_LIST})")
_SUPPRESS_FILE = re.compile(rf"#\s*zlint:\s*disable-file=({_RULE_LIST})")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    message: str
    path: str
    line: int
    col: int
    severity: str = "error"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


class FileContext:
    """Everything a checker may look at for one file."""

    def __init__(self, path: str, module: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.module = module
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree

    def finding(
        self, rule: str, node: ast.AST, message: str, severity: str = "error"
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule=rule,
            message=message,
            path=self.path,
            line=line,
            col=col,
            severity=severity,
        )


class Checker:
    """Base class: subclass, set ``rule``/``description``, yield findings."""

    rule: str = ""
    description: str = ""

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, type[Checker]] = {}


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.rule:
        raise ValueError(f"checker {cls.__name__} has no rule id")
    _REGISTRY[cls.rule] = cls
    return cls


def all_checkers() -> dict[str, type[Checker]]:
    """The registry, forcing the bundled checker modules to load first."""
    import repro.analysis.checkers  # noqa: F401  (registration side effect)

    return dict(_REGISTRY)


# -- shared AST helpers -------------------------------------------------------


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain rooted at a Name, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """The dotted name a call resolves through, if statically visible."""
    return dotted_name(node.func)


def module_matches(module: str, prefixes: Iterable[str]) -> bool:
    """Whether *module* is one of *prefixes* or nested under one."""
    return any(
        module == prefix or module.startswith(prefix + ".") for prefix in prefixes
    )


def module_name_for_path(path: Path) -> str:
    """Dotted module name for *path*, anchored at ``src`` (or ``repro``).

    Paths outside any recognizable package root fall back to the bare
    stem, so fixture snippets lint under a neutral module name.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        tail = parts[parts.index("src") + 1 :]
        return ".".join(tail) if tail else path.stem
    if "repro" in parts:
        return ".".join(parts[parts.index("repro") :])
    return parts[-1] if parts else path.stem


# -- suppression comments -----------------------------------------------------


def _parse_rule_list(raw: str) -> set[str]:
    return {part.strip() for part in raw.split(",") if part.strip()}


def _suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Per-line and file-level suppressed rule ids."""
    per_line: dict[int, set[str]] = {}
    file_level: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        file_match = _SUPPRESS_FILE.search(line)
        if file_match:
            file_level.update(_parse_rule_list(file_match.group(1)))
            continue
        line_match = _SUPPRESS_LINE.search(line)
        if line_match:
            per_line.setdefault(lineno, set()).update(
                _parse_rule_list(line_match.group(1))
            )
    return per_line, file_level


def _suppressed(
    finding: Finding, per_line: dict[int, set[str]], file_level: set[str]
) -> bool:
    if finding.rule in file_level:
        return True
    return finding.rule in per_line.get(finding.line, set())


# -- running ------------------------------------------------------------------


def _resolve_checkers(rules: Sequence[str] | None) -> list[Checker]:
    registry = all_checkers()
    if rules is None:
        selected = sorted(registry)
    else:
        unknown = sorted(set(rules) - set(registry))
        if unknown:
            raise KeyError(f"unknown rule id(s): {', '.join(unknown)}")
        selected = sorted(set(rules))
    return [registry[rule]() for rule in selected]


def analyze_source(
    source: str,
    *,
    module: str,
    path: str = "<source>",
    rules: Sequence[str] | None = None,
) -> list[Finding]:
    """Run the (selected) checkers over one source string."""
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [
            Finding(
                rule="syntax-error",
                message=f"file does not parse: {error.msg}",
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 0) + 1,
            )
        ]
    ctx = FileContext(path=path, module=module, source=source, tree=tree)
    per_line, file_level = _suppressions(source)
    findings = [
        finding
        for checker in _resolve_checkers(rules)
        for finding in checker.check(ctx)
        if not _suppressed(finding, per_line, file_level)
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def analyze_file(path: Path, rules: Sequence[str] | None = None) -> list[Finding]:
    """Analyze one ``.py`` file (module name derived from its path)."""
    source = path.read_text(encoding="utf-8", errors="replace")
    return analyze_source(
        source, module=module_name_for_path(path), path=str(path), rules=rules
    )


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a deterministic ``.py`` file stream."""
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def analyze_paths(
    paths: Iterable[Path], rules: Sequence[str] | None = None
) -> tuple[list[Finding], int]:
    """All findings plus the number of files checked."""
    findings: list[Finding] = []
    files_checked = 0
    for file_path in iter_python_files(paths):
        files_checked += 1
        findings.extend(analyze_file(file_path, rules=rules))
    return findings, files_checked


def _report(findings: list[Finding], files_checked: int) -> dict[str, object]:
    return {
        "version": REPORT_VERSION,
        "files_checked": files_checked,
        "findings": [finding.to_dict() for finding in findings],
    }


def main(argv: Sequence[str] | None = None) -> int:
    """``zlint`` entry point: 0 clean, 1 findings, 2 usage error."""
    parser = argparse.ArgumentParser(
        prog="zlint",
        description="AST-based invariant checks for the Zerber+R codebase",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human", dest="format"
    )
    parser.add_argument(
        "--rules", default=None, help="comma-separated rule ids to run (default: all)"
    )
    parser.add_argument(
        "--output", default=None, help="also write the JSON report to this file"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, checker in sorted(all_checkers().items()):
            print(f"{rule}: {checker.description}")
        return 0

    rules = sorted(_parse_rule_list(args.rules)) if args.rules else None
    roots = [Path(p) for p in args.paths]
    missing = [str(p) for p in roots if not p.exists()]
    if missing:
        print(f"zlint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    try:
        findings, files_checked = analyze_paths(roots, rules=rules)
    except KeyError as error:
        print(f"zlint: {error.args[0]}", file=sys.stderr)
        return 2

    report = _report(findings, files_checked)
    if args.output:
        Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        for finding in findings:
            print(finding.render())
        print(
            f"zlint: {len(findings)} finding(s) in {files_checked} file(s)",
            file=sys.stderr,
        )
    return 1 if findings else 0
