"""The injectable metrics registry and the closed metric catalog.

Every metric the system may emit is declared here, once, as a
:class:`MetricSpec` in :data:`METRIC_CATALOG`.  Instrument creation
(:meth:`MetricsRegistry.counter` / ``gauge`` / ``histogram``) validates
the name and kind against the catalog, so a typo'd or undeclared metric
fails loudly at wiring time instead of silently forking the namespace.
The ``obs-discipline`` zlint rule mirrors the catalog names statically
(``repro.analysis.checkers.obs``) and a drift-guard test keeps the two
in sync, the same way the consistency-enum mirrors are guarded.

The registry is process-global-free: callers construct one (usually via
:class:`~repro.obs.instruments.Telemetry`) and inject it.  Cheap live
counters that already exist as ``*Stats`` dataclasses are mirrored in
at snapshot time through *collectors* (:meth:`register_collector`), so
the hot paths keep their single-attribute increments and no existing
caller breaks.

``snapshot`` → ``reset`` → ``merge_snapshot`` round-trips: counters and
histogram buckets add, gauges are right-biased.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TICK_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metric,
)


@dataclass(frozen=True)
class MetricSpec:
    """One catalog entry: name, kind, unit, and (histograms) buckets."""

    name: str
    kind: str
    help: str
    unit: str = ""
    buckets: tuple[float, ...] | None = None


def _stats_counters(prefix: str, fields: tuple[str, ...], unit: str = "") -> tuple[MetricSpec, ...]:
    return tuple(
        MetricSpec(
            name=f"{prefix}_{field}_total",
            kind="counter",
            help=f"cumulative {field.replace('_', ' ')} (mirrored from {prefix} stats)",
            unit=unit,
        )
        for field in fields
    )


#: Fields of ``CoordinatorStats`` mirrored as counters by the collector.
COORDINATOR_STAT_FIELDS: tuple[str, ...] = (
    "ticks",
    "server_calls",
    "slices_requested",
    "slices_sent",
    "sessions_completed",
    "sessions_spilled",
    "slices_spilled",
    "rebalances",
    "lists_migrated",
    "stale_epoch_reroutes",
    "backpressure_sheds",
    "pipeline_overlap",
)

#: Fields of ``ReplicationStats`` mirrored as counters (``max_staleness_seen``
#: is a high-water mark and becomes the ``replication_max_staleness`` gauge).
REPLICATION_STAT_FIELDS: tuple[str, ...] = (
    "ticks",
    "ops_logged",
    "follower_ops_applied",
    "stale_reads_detected",
    "read_repairs",
    "repair_ops",
    "read_reserves",
    "anti_entropy_runs",
    "anti_entropy_syncs",
    "anti_entropy_ops",
    "version_probes",
    "write_ack_syncs",
    "write_ack_ops",
    "failovers",
    "failover_ops",
    "staleness_fallbacks",
    "floor_reserves",
)

#: Fields of ``ViewStats`` mirrored as counters by the collector.
VIEW_STAT_FIELDS: tuple[str, ...] = (
    "hits",
    "misses",
    "full_builds",
    "stale_rebuilds",
    "incremental_updates",
    "replication_patches",
    "evictions",
    "invalidations",
    "warm_restores",
)

METRIC_CATALOG: tuple[MetricSpec, ...] = (
    # -- coordinator ------------------------------------------------------
    *_stats_counters("coordinator", COORDINATOR_STAT_FIELDS),
    MetricSpec(
        "coordinator_queue_depth",
        "gauge",
        "sessions active at the start of the current scheduling tick",
        unit="sessions",
    ),
    MetricSpec(
        "coordinator_envelope_slices",
        "histogram",
        "slices coalesced into one per-server envelope",
        unit="slices",
        buckets=DEFAULT_SIZE_BUCKETS,
    ),
    MetricSpec(
        "coordinator_session_rounds",
        "histogram",
        "scheduling rounds a completed session took",
        unit="rounds",
        buckets=DEFAULT_SIZE_BUCKETS,
    ),
    # -- cluster read/write paths ----------------------------------------
    MetricSpec(
        "cluster_reads_total",
        "counter",
        "slice reads served, labeled by read consistency level",
        unit="slices",
    ),
    MetricSpec(
        "cluster_writes_total",
        "counter",
        "acknowledged write ops, labeled by write consistency level",
        unit="ops",
    ),
    MetricSpec(
        "cluster_read_lag_ticks",
        "histogram",
        "ticks until the serving replica would be caught up, per read "
        "consistency level (0 = served at the log head)",
        unit="ticks",
        buckets=DEFAULT_TICK_BUCKETS,
    ),
    MetricSpec(
        "cluster_read_staleness",
        "histogram",
        "version gap observed by reads that landed on a diverged replica",
        unit="versions",
        buckets=DEFAULT_SIZE_BUCKETS,
    ),
    MetricSpec(
        "cluster_quorum_write_refusals_total",
        "counter",
        "writes refused because the replica roster could not form a quorum",
        unit="writes",
    ),
    MetricSpec(
        "cluster_server_load",
        "gauge",
        "cumulative slices served per server (placement-heat surface)",
        unit="slices",
    ),
    MetricSpec(
        "cluster_list_read_heat",
        "gauge",
        "cumulative fetches per merged posting list",
        unit="slices",
    ),
    MetricSpec(
        "cluster_list_write_heat",
        "gauge",
        "cumulative replication-log writes per merged posting list",
        unit="ops",
    ),
    # -- replication ------------------------------------------------------
    *_stats_counters("replication", REPLICATION_STAT_FIELDS),
    MetricSpec(
        "replication_max_staleness",
        "gauge",
        "worst version gap any read has observed (high-water mark)",
        unit="versions",
    ),
    MetricSpec(
        "replication_ack_latency_ticks",
        "histogram",
        "ticks between logging a write and a scheduled follower applying it",
        unit="ticks",
        buckets=DEFAULT_TICK_BUCKETS,
    ),
    MetricSpec(
        "replication_log_length",
        "gauge",
        "retained replication-log entries, labeled per list",
        unit="ops",
    ),
    MetricSpec(
        "replication_replica_lag",
        "histogram",
        "per-(list, follower) backlog depth sampled by the cluster monitor",
        unit="ops",
        buckets=DEFAULT_SIZE_BUCKETS,
    ),
    MetricSpec(
        "replication_elections_total",
        "counter",
        "primary failover elections committed",
        unit="elections",
    ),
    # -- readable views ---------------------------------------------------
    *_stats_counters("views", VIEW_STAT_FIELDS),
    # -- crypto skim ------------------------------------------------------
    MetricSpec(
        "crypto_skim_elements_total",
        "counter",
        "posting elements pushed through the decrypt skim",
        unit="elements",
    ),
    MetricSpec(
        "crypto_skim_memo_hits_total",
        "counter",
        "skim decrypts answered by the verified-decrypt memo",
        unit="elements",
    ),
    # -- persistence ------------------------------------------------------
    MetricSpec(
        "persist_snapshots_total",
        "counter",
        "cluster snapshots written",
        unit="snapshots",
    ),
    MetricSpec(
        "persist_snapshot_bytes",
        "gauge",
        "encoded size of the most recent cluster snapshot",
        unit="bytes",
    ),
    MetricSpec(
        "persist_snapshot_seconds",
        "gauge",
        "wall-clock duration of the most recent snapshot write (recorded "
        "by repro.persist, which is outside the determinism scope)",
        unit="seconds",
    ),
    MetricSpec(
        "persist_restores_total",
        "counter",
        "cluster restores completed",
        unit="restores",
    ),
)

CATALOG_BY_NAME: dict[str, MetricSpec] = {spec.name: spec for spec in METRIC_CATALOG}

if len(CATALOG_BY_NAME) != len(METRIC_CATALOG):  # pragma: no cover
    raise AssertionError("duplicate metric names in METRIC_CATALOG")


class MetricsRegistry:
    """Catalog-validated instrument factory plus snapshot/merge/reset."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._collectors: list[Callable[[], None]] = []

    def _spec(self, name: str, kind: str) -> MetricSpec:
        spec = CATALOG_BY_NAME.get(name)
        if spec is None:
            raise ValueError(
                f"metric {name!r} is not in METRIC_CATALOG — declare it in "
                "repro.obs.registry (and the obs-discipline mirror) first"
            )
        if spec.kind != kind:
            raise ValueError(
                f"metric {name!r} is declared as a {spec.kind}, not a {kind}"
            )
        return spec

    def counter(self, name: str) -> Counter:
        spec = self._spec(name, "counter")
        metric = self._metrics.get(name)
        if metric is None:
            metric = Counter(name, help_text=spec.help, unit=spec.unit)
            self._metrics[name] = metric
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str) -> Gauge:
        spec = self._spec(name, "gauge")
        metric = self._metrics.get(name)
        if metric is None:
            metric = Gauge(name, help_text=spec.help, unit=spec.unit)
            self._metrics[name] = metric
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str) -> Histogram:
        spec = self._spec(name, "histogram")
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(
                name,
                help_text=spec.help,
                unit=spec.unit,
                buckets=spec.buckets or DEFAULT_TICK_BUCKETS,
            )
            self._metrics[name] = metric
        assert isinstance(metric, Histogram)
        return metric

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def register_collector(self, collector: Callable[[], None]) -> None:
        """Run ``collector()`` before every snapshot; collectors mirror
        live ``*Stats`` counters into registry series via ``set_total``."""
        self._collectors.append(collector)

    def collect(self) -> None:
        for collector in self._collectors:
            collector()

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Collector-refreshed, deterministically ordered state dump."""
        self.collect()
        return {
            name: self._metrics[name].to_snapshot()
            for name in sorted(self._metrics)
        }

    def reset(self) -> None:
        """Zero every series; instruments and collectors stay registered."""
        for metric in self._metrics.values():
            metric.reset()

    def merge_snapshot(self, snapshot: Mapping[str, Mapping[str, object]]) -> None:
        """Fold a snapshot (this catalog's shape) into the live metrics."""
        for name in sorted(snapshot):
            data = snapshot[name]
            kind = data.get("kind")
            if kind == "counter":
                metric: Metric = self.counter(name)
            elif kind == "gauge":
                metric = self.gauge(name)
            elif kind == "histogram":
                metric = self.histogram(name)
            else:
                raise ValueError(f"metric {name!r}: unknown kind {kind!r}")
            series = data.get("series", [])
            if not isinstance(series, list):
                raise ValueError(f"metric {name!r}: series must be a list")
            for entry in series:
                metric.merge_series(entry)
