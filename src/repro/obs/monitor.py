"""Cluster monitor: fixed-size time-series windows over registry state.

This is the input surface ROADMAP item 2's forecasters consume: every
``every`` replication ticks the monitor takes one :class:`MonitorSample`
— per-list read/write heat *deltas*, per-server load deltas, replica
backlog depths, and the failover events that fired since the previous
sample — into a ``deque(maxlen=window)``.  Deltas (not cumulative
totals) are what a moving-average or linear forecaster wants: the
series ``read_heat_series(list_id)`` is "fetches per sampling period",
directly comparable across periods.

The monitor is pull-only and duck-typed over the cluster surface
(``list_heat`` / ``per_server_load`` / ``replication_backlog`` /
``failover_history``), so it lives below ``repro.core`` without
importing it.  Sampling also feeds the ``replication_replica_lag``
histogram, the one distribution too expensive to observe per tick.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Protocol

from repro.obs.instruments import Telemetry


class MonitoredCluster(Protocol):
    """What the monitor needs from a cluster (structural, not nominal)."""

    def list_heat(self) -> Mapping[int, int]: ...

    def list_write_heat(self) -> Mapping[int, int]: ...

    def per_server_load(self) -> Sequence[int]: ...

    def replication_backlog(self) -> Mapping[tuple[int, int], int]: ...

    def failover_history(self) -> Sequence[object]: ...


@dataclass
class MonitorSample:
    """One sampling period: deltas since the previous sample."""

    tick: int
    read_heat: dict[int, int] = field(default_factory=dict)
    write_heat: dict[int, int] = field(default_factory=dict)
    server_load: list[int] = field(default_factory=list)
    replica_backlog: dict[int, dict[int, int]] = field(default_factory=dict)
    events: list[object] = field(default_factory=list)

    def to_dict(self) -> dict[str, object]:
        return {
            "tick": self.tick,
            "read_heat": {str(k): self.read_heat[k] for k in sorted(self.read_heat)},
            "write_heat": {
                str(k): self.write_heat[k] for k in sorted(self.write_heat)
            },
            "server_load": list(self.server_load),
            "replica_backlog": {
                str(list_id): {
                    str(server): depth
                    for server, depth in sorted(per_list.items())
                }
                for list_id, per_list in sorted(self.replica_backlog.items())
            },
            "events": [repr(event) for event in self.events],
        }


class ClusterMonitor:
    """Samples a cluster every ``every`` ticks into a bounded window."""

    def __init__(
        self,
        telemetry: Telemetry,
        *,
        every: int = 8,
        window: int = 64,
    ) -> None:
        if every < 1:
            raise ValueError("monitor sampling period must be >= 1 tick")
        if window < 1:
            raise ValueError("monitor window must hold >= 1 sample")
        self._telemetry = telemetry
        self.every = every
        self.window_size = window
        self._samples: deque[MonitorSample] = deque(maxlen=window)
        self._last_sample_tick: int | None = None
        self._read_base: dict[int, int] = {}
        self._write_base: dict[int, int] = {}
        self._load_base: list[int] = []
        self._events_seen = 0
        self._lag_histogram = telemetry.registry.histogram(
            "replication_replica_lag"
        ).bind()

    def maybe_sample(self, cluster: MonitoredCluster, tick: int) -> bool:
        """Sample iff a full period elapsed; returns whether it did."""
        if (
            self._last_sample_tick is not None
            and tick - self._last_sample_tick < self.every
        ):
            return False
        self.sample(cluster, tick)
        return True

    def sample(self, cluster: MonitoredCluster, tick: int) -> MonitorSample:
        read_now = dict(cluster.list_heat())
        write_now = dict(cluster.list_write_heat())
        load_now = list(cluster.per_server_load())
        history = list(cluster.failover_history())
        backlog: dict[int, dict[int, int]] = {}
        for (list_id, server_index), depth in cluster.replication_backlog().items():
            backlog.setdefault(list_id, {})[server_index] = depth
        sample = MonitorSample(
            tick=tick,
            read_heat={
                list_id: heat - self._read_base.get(list_id, 0)
                for list_id, heat in read_now.items()
            },
            write_heat={
                list_id: heat - self._write_base.get(list_id, 0)
                for list_id, heat in write_now.items()
            },
            server_load=[
                load - (self._load_base[i] if i < len(self._load_base) else 0)
                for i, load in enumerate(load_now)
            ],
            replica_backlog=backlog,
            events=history[self._events_seen :],
        )
        for per_list in backlog.values():
            for depth in per_list.values():
                self._lag_histogram.observe(float(depth))
        self._read_base = read_now
        self._write_base = write_now
        self._load_base = load_now
        self._events_seen = len(history)
        self._last_sample_tick = tick
        self._samples.append(sample)
        return sample

    # -- the forecaster-facing surface -----------------------------------

    def window(self) -> list[MonitorSample]:
        """Oldest-first samples, at most ``window_size`` of them."""
        return list(self._samples)

    def read_heat_series(self, list_id: int) -> list[int]:
        return [sample.read_heat.get(list_id, 0) for sample in self._samples]

    def write_heat_series(self, list_id: int) -> list[int]:
        return [sample.write_heat.get(list_id, 0) for sample in self._samples]

    def server_load_series(self, server: int) -> list[int]:
        return [
            sample.server_load[server] if server < len(sample.server_load) else 0
            for sample in self._samples
        ]

    def events(self) -> list[object]:
        return [event for sample in self._samples for event in sample.events]

    def to_dict(self) -> dict[str, object]:
        return {
            "every": self.every,
            "window_size": self.window_size,
            "samples": [sample.to_dict() for sample in self._samples],
        }
