"""Telemetry injection point and per-layer bound-instrument bundles.

``repro.core`` never creates metrics itself — the ``obs-discipline``
zlint rule bans ``.counter(`` / ``.gauge(`` / ``.histogram(`` calls
there.  Instead each layer holds one of the bundles below, built from
an optional :class:`Telemetry`.  With telemetry absent every slot is a
shared ``Null*`` instrument, so instrumented code is branch-free and
the disabled cost is one no-op method call per site (measured by
``bench_hotpath --quick`` against the <= 5 % overhead budget).

Cumulative counters that already live in the ``*Stats`` dataclasses
(``CoordinatorStats`` / ``ReplicationStats`` / ``ViewStats``) stay the
write-path storage; ``register_*_collector`` mirrors them into the
registry at snapshot time via ``Counter.set_total``, generically over
``dataclasses.fields`` so a new stats field that lacks a catalog entry
fails the drift-guard test instead of silently vanishing.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Mapping, Sequence

from repro.obs.metrics import (
    NULL_BOUND_COUNTER,
    NULL_BOUND_GAUGE,
    NULL_BOUND_HISTOGRAM,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    BoundCounter,
    BoundHistogram,
    Counter,
    Gauge,
    Histogram,
)
from repro.obs.registry import (
    COORDINATOR_STAT_FIELDS,
    REPLICATION_STAT_FIELDS,
    VIEW_STAT_FIELDS,
    MetricsRegistry,
)
from repro.obs.trace import NULL_TRACER, Tracer


class Telemetry:
    """Everything a layer needs, threaded through constructors.

    The tick clock starts as a constant 0 and is bound to the owning
    cluster's replication tick counter when the cluster attaches
    (:meth:`bind_clock`), so span timestamps share the one sanctioned
    time source.  ``monitor`` is attached by ``deploy_cluster`` /
    :meth:`ServerCluster.attach_monitor` when sampling is wanted.
    """

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        trace_capacity: int = 256,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._clock: Callable[[], int] = lambda: 0
        self.tracer = Tracer(self._now, capacity=trace_capacity)
        self.monitor: object | None = None
        self._bundles: list[_InstrumentBundle] = []

    def _now(self) -> int:
        return self._clock()

    def bind_clock(self, clock: Callable[[], int]) -> None:
        self._clock = clock
        # Rebind the tracer directly: span enter/exit reads the clock on
        # the hot path, and the extra _now() hop is measurable there.
        self.tracer._clock = clock

    def now(self) -> int:
        return self._now()

    def suspend(self) -> None:
        """Runtime kill switch: stop all hot-path recording, live.

        Every bundle built from this telemetry swaps its instruments for
        the shared ``Null*`` singletons, putting the deployment in the
        same state as one deployed with no telemetry at all — without
        redeploying.  Registry collectors still run at snapshot time
        (they read ``*Stats`` dataclasses, not hot-path instruments),
        and totals recorded before the suspend are kept, so flipping
        telemetry back on (:meth:`resume`) continues where it left off.
        """
        for bundle in self._bundles:
            bundle.suspend()

    def resume(self) -> None:
        """Undo :meth:`suspend`: restore every bundle's live instruments."""
        for bundle in self._bundles:
            bundle.resume()


def _mirror_stats(
    registry: MetricsRegistry,
    prefix: str,
    expected_fields: tuple[str, ...],
    skip: frozenset[str] = frozenset(),
) -> dict[str, Counter]:
    counters: dict[str, Counter] = {}
    for field in expected_fields:
        if field in skip:
            continue
        counters[field] = registry.counter(f"{prefix}_{field}_total")
    return counters


def _collect_stats(
    counters: Mapping[str, Counter], stats: object, skip: frozenset[str] = frozenset()
) -> None:
    for field in dataclasses.fields(stats):  # type: ignore[arg-type]
        if field.name in skip:
            continue
        counters[field.name].set_total(float(getattr(stats, field.name)))


class _InstrumentBundle:
    """Base for the per-layer bundles: wiring plus the live kill switch.

    ``_swap`` names the instrument attributes that :meth:`suspend`
    replaces with shared ``Null*`` singletons (and :meth:`resume` puts
    back).  Swapping the *attributes* rather than flagging each call
    site keeps the hot path branch-free in both states — suspended code
    runs the very same no-op method calls as a telemetry-less
    deployment.
    """

    _swap: tuple[tuple[str, object], ...] = ()

    def __init__(self, telemetry: Telemetry | None) -> None:
        self.enabled = telemetry is not None
        self.tracer = telemetry.tracer if telemetry else NULL_TRACER
        self._saved: dict[str, object] | None = None
        if telemetry is not None:
            telemetry._bundles.append(self)

    def suspend(self) -> None:
        if not self.enabled or self._saved is not None:
            return
        self._saved = {name: getattr(self, name) for name, _ in self._swap}
        for name, null in self._swap:
            setattr(self, name, null)
        self.enabled = False

    def resume(self) -> None:
        if self._saved is None:
            return
        for name, value in self._saved.items():
            setattr(self, name, value)
        self._saved = None
        self.enabled = True


class CoordinatorInstruments(_InstrumentBundle):
    """Direct instruments for the scheduling hot loop."""

    _swap = (
        ("tracer", NULL_TRACER),
        ("queue_depth", NULL_BOUND_GAUGE),
        ("envelope_slices", NULL_BOUND_HISTOGRAM),
        ("session_rounds", NULL_BOUND_HISTOGRAM),
    )

    def __init__(self, telemetry: Telemetry | None) -> None:
        super().__init__(telemetry)
        if telemetry is not None:
            registry = telemetry.registry
            self.queue_depth = registry.gauge("coordinator_queue_depth").bind()
            self.envelope_slices = registry.histogram(
                "coordinator_envelope_slices"
            ).bind()
            self.session_rounds = registry.histogram(
                "coordinator_session_rounds"
            ).bind()
        else:
            self.queue_depth = NULL_GAUGE.bind()
            self.envelope_slices = NULL_HISTOGRAM.bind()
            self.session_rounds = NULL_HISTOGRAM.bind()

    def register_stats_collector(
        self, telemetry: Telemetry | None, stats_fn: Callable[[], object]
    ) -> None:
        if telemetry is None:
            return
        counters = _mirror_stats(
            telemetry.registry, "coordinator", COORDINATOR_STAT_FIELDS
        )

        def collect() -> None:
            _collect_stats(counters, stats_fn())

        telemetry.registry.register_collector(collect)


_REPLICATION_GAUGE_FIELDS = frozenset({"max_staleness_seen"})


class ClusterInstruments(_InstrumentBundle):
    """Read/write-path instruments plus the cluster-side collectors."""

    _swap = (
        ("tracer", NULL_TRACER),
        ("reads", NULL_COUNTER),
        ("writes", NULL_COUNTER),
        ("read_lag_ticks", NULL_HISTOGRAM),
        ("read_staleness", NULL_BOUND_HISTOGRAM),
        ("quorum_refusals", NULL_BOUND_COUNTER),
        ("elections", NULL_BOUND_COUNTER),
    )

    def __init__(self, telemetry: Telemetry | None) -> None:
        super().__init__(telemetry)
        if telemetry is not None:
            registry = telemetry.registry
            self.reads: Counter = registry.counter("cluster_reads_total")
            self.writes: Counter = registry.counter("cluster_writes_total")
            self.read_lag_ticks: Histogram = registry.histogram(
                "cluster_read_lag_ticks"
            )
            self.read_staleness = registry.histogram("cluster_read_staleness").bind()
            self.quorum_refusals = registry.counter(
                "cluster_quorum_write_refusals_total"
            ).bind()
            self.elections = registry.counter("replication_elections_total").bind()
        else:
            self.reads = NULL_COUNTER
            self.writes = NULL_COUNTER
            self.read_lag_ticks = NULL_HISTOGRAM
            self.read_staleness = NULL_HISTOGRAM.bind()
            self.quorum_refusals = NULL_COUNTER.bind()
            self.elections = NULL_COUNTER.bind()
        self._read_bound: dict[str, tuple[BoundCounter, BoundHistogram]] = {}
        self._saved_read_bound: dict[str, tuple[BoundCounter, BoundHistogram]] = {}

    def read_instruments(self, consistency: str) -> tuple[BoundCounter, BoundHistogram]:
        """Per-consistency (reads counter, read-lag histogram) pair.

        ``_finalize_read`` runs once per served slice; binding the label
        set once per consistency level keeps the label freeze off that
        hot path.
        """
        pair = self._read_bound.get(consistency)
        if pair is None:
            pair = (
                self.reads.bind(consistency=consistency),
                self.read_lag_ticks.bind(consistency=consistency),
            )
            self._read_bound[consistency] = pair
        return pair

    def suspend(self) -> None:
        if not self.enabled or self._saved is not None:
            return
        # Park the per-consistency cache too: its pairs are bound to the
        # live counter/histogram.  Suspended lookups rebuild null pairs.
        self._saved_read_bound = self._read_bound
        self._read_bound = {}
        super().suspend()

    def resume(self) -> None:
        if self._saved is None:
            return
        self._read_bound = self._saved_read_bound
        super().resume()

    def register_collectors(
        self,
        telemetry: Telemetry | None,
        *,
        replication_stats: Callable[[], object],
        view_stats: Callable[[], object],
        list_heat: Callable[[], Mapping[int, int]],
        list_write_heat: Callable[[], Mapping[int, int]],
        per_server_load: Callable[[], Sequence[int]],
        log_lengths: Callable[[], Mapping[int, int]],
    ) -> None:
        if telemetry is None:
            return
        registry = telemetry.registry
        replication_counters = _mirror_stats(
            registry,
            "replication",
            REPLICATION_STAT_FIELDS,
        )
        max_staleness = registry.gauge("replication_max_staleness")
        view_counters = _mirror_stats(registry, "views", VIEW_STAT_FIELDS)
        server_load = registry.gauge("cluster_server_load")
        read_heat = registry.gauge("cluster_list_read_heat")
        write_heat = registry.gauge("cluster_list_write_heat")
        log_length = registry.gauge("replication_log_length")

        def collect() -> None:
            stats = replication_stats()
            _collect_stats(
                replication_counters, stats, skip=_REPLICATION_GAUGE_FIELDS
            )
            max_staleness.set(float(getattr(stats, "max_staleness_seen")))
            _collect_stats(view_counters, view_stats())
            for index, load in enumerate(per_server_load()):
                server_load.set(float(load), server=str(index))
            for list_id, heat in sorted(list_heat().items()):
                read_heat.set(float(heat), list=str(list_id))
            for list_id, heat in sorted(list_write_heat().items()):
                write_heat.set(float(heat), list=str(list_id))
            for list_id, length in sorted(log_lengths().items()):
                log_length.set(float(length), list=str(list_id))

        registry.register_collector(collect)


class ReplicationInstruments(_InstrumentBundle):
    """Handed to the replication manager for in-path observations."""

    _swap = (
        ("ack_latency", NULL_BOUND_HISTOGRAM),
        ("replica_lag", NULL_BOUND_HISTOGRAM),
    )

    def __init__(self, telemetry: Telemetry | None) -> None:
        super().__init__(telemetry)
        if telemetry is not None:
            registry = telemetry.registry
            self.ack_latency = registry.histogram(
                "replication_ack_latency_ticks"
            ).bind()
            self.replica_lag = registry.histogram("replication_replica_lag").bind()
        else:
            self.ack_latency = NULL_HISTOGRAM.bind()
            self.replica_lag = NULL_HISTOGRAM.bind()


class ClientInstruments(_InstrumentBundle):
    """Client-side skim accounting (the only crypto metrics producer)."""

    _swap = (
        ("tracer", NULL_TRACER),
        ("skim_elements", NULL_BOUND_COUNTER),
        ("skim_memo_hits", NULL_BOUND_COUNTER),
    )

    def __init__(self, telemetry: Telemetry | None) -> None:
        super().__init__(telemetry)
        if telemetry is not None:
            registry = telemetry.registry
            self.skim_elements = registry.counter("crypto_skim_elements_total").bind()
            self.skim_memo_hits = registry.counter(
                "crypto_skim_memo_hits_total"
            ).bind()
        else:
            self.skim_elements = NULL_COUNTER.bind()
            self.skim_memo_hits = NULL_COUNTER.bind()


class PersistInstruments(_InstrumentBundle):
    """Snapshot/restore accounting recorded by ``repro.persist``."""

    _swap = (
        ("snapshots", NULL_BOUND_COUNTER),
        ("snapshot_bytes", NULL_BOUND_GAUGE),
        ("snapshot_seconds", NULL_BOUND_GAUGE),
        ("restores", NULL_BOUND_COUNTER),
    )

    def __init__(self, telemetry: Telemetry | None) -> None:
        super().__init__(telemetry)
        if telemetry is not None:
            registry = telemetry.registry
            self.snapshots = registry.counter("persist_snapshots_total").bind()
            self.snapshot_bytes = registry.gauge("persist_snapshot_bytes").bind()
            self.snapshot_seconds = registry.gauge("persist_snapshot_seconds").bind()
            self.restores = registry.counter("persist_restores_total").bind()
        else:
            self.snapshots = NULL_COUNTER.bind()
            self.snapshot_bytes = NULL_GAUGE.bind()
            self.snapshot_seconds = NULL_GAUGE.bind()
            self.restores = NULL_COUNTER.bind()
