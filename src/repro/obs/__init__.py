"""``repro.obs`` — dependency-free unified telemetry.

Three cooperating pieces, all injectable and all deterministic under
the ``repro.core`` rules (tick clock only, no wall time, no global
state):

* **Metrics** — :class:`MetricsRegistry` hands out catalog-validated
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments
  with labeled series, plus snapshot / merge / reset.  The closed
  catalog lives in :data:`METRIC_CATALOG`.
* **Tracing** — :class:`Tracer` records per-request span trees
  (query → coalesce → envelope → serve → skim → read-repair),
  tick-stamped, in a bounded ring buffer; the trace-context id rides
  the wire on ``FetchRequest`` / ``CoalescedBatchRequest``.
* **Monitoring** — :class:`ClusterMonitor` samples the cluster every N
  ticks into fixed-size time-series windows of per-list read/write
  heat and per-server load — the input surface for ROADMAP item 2's
  forecasters.

:class:`Telemetry` bundles a registry and a tracer into the single
object threaded through ``deploy_cluster`` and the layer constructors;
``repro.obs.instruments`` holds the per-layer bound-instrument bundles
so ``repro.core`` never names a metric itself (the ``obs-discipline``
zlint rule enforces this).  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    metrics_to_dict,
    metrics_to_json,
    metrics_to_text,
    trace_to_dict,
    trace_to_json,
    trace_to_text,
)
from repro.obs.instruments import Telemetry
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.obs.monitor import ClusterMonitor, MonitorSample
from repro.obs.registry import METRIC_CATALOG, MetricSpec, MetricsRegistry
from repro.obs.trace import Span, Trace, Tracer

__all__ = [
    "METRIC_CATALOG",
    "ClusterMonitor",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSpec",
    "MetricsRegistry",
    "MonitorSample",
    "Span",
    "Telemetry",
    "Trace",
    "Tracer",
    "metrics_to_dict",
    "metrics_to_json",
    "metrics_to_text",
    "trace_to_dict",
    "trace_to_json",
    "trace_to_text",
]
