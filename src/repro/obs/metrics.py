"""Dependency-free metric primitives: Counter / Gauge / Histogram.

Every instrument holds *labeled series*: a mapping from a frozen,
sorted ``(key, value)`` label tuple to that series' state.  All values
are tick- or count-denominated — the registry lives under the
``repro.core`` determinism contract (the replication tick clock is the
only time source), so nothing in this module reads a wall clock.
Snapshots are plain JSON-shaped dicts with deterministic (sorted)
ordering, and merging two snapshots of the same catalog is well
defined: counters and histogram buckets add, gauges are right-biased.

Hot paths bind a series once (:meth:`Counter.bind`) and pay one method
call plus one dict update per event.  When telemetry is disabled the
``Null*`` subclasses swallow every mutation, so instrumented code never
branches on "is telemetry on?"
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Mapping, Sequence
from typing import Union

LabelKey = tuple[tuple[str, str], ...]

#: Default upper bounds for tick-denominated histograms (``+Inf`` is
#: implicit as the overflow bucket).
DEFAULT_TICK_BUCKETS: tuple[float, ...] = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: Default upper bounds for size/count histograms (slices, ops, ...).
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def freeze_labels(labels: Mapping[str, str]) -> LabelKey:
    """Canonical, hashable, deterministically ordered label identity."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Shared naming/metadata shell; concrete kinds add their series."""

    kind = "metric"

    __slots__ = ("name", "help_text", "unit")

    def __init__(self, name: str, *, help_text: str = "", unit: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self.unit = unit

    def reset(self) -> None:
        raise NotImplementedError

    def to_snapshot(self) -> dict[str, object]:
        raise NotImplementedError

    def merge_series(self, entry: Mapping[str, object]) -> None:
        raise NotImplementedError

    def _snapshot_shell(self) -> dict[str, object]:
        return {"kind": self.kind, "unit": self.unit, "help": self.help_text}

    @staticmethod
    def _entry_labels(entry: Mapping[str, object]) -> LabelKey:
        labels = entry.get("labels", {})
        if not isinstance(labels, Mapping):
            raise ValueError(f"series labels must be a mapping, got {labels!r}")
        return freeze_labels({str(k): str(v) for k, v in labels.items()})


class BoundCounter:
    """A counter series pre-resolved to one label set (hot-path handle)."""

    __slots__ = ("_series", "_key")

    def __init__(self, series: dict[LabelKey, float], key: LabelKey) -> None:
        self._series = series
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        self._series[self._key] = self._series.get(self._key, 0.0) + amount


class NullBoundCounter(BoundCounter):
    def inc(self, amount: float = 1.0) -> None:
        pass


class Counter(Metric):
    """Monotonic cumulative count, optionally split by labels."""

    kind = "counter"

    __slots__ = ("_series",)

    def __init__(self, name: str, *, help_text: str = "", unit: str = "") -> None:
        super().__init__(name, help_text=help_text, unit=unit)
        self._series: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = freeze_labels(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def set_total(self, value: float, **labels: str) -> None:
        """Overwrite the cumulative total (collector path: the live
        counter lives elsewhere — e.g. a ``*Stats`` dataclass — and is
        mirrored into the registry at snapshot time)."""
        self._series[freeze_labels(labels)] = value

    def bind(self, **labels: str) -> BoundCounter:
        return BoundCounter(self._series, freeze_labels(labels))

    def value(self, **labels: str) -> float:
        return self._series.get(freeze_labels(labels), 0.0)

    def total(self) -> float:
        return sum(self._series.values())

    def reset(self) -> None:
        self._series.clear()

    def to_snapshot(self) -> dict[str, object]:
        shell = self._snapshot_shell()
        shell["series"] = [
            {"labels": dict(key), "value": self._series[key]}
            for key in sorted(self._series)
        ]
        return shell

    def merge_series(self, entry: Mapping[str, object]) -> None:
        key = self._entry_labels(entry)
        value = float(entry.get("value", 0.0))  # type: ignore[arg-type]
        self._series[key] = self._series.get(key, 0.0) + value


class NullCounter(Counter):
    def inc(self, amount: float = 1.0, **labels: str) -> None:
        pass

    def set_total(self, value: float, **labels: str) -> None:
        pass

    def bind(self, **labels: str) -> BoundCounter:
        return NULL_BOUND_COUNTER


class BoundGauge:
    """A gauge series pre-resolved to one label set."""

    __slots__ = ("_series", "_key")

    def __init__(self, series: dict[LabelKey, float], key: LabelKey) -> None:
        self._series = series
        self._key = key

    def set(self, value: float) -> None:
        self._series[self._key] = value


class NullBoundGauge(BoundGauge):
    def set(self, value: float) -> None:
        pass


class Gauge(Metric):
    """Point-in-time value, optionally split by labels."""

    kind = "gauge"

    __slots__ = ("_series",)

    def __init__(self, name: str, *, help_text: str = "", unit: str = "") -> None:
        super().__init__(name, help_text=help_text, unit=unit)
        self._series: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._series[freeze_labels(labels)] = value

    def bind(self, **labels: str) -> BoundGauge:
        return BoundGauge(self._series, freeze_labels(labels))

    def value(self, **labels: str) -> float:
        return self._series.get(freeze_labels(labels), 0.0)

    def reset(self) -> None:
        self._series.clear()

    def to_snapshot(self) -> dict[str, object]:
        shell = self._snapshot_shell()
        shell["series"] = [
            {"labels": dict(key), "value": self._series[key]}
            for key in sorted(self._series)
        ]
        return shell

    def merge_series(self, entry: Mapping[str, object]) -> None:
        # Gauges are point-in-time: the merged-in snapshot wins.
        self._series[self._entry_labels(entry)] = float(entry.get("value", 0.0))  # type: ignore[arg-type]


class NullGauge(Gauge):
    def set(self, value: float, **labels: str) -> None:
        pass

    def bind(self, **labels: str) -> BoundGauge:
        return NULL_BOUND_GAUGE


class _HistogramSeries:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, num_buckets: int) -> None:
        self.bucket_counts = [0] * (num_buckets + 1)  # + overflow (+Inf)
        self.total = 0.0
        self.count = 0


class BoundHistogram:
    """A histogram series pre-resolved to one label set."""

    __slots__ = ("_histogram", "_key")

    def __init__(self, histogram: "Histogram", key: LabelKey) -> None:
        self._histogram = histogram
        self._key = key

    def observe(self, value: float) -> None:
        self._histogram._observe_key(self._key, value)


class NullBoundHistogram(BoundHistogram):
    def observe(self, value: float) -> None:
        pass


class Histogram(Metric):
    """Fixed-bucket distribution (bucket bounds are *upper* bounds).

    Buckets are fixed at construction — tick-denominated by default —
    so two snapshots of the same catalog metric always merge bucket by
    bucket.
    """

    kind = "histogram"

    __slots__ = ("buckets", "_series")

    def __init__(
        self,
        name: str,
        *,
        help_text: str = "",
        unit: str = "",
        buckets: Sequence[float] = DEFAULT_TICK_BUCKETS,
    ) -> None:
        super().__init__(name, help_text=help_text, unit=unit)
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"{name}: histogram buckets must strictly increase")
        if not bounds:
            raise ValueError(f"{name}: histogram needs at least one bucket")
        self.buckets = bounds
        self._series: dict[LabelKey, _HistogramSeries] = {}

    def _series_for(self, key: LabelKey) -> _HistogramSeries:
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        return series

    def _observe_key(self, key: LabelKey, value: float) -> None:
        series = self._series_for(key)
        # Upper bounds are inclusive, so the first bound >= value is the
        # target bucket; past the last bound lands in the overflow slot.
        series.bucket_counts[bisect_left(self.buckets, value)] += 1
        series.total += value
        series.count += 1

    def observe(self, value: float, **labels: str) -> None:
        self._observe_key(freeze_labels(labels), value)

    def bind(self, **labels: str) -> BoundHistogram:
        return BoundHistogram(self, freeze_labels(labels))

    def count(self, **labels: str) -> int:
        series = self._series.get(freeze_labels(labels))
        return series.count if series else 0

    def sum(self, **labels: str) -> float:
        series = self._series.get(freeze_labels(labels))
        return series.total if series else 0.0

    def bucket_counts(self, **labels: str) -> list[int]:
        series = self._series.get(freeze_labels(labels))
        if series is None:
            return [0] * (len(self.buckets) + 1)
        return list(series.bucket_counts)

    def mean(self, **labels: str) -> float:
        series = self._series.get(freeze_labels(labels))
        if series is None or series.count == 0:
            return 0.0
        return series.total / series.count

    def reset(self) -> None:
        self._series.clear()

    def to_snapshot(self) -> dict[str, object]:
        shell = self._snapshot_shell()
        bounds: list[Union[float, str]] = [*self.buckets, "+Inf"]
        shell["series"] = [
            {
                "labels": dict(key),
                "count": self._series[key].count,
                "sum": self._series[key].total,
                "buckets": [
                    [bound, count]
                    for bound, count in zip(bounds, self._series[key].bucket_counts)
                ],
            }
            for key in sorted(self._series)
        ]
        return shell

    def merge_series(self, entry: Mapping[str, object]) -> None:
        key = self._entry_labels(entry)
        series = self._series_for(key)
        buckets = entry.get("buckets", [])
        if not isinstance(buckets, Sequence) or len(buckets) != len(
            series.bucket_counts
        ):
            raise ValueError(
                f"{self.name}: merged snapshot has incompatible buckets"
            )
        for i, pair in enumerate(buckets):
            series.bucket_counts[i] += int(pair[1])
        series.total += float(entry.get("sum", 0.0))  # type: ignore[arg-type]
        series.count += int(entry.get("count", 0))  # type: ignore[arg-type]


class NullHistogram(Histogram):
    def observe(self, value: float, **labels: str) -> None:
        pass

    def _observe_key(self, key: LabelKey, value: float) -> None:
        pass

    def bind(self, **labels: str) -> BoundHistogram:
        return NULL_BOUND_HISTOGRAM


#: Shared no-op singletons handed out when telemetry is disabled.
NULL_BOUND_COUNTER = NullBoundCounter({}, ())
NULL_BOUND_GAUGE = NullBoundGauge({}, ())
NULL_COUNTER = NullCounter("null")
NULL_GAUGE = NullGauge("null")
NULL_HISTOGRAM = NullHistogram("null", buckets=(1.0,))
NULL_BOUND_HISTOGRAM = NullBoundHistogram(NULL_HISTOGRAM, ())
