"""Tick-stamped request tracing: span trees in a bounded ring buffer.

A *trace* is one logical request — a client query session — rooted at a
span opened with :meth:`Tracer.begin_trace` (the only non-context-
manager entry point, because a session root outlives any single call
frame: it stays open across coordinator scheduling ticks).  Every other
span MUST be opened with the :meth:`Tracer.span` context manager, which
guarantees balance: a span closes when its ``with`` block exits, even
on exception.  The ``obs-discipline`` zlint rule enforces the
context-manager-only discipline statically in ``repro.core``.

Parenting follows the synchronous call structure: an open ``span``
nests under the innermost span on the tracer's stack; with an empty
stack it attaches to the root of the trace named by ``trace=`` (the
trace-context id threaded through ``FetchRequest`` /
``CoalescedBatchRequest``); with neither it becomes its own
single-root trace, so direct-path serve spans are still recorded.

Timestamps are scheduling ticks from the injected ``clock`` — never
wall time (determinism contract).  Finished traces land in a
``deque(maxlen=capacity)`` ring; leaked roots are force-closed when the
active table would exceed the same bound, so memory is O(capacity).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterator
from types import TracebackType


class Span:
    """One tick-stamped node of a trace tree.

    A span returned by :meth:`Tracer.span` is its *own* context manager:
    ``__enter__`` stamps the start tick and links it into the tree,
    ``__exit__`` stamps the end tick.  Folding the scope into the node
    (instead of a separate ``@contextmanager`` or scope object) matters
    because span entry/exit sits on the coordinator/skim hot path — the
    generator machinery alone measurably ate the ``bench_hotpath``
    instrumentation budget, and a dedicated scope object is one more
    allocation per span.  Roots created by :meth:`Tracer.begin_trace`
    never use the context-manager half.
    """

    __slots__ = (
        "name",
        "start_tick",
        "end_tick",
        "attributes",
        "children",
        "_tracer",
        "_trace_ctx",
        "_owner",
    )

    _tracer: "Tracer"
    _trace_ctx: int | None
    _owner: "Trace | None"

    def __init__(self, name: str, start_tick: int, **attributes: object) -> None:
        self.name = name
        self.start_tick = start_tick
        self.end_tick: int | None = None
        self.attributes: dict[str, object] = dict(attributes)
        self.children: list[Span] = []
        self._trace_ctx = None
        self._owner = None

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.start_tick = tracer._clock()
        stack = tracer._stack
        if stack:
            stack[-1].children.append(self)
        elif self._trace_ctx is not None and self._trace_ctx in tracer._active:
            tracer._active[self._trace_ctx].root.children.append(self)
        else:
            # No enclosing span and no live trace context: record the
            # span as its own root so direct-path activity stays visible.
            self._owner = Trace(tracer._next_id, self)
            tracer._next_id += 1
        stack.append(self)
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        tracer = self._tracer
        tracer._stack.pop()
        self.end_tick = tracer._clock()
        if self._owner is not None:
            tracer._finished.append(self._owner)
            self._owner = None  # break the span <-> owning-trace cycle
        # Unlink the tracer: a closed span kept in the finished ring must
        # not form a cycle back through the tracer, or every recorded
        # trace becomes cyclic garbage the collector has to chase (which
        # shows up directly in the bench_hotpath overhead measurement).
        del self._tracer

    @property
    def closed(self) -> bool:
        return self.end_tick is not None

    @property
    def duration_ticks(self) -> int:
        if self.end_tick is None:
            return 0
        return self.end_tick - self.start_tick

    def annotate(self, **attributes: object) -> None:
        self.attributes.update(attributes)

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "start_tick": self.start_tick,
            "end_tick": self.end_tick,
            "attributes": {k: self.attributes[k] for k in sorted(self.attributes)},
            "children": [child.to_dict() for child in self.children],
        }


class Trace:
    """A finished or in-flight span tree with its wire-threaded id."""

    __slots__ = ("trace_id", "root")

    def __init__(self, trace_id: int, root: Span) -> None:
        self.trace_id = trace_id
        self.root = root

    def spans(self) -> list[Span]:
        return list(self.root.walk())

    def to_dict(self) -> dict[str, object]:
        return {"trace_id": self.trace_id, "root": self.root.to_dict()}


class _NullSpan(Span):
    """Shared no-op span: entering costs one attribute read, no allocs."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None

    def annotate(self, **attributes: object) -> None:
        pass


class Tracer:
    """Span factory with a shared nesting stack and a bounded ring."""

    def __init__(self, clock: Callable[[], int], *, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self._clock = clock
        self._capacity = capacity
        self._next_id = 1
        # Plain dict: insertion order IS open order (ids only grow), and
        # next(iter(...)) finds the oldest root for capacity force-close.
        self._active: dict[int, Trace] = {}
        self._stack: list[Span] = []
        self._finished: deque[Trace] = deque(maxlen=capacity)

    @property
    def capacity(self) -> int:
        return self._capacity

    def begin_trace(self, name: str, **attributes: object) -> int:
        """Open a session-lifetime root span; returns the trace id.

        The root does NOT join the nesting stack (it outlives call
        frames); child spans reach it via ``span(..., trace=id)``.
        """
        if len(self._active) >= self._capacity:
            oldest_id = next(iter(self._active))
            self.end_trace(oldest_id)  # force-close the leaked root
        trace_id = self._next_id
        self._next_id += 1
        root = Span(name, self._clock(), **attributes)
        self._active[trace_id] = Trace(trace_id, root)
        return trace_id

    def end_trace(self, trace_id: int | None) -> None:
        """Close a root opened by :meth:`begin_trace` and ring-buffer it."""
        if trace_id is None:
            return
        trace = self._active.pop(trace_id, None)
        if trace is None:
            return
        if trace.root.end_tick is None:
            trace.root.end_tick = self._clock()
        self._finished.append(trace)

    def span(
        self, name: str, *, trace: int | None = None, **attributes: object
    ) -> Span:
        """Open a child span; ALWAYS use as a context manager.

        Built via ``__new__`` rather than ``Span(...)``: the ``**kwargs``
        dict is fresh and can be owned outright, and skipping the
        ``__init__`` frame + dict copy is measurable at hot-path span
        rates.  ``start_tick`` is stamped in ``__enter__``.
        """
        node = Span.__new__(Span)
        node.name = name
        node.end_tick = None
        node.attributes = attributes
        node.children = []
        node._tracer = self
        node._trace_ctx = trace
        node._owner = None
        return node

    def active_trace_ids(self) -> list[int]:
        return list(self._active)

    def open_spans(self) -> int:
        return len(self._stack)

    def traces(self) -> list[Trace]:
        """Finished traces, oldest first (bounded by ``capacity``)."""
        return list(self._finished)

    def last_trace(self) -> Trace | None:
        return self._finished[-1] if self._finished else None

    def reset(self) -> None:
        self._active.clear()
        self._stack.clear()
        self._finished.clear()


class NullTracer(Tracer):
    """No-op tracer handed to instrumented code when telemetry is off."""

    def __init__(self) -> None:
        super().__init__(lambda: 0, capacity=1)
        self._null_span = _NullSpan("null", 0)
        self._null_span._tracer = self

    def begin_trace(self, name: str, **attributes: object) -> int:
        return 0

    def end_trace(self, trace_id: int | None) -> None:
        pass

    def span(
        self, name: str, *, trace: int | None = None, **attributes: object
    ) -> Span:
        return self._null_span


NULL_TRACER = NullTracer()
