"""Exposition formats: JSON and human text for metrics, traces, monitor.

The JSON shapes are stable, sorted, and schema-stamped so CI can diff
artifacts across runs; the text renderers exist for the CLI
(``repro-index metrics`` / ``repro-index trace``) and favour scanning
over completeness — the JSON is the full record.
"""

from __future__ import annotations

import json
from collections.abc import Mapping

from repro.obs.monitor import ClusterMonitor
from repro.obs.trace import Span, Trace

METRICS_SCHEMA_VERSION = 1


def metrics_to_dict(
    snapshot: Mapping[str, Mapping[str, object]],
    *,
    monitor: ClusterMonitor | None = None,
) -> dict[str, object]:
    record: dict[str, object] = {
        "schema_version": METRICS_SCHEMA_VERSION,
        "metrics": {name: dict(snapshot[name]) for name in sorted(snapshot)},
    }
    if monitor is not None:
        record["monitor"] = monitor.to_dict()
    return record


def metrics_to_json(
    snapshot: Mapping[str, Mapping[str, object]],
    *,
    monitor: ClusterMonitor | None = None,
) -> str:
    return json.dumps(
        metrics_to_dict(snapshot, monitor=monitor), indent=2, sort_keys=True
    )


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.4f}"


def metrics_to_text(snapshot: Mapping[str, Mapping[str, object]]) -> str:
    """One line per series: ``name{labels} value [unit]``."""
    lines: list[str] = []
    for name in sorted(snapshot):
        data = snapshot[name]
        unit = str(data.get("unit", ""))
        suffix = f" {unit}" if unit else ""
        series = data.get("series", [])
        if not isinstance(series, list) or not series:
            continue
        for entry in series:
            labels = entry.get("labels", {})
            label_text = (
                "{" + ",".join(f"{k}={labels[k]}" for k in sorted(labels)) + "}"
                if labels
                else ""
            )
            if data.get("kind") == "histogram":
                count = int(entry.get("count", 0))
                total = float(entry.get("sum", 0.0))
                mean = total / count if count else 0.0
                lines.append(
                    f"{name}{label_text} count={count} "
                    f"mean={_format_value(mean)}{suffix}"
                )
            else:
                lines.append(
                    f"{name}{label_text} "
                    f"{_format_value(float(entry.get('value', 0.0)))}{suffix}"
                )
    return "\n".join(lines)


def trace_to_dict(trace: Trace) -> dict[str, object]:
    return trace.to_dict()


def trace_to_json(trace: Trace) -> str:
    return json.dumps(trace_to_dict(trace), indent=2, sort_keys=True)


def _render_span(span: Span, depth: int, lines: list[str]) -> None:
    indent = "  " * depth
    end = span.end_tick if span.end_tick is not None else "?"
    attrs = ", ".join(
        f"{name}={span.attributes[name]}" for name in sorted(span.attributes)
    )
    attr_text = f" [{attrs}]" if attrs else ""
    lines.append(
        f"{indent}{span.name} (tick {span.start_tick}..{end}){attr_text}"
    )
    for child in span.children:
        _render_span(child, depth + 1, lines)


def trace_to_text(trace: Trace) -> str:
    """Indented ascii span tree, one span per line."""
    lines: list[str] = [f"trace {trace.trace_id}"]
    _render_span(trace.root, 1, lines)
    return "\n".join(lines)
