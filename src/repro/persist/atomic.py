"""Crash-safe file replacement for index dumps.

``Path.write_text`` truncates the target before writing, so a crash
mid-dump destroys the only copy — the exact restart-amnesia failure the
persistence layer exists to prevent.  :func:`atomic_write_text` writes to
a temporary file *in the same directory* (``os.replace`` is only atomic
within one filesystem), flushes and fsyncs it, and renames it into place,
so an interrupted save always leaves either the previous file or the new
one — never a torn hybrid.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_text(path: str | Path, text: str) -> None:
    """Replace *path*'s content with *text* atomically.

    The previous file (if any) survives any failure up to and including
    the final rename; the temporary file is removed on every error path.
    """
    path = Path(path)
    fd, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        # mkstemp creates 0600; carry over the destination's mode (or the
        # umask default for a first save) so saving never tightens a
        # dump's permissions behind the operator's back.
        try:
            mode = os.stat(path).st_mode & 0o777
        except OSError:
            current_umask = os.umask(0)
            os.umask(current_umask)
            mode = 0o666 & ~current_umask
        os.fchmod(fd, mode)
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
        _fsync_directory(path.parent)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def _fsync_directory(directory: Path) -> None:
    """Flush the directory entry so the rename survives power loss.

    Without this the data is durable but the *name* may not be: a crash
    after :func:`os.replace` could roll the directory back to the old
    dump.  Best effort — some platforms/filesystems cannot fsync a
    directory handle, and the rename is already atomic there.
    """
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)
