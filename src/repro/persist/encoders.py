"""JSON encoders/decoders shared by the v1 and v2 dump formats.

Everything here is symmetric pairs (``*_to_dict`` / ``*_from_dict``) over
plain JSON types; ciphertexts travel base64.  Decoders validate against
the dump's own declared shape and raise
:class:`~repro.errors.ConfigurationError` naming the *source* (the file
path) and the offending value, so a corrupt or hand-edited dump fails
with a diagnosis instead of escaping as a raw ``KeyError``/``IndexError``
deep inside the server.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path

from repro.core.rstf import Rstf, RstfModel
from repro.core.server import ZerberRServer
from repro.crypto.keys import GroupKeyService
from repro.errors import ConfigurationError
from repro.index.merge import MergePlan
from repro.index.postings import EncryptedPostingElement

#: Current dump format.  v2 adds per-list version counters, the dump
#: ``kind`` tag ("server" | "cluster") and the whole-cluster sections.
FORMAT_VERSION = 2

#: The legacy single-server format (pre-replication deployments); still
#: loaded byte-identically by :func:`repro.persist.load_index`.
V1_FORMAT_VERSION = 1


def read_payload(path: str | Path) -> dict:
    """Parse a dump file, wrapping corruption into a named error."""
    try:
        payload = json.loads(Path(path).read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise ConfigurationError(f"{path}: corrupt index dump: {error}") from error
    if not isinstance(payload, dict):
        raise ConfigurationError(f"{path}: corrupt index dump: not a JSON object")
    return payload


# -- posting elements ---------------------------------------------------------


def element_to_dict(element: EncryptedPostingElement) -> dict:
    return {
        "c": base64.b64encode(element.ciphertext).decode(),
        "g": element.group,
        "t": element.trs,
    }


def element_from_dict(entry: dict) -> EncryptedPostingElement:
    return EncryptedPostingElement(
        ciphertext=base64.b64decode(entry["c"]),
        group=entry["g"],
        trs=entry["t"],
    )


# -- setup artifacts ----------------------------------------------------------


def merge_plan_to_dict(plan: MergePlan) -> dict:
    return {"r": plan.r, "groups": [list(group) for group in plan.groups]}


def merge_plan_from_dict(data: dict) -> MergePlan:
    return MergePlan(
        groups=tuple(tuple(group) for group in data["groups"]), r=float(data["r"])
    )


def rstf_model_to_dict(model: RstfModel) -> dict:
    encoded = {}
    for term in sorted(model.terms()):
        rstf = model.get(term)
        encoded[term] = {
            "mus": list(rstf.mus),
            "sigma": rstf.sigma,
            "kind": rstf.kind,
        }
    return encoded


def rstf_model_from_dict(data: dict) -> RstfModel:
    return RstfModel(
        {
            term: Rstf(
                mus=tuple(entry["mus"]),
                sigma=float(entry["sigma"]),
                kind=entry["kind"],
            )
            for term, entry in data.items()
        }
    )


# -- server state -------------------------------------------------------------


def server_to_dict(server: ZerberRServer, include_versions: bool = True) -> dict:
    """One server's merged lists; empty lists are omitted.

    ``include_versions=True`` (format v2) additionally records each
    list's mutation counter, so a reload resumes exactly where the
    pre-restart process stopped instead of restarting every counter from
    scratch — without it, post-restart version-stamped fetch responses
    and replication applied-versions cannot be compared against any
    pre-restart log state.  ``include_versions=False`` reproduces the v1
    wire shape byte-for-byte.
    """
    lists = {}
    versions = {}
    for list_id in range(server.num_lists):
        merged = server._lists[list_id]
        if merged.elements:
            lists[str(list_id)] = [element_to_dict(e) for e in merged.elements]
        if merged.version:
            versions[str(list_id)] = merged.version
    data = {"num_lists": server.num_lists, "lists": lists}
    if include_versions:
        data["versions"] = versions
    return data


def decode_list_id(list_id_str: str, num_lists: int, source: str | Path) -> int:
    """Validate one dumped list id against the dump's declared width."""
    try:
        list_id = int(list_id_str)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"{source}: corrupt dump: list id {list_id_str!r} is not an integer"
        ) from None
    if not 0 <= list_id < num_lists:
        raise ConfigurationError(
            f"{source}: corrupt dump: list id {list_id} out of range "
            f"(dump declares {num_lists} lists)"
        )
    return list_id


def load_server_state(
    server: ZerberRServer, data: dict, source: str | Path
) -> None:
    """Restore merged lists (and, for v2 dumps, their version counters)
    into an existing, empty server.

    v1 dumps carry no counters; their lists restore at version 1 —
    exactly where every pre-v2 build's reload left them.
    """
    num_lists = server.num_lists
    try:
        lists = data["lists"]
        versions = data.get("versions", {})
        decoded: list[tuple[str, list, int]] = []
        for list_id_str in sorted(set(lists) | set(versions), key=str):
            elements = [
                element_from_dict(entry) for entry in lists.get(list_id_str, ())
            ]
            if list_id_str in versions:
                version = int(versions[list_id_str])
                if version < 1:
                    raise ConfigurationError(
                        f"{source}: corrupt dump: list {list_id_str} has "
                        f"non-positive version {version}"
                    )
            else:
                version = 1 if elements else 0
            decoded.append((list_id_str, elements, version))
    except ConfigurationError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise ConfigurationError(
            f"{source}: corrupt dump: {error!r}"
        ) from error
    for list_id_str, elements, version in decoded:
        list_id = decode_list_id(list_id_str, num_lists, source)
        if version == 0 and not elements:
            continue
        server.restore_list(list_id, elements, version)


def server_from_dict(
    data: dict, key_service: GroupKeyService, source: str | Path = "<dump>"
) -> ZerberRServer:
    """Reconstruct a standalone server from a dumped ``server`` section."""
    server = ZerberRServer(key_service, num_lists=int(data["num_lists"]))
    load_server_state(server, data, source)
    return server
