"""Format-v2 cluster snapshots: encode, decode, and crash-safe recovery.

A cluster snapshot captures everything the untrusted host tier must not
forget across a restart (the ``cluster`` section of a v2 dump):

* every server's merged lists **with their mutation counters** — so
  version-stamped fetch responses stay comparable across the restart;
* the placement table and its epoch — so pre-restart envelopes are
  correctly rejected, not silently served from a reshuffled shard map;
* the replication manager's durable state: each list's log tail above
  ``base_seq``, every replica's applied version, the lag model, the
  anti-entropy cadence, the tick clock, and the paused/down server sets;
* optionally, the hottest per-server readable views, spilled as
  merged-list positions so a warm restart skips their full rebuilds.

Recovery (:func:`cluster_from_dict`) rebuilds a live
:class:`~repro.core.cluster.ServerCluster` in dependency order —
topology, clock, list contents, logs + applied versions, then views —
re-registering each replica at its persisted applied version.  Replicas
behind the restored log head get their remaining ops *scheduled* through
the normal catch-up machinery, so a restarted lagged or paused follower
converges exactly as a live one would: no acknowledged op is lost, and
one anti-entropy sweep bounds how long convergence takes.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path
from time import perf_counter

from repro.core.cluster import ServerCluster
from repro.core.placement import PlacementPolicy, ReadSelector
from repro.core.replication import FailoverEvent, LagModel, ReplicationOp
from repro.core.rstf import RstfModel
from repro.crypto.keys import GroupKeyService
from repro.errors import ConfigurationError, ProtocolError, ReproError
from repro.index.merge import MergePlan
from repro.obs.instruments import PersistInstruments, Telemetry
from repro.persist.atomic import atomic_write_text
from repro.persist.encoders import (
    FORMAT_VERSION,
    decode_list_id,
    element_from_dict,
    element_to_dict,
    load_server_state,
    merge_plan_from_dict,
    merge_plan_to_dict,
    read_payload,
    rstf_model_from_dict,
    rstf_model_to_dict,
    server_to_dict,
)

DEFAULT_VIEW_SPILL = 64


# -- replication ops ----------------------------------------------------------


def replication_op_to_dict(op: ReplicationOp) -> dict:
    entry: dict = {"s": op.seq, "k": op.kind}
    if op.element is not None:
        entry["e"] = element_to_dict(op.element)
    if op.ciphertext is not None:
        entry["c"] = base64.b64encode(op.ciphertext).decode()
    return entry


def replication_op_from_dict(entry: dict, source: str | Path) -> ReplicationOp:
    kind = entry.get("k")
    if kind == "insert":
        if "e" not in entry:
            raise ConfigurationError(
                f"{source}: corrupt cluster dump: insert op {entry.get('s')} "
                "has no element payload"
            )
        return ReplicationOp(
            seq=int(entry["s"]), kind="insert", element=element_from_dict(entry["e"])
        )
    if kind == "delete":
        if "c" not in entry:
            raise ConfigurationError(
                f"{source}: corrupt cluster dump: delete op {entry.get('s')} "
                "has no ciphertext receipt"
            )
        return ReplicationOp(
            seq=int(entry["s"]),
            kind="delete",
            ciphertext=base64.b64decode(entry["c"]),
        )
    raise ConfigurationError(
        f"{source}: corrupt cluster dump: unknown replication op kind {kind!r}"
    )


# -- whole-cluster encode -----------------------------------------------------


def cluster_to_dict(
    cluster: ServerCluster, spill_views: int = DEFAULT_VIEW_SPILL
) -> dict:
    """The durable state of a cluster as one JSON-ready dict.

    *spill_views* caps how many hot readable views each server spills
    (0 disables the spill; views then rebuild lazily after recovery).
    """
    repl = cluster.replication_manager
    logs: dict[str, dict] = {}
    applied: dict[str, dict] = {}
    for list_id in range(cluster.num_lists):
        head, base, ops = repl.log_snapshot(list_id)
        if head == 0:
            continue  # never written: every replica is trivially at 0
        logs[str(list_id)] = {
            "head": head,
            "base": base,
            "ops": [replication_op_to_dict(op) for op in ops],
        }
        applied[str(list_id)] = {
            str(server_index): version
            for server_index, version in repl.applied_snapshot(list_id).items()
        }
    lag = repl.lag
    return {
        "num_lists": cluster.num_lists,
        "num_servers": cluster.num_servers,
        "replication": cluster.replication,
        "placement": [list(replicas) for replicas in cluster.placement_table()],
        "epoch": cluster.placement_epoch,
        "read_consistency": cluster.read_consistency.value,
        "write_consistency": cluster.write_consistency.value,
        # Promotion state (format-v2 extension; absent in older dumps —
        # decode falls back to disabled failover and an empty history).
        # The elected primaries themselves travel in "placement": the
        # extension carries the audit trail and the in-progress timers so
        # a restart taken mid-outage resumes the failover clock.
        "failover": {
            "after": cluster.failover_after,
            "unreachable_since": {
                str(server_index): tick
                for server_index, tick in sorted(
                    cluster.unreachable_since().items()
                )
            },
            "history": [
                {
                    "list": event.list_id,
                    "old": event.old_primary,
                    "new": event.new_primary,
                    "tick": event.tick,
                }
                for event in cluster.failover_history()
            ],
        },
        "lag": {
            "fixed_ticks": lag.fixed_ticks,
            "per_server": {
                str(server_index): delay
                for server_index, delay in sorted(lag.per_server.items())
            },
        },
        "anti_entropy_every": repl.anti_entropy_every,
        "down": [
            server_index
            for server_index in range(cluster.num_servers)
            if not cluster.is_alive(server_index)
        ],
        "replication_state": {
            "tick_count": repl.tick_count,
            "paused": sorted(repl.paused_servers()),
            "logs": logs,
            "applied": applied,
        },
        "servers": [
            {
                **server_to_dict(cluster.server(server_index)),
                "views": cluster.server(server_index).spill_views(spill_views),
                # Per-server heat (format-v2 extension; absent in older
                # dumps — decode leaves the counters cold).  Persisting it
                # fixes the stats amnesia that reset heat-weighted
                # placement (and the monitor's heat series) every restart.
                "heat": {
                    "fetch_counts": {
                        str(list_id): count
                        for list_id, count in sorted(
                            cluster.server(server_index).fetch_counts.items()
                        )
                    },
                    "calls": cluster.server(server_index).num_calls,
                },
            }
            for server_index in range(cluster.num_servers)
        ],
    }


# -- whole-cluster decode / recovery ------------------------------------------


def cluster_from_dict(
    data: dict,
    key_service: GroupKeyService,
    source: str | Path = "<dump>",
    placement: PlacementPolicy | None = None,
    read_strategy: ReadSelector | str | None = None,
    read_seed: int = 0,
    telemetry: Telemetry | None = None,
) -> ServerCluster:
    """Recover a live cluster from a dumped ``cluster`` section.

    *placement* and *read_strategy* are runtime policy — code, not data —
    so they are supplied by the caller (defaults match the cluster
    defaults); the authoritative placement *table* and epoch come from
    the dump regardless of the policy object.  *telemetry*, likewise
    runtime wiring, instruments the recovered cluster from its first
    post-restore operation on.
    """
    try:
        num_lists = int(data["num_lists"])
        num_servers = int(data["num_servers"])
        replication = int(data["replication"])
        lag_data = data.get("lag", {})
        lag = LagModel(
            fixed_ticks=int(lag_data.get("fixed_ticks", 0)),
            per_server={
                int(server_index): int(delay)
                for server_index, delay in lag_data.get("per_server", {}).items()
            },
        )
        failover_data = data.get("failover", {})
        failover_after = failover_data.get("after")
        cluster = ServerCluster(
            key_service,
            num_lists=num_lists,
            num_servers=num_servers,
            replication=replication,
            placement=placement,
            lag=lag,
            read_consistency=data.get("read_consistency"),
            read_strategy=read_strategy,
            read_seed=read_seed,
            anti_entropy_every=data.get("anti_entropy_every"),
            write_consistency=data.get("write_consistency"),
            failover_after=None if failover_after is None else int(failover_after),
            telemetry=telemetry,
        )
        cluster.restore_topology(
            [tuple(replicas) for replicas in data["placement"]],
            int(data.get("epoch", 0)),
        )
        cluster.restore_failover_state(
            history=[
                FailoverEvent(
                    list_id=int(entry["list"]),
                    old_primary=int(entry["old"]),
                    new_primary=int(entry["new"]),
                    tick=int(entry["tick"]),
                )
                for entry in failover_data.get("history", ())
            ],
            unreachable_since={
                int(server_index): int(tick)
                for server_index, tick in failover_data.get(
                    "unreachable_since", {}
                ).items()
            },
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ConfigurationError(
            f"{source}: corrupt cluster dump: {error!r}"
        ) from error
    except ReproError as error:
        raise ConfigurationError(
            f"{source}: corrupt cluster dump: {error}"
        ) from error

    servers_data = data.get("servers", [])
    if len(servers_data) != num_servers:
        raise ConfigurationError(
            f"{source}: corrupt cluster dump: {len(servers_data)} server "
            f"sections for {num_servers} declared servers"
        )
    for server_index, server_data in enumerate(servers_data):
        load_server_state(cluster.server(server_index), server_data, source)
        heat = server_data.get("heat")
        if heat is not None:  # absent in pre-extension dumps: stay cold
            try:
                cluster.server(server_index).restore_heat(
                    {
                        decode_list_id(list_id_str, num_lists, source): int(count)
                        for list_id_str, count in heat.get(
                            "fetch_counts", {}
                        ).items()
                    },
                    int(heat.get("calls", 0)),
                )
            except (ReproError, TypeError, ValueError) as error:
                raise ConfigurationError(
                    f"{source}: corrupt cluster dump: server {server_index} "
                    f"heat section: {error}"
                ) from error

    repl = cluster.replication_manager
    state = data.get("replication_state", {})
    try:
        repl.restore_clock(
            int(state.get("tick_count", 0)),
            (int(server_index) for server_index in state.get("paused", ())),
        )
    except (ReproError, TypeError, ValueError) as error:
        raise ConfigurationError(
            f"{source}: corrupt cluster dump: {error}"
        ) from error
    applied_sections = state.get("applied", {})
    for list_id_str, log_data in state.get("logs", {}).items():
        list_id = decode_list_id(list_id_str, num_lists, source)
        applied_data = applied_sections.get(list_id_str)
        if applied_data is None:
            raise ConfigurationError(
                f"{source}: corrupt cluster dump: list {list_id} has a log "
                "but no applied versions"
            )
        try:
            repl.restore_list_state(
                list_id,
                int(log_data["head"]),
                int(log_data["base"]),
                [
                    replication_op_from_dict(entry, source)
                    for entry in log_data.get("ops", ())
                ],
                {
                    int(server_index): int(version)
                    for server_index, version in applied_data.items()
                },
            )
        except (ProtocolError, KeyError, TypeError, ValueError) as error:
            raise ConfigurationError(
                f"{source}: corrupt cluster dump: {error}"
            ) from error

    for server_index in data.get("down", ()):
        server_index = int(server_index)
        if not 0 <= server_index < num_servers:
            raise ConfigurationError(
                f"{source}: corrupt cluster dump: down-server index "
                f"{server_index} out of range"
            )
        cluster.fail_server(server_index)

    for server_index, server_data in enumerate(servers_data):
        for view in server_data.get("views", ()):
            try:
                list_id = decode_list_id(str(view["list"]), num_lists, source)
                cluster.server(server_index).adopt_view(
                    list_id,
                    view["principal"],
                    view["groups"],
                    view["positions"],
                    int(view["version"]),
                )
            except ConfigurationError:
                raise
            except (KeyError, TypeError, ValueError) as error:
                raise ConfigurationError(
                    f"{source}: corrupt cluster dump: spilled view "
                    f"{view!r}: {error!r}"
                ) from error
    return cluster


# -- top-level save/load ------------------------------------------------------


def save_cluster(
    path: str | Path,
    cluster: ServerCluster,
    merge_plan: MergePlan,
    rstf_model: RstfModel,
    spill_views: int = DEFAULT_VIEW_SPILL,
) -> None:
    """Atomically write a whole-cluster snapshot plus setup artifacts.

    Like :func:`~repro.persist.save_index`, the dump holds only what the
    untrusted host tier stores (ciphertexts, TRS, group tags, logs) plus
    the public setup artifacts — never keys.  An instrumented cluster
    records snapshot size and duration into its telemetry registry
    (wall-clock timing is fine here: ``repro.persist`` is outside the
    determinism scope).
    """
    obs = PersistInstruments(cluster.telemetry)
    start = perf_counter()
    payload = {
        "format_version": FORMAT_VERSION,
        "kind": "cluster",
        "merge_plan": merge_plan_to_dict(merge_plan),
        "rstf_model": rstf_model_to_dict(rstf_model),
        "cluster": cluster_to_dict(cluster, spill_views=spill_views),
    }
    text = json.dumps(payload)
    atomic_write_text(path, text)
    obs.snapshots.inc()
    obs.snapshot_bytes.set(float(len(text.encode())))
    obs.snapshot_seconds.set(perf_counter() - start)


def load_cluster(
    path: str | Path,
    key_service: GroupKeyService,
    placement: PlacementPolicy | None = None,
    read_strategy: ReadSelector | str | None = None,
    read_seed: int = 0,
    telemetry: Telemetry | None = None,
) -> tuple[ServerCluster, MergePlan, RstfModel]:
    """Recover a cluster snapshot against a (trusted) key service.

    The key service must already know the deployment's groups and
    principals — like :func:`~repro.persist.load_index`, only the
    untrusted state is restored.  *telemetry* instruments the recovered
    cluster and counts the restore.
    """
    payload = read_payload(path)
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"{path}: unsupported cluster snapshot version: {version!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    kind = payload.get("kind")
    if kind != "cluster":
        raise ConfigurationError(
            f"{path}: not a cluster snapshot (kind={kind!r}); "
            "use repro.persist.load_index for single-server dumps"
        )
    try:
        merge_plan = merge_plan_from_dict(payload["merge_plan"])
        rstf_model = rstf_model_from_dict(payload["rstf_model"])
    except (KeyError, TypeError, ValueError) as error:
        raise ConfigurationError(
            f"{path}: corrupt cluster dump: {error!r}"
        ) from error
    try:
        cluster_section = payload["cluster"]
    except KeyError:
        raise ConfigurationError(
            f"{path}: corrupt cluster dump: missing 'cluster' section"
        ) from None
    cluster = cluster_from_dict(
        cluster_section,
        key_service,
        source=path,
        placement=placement,
        read_strategy=read_strategy,
        read_seed=read_seed,
        telemetry=telemetry,
    )
    PersistInstruments(telemetry).restores.inc()
    return cluster, merge_plan, rstf_model
