"""On-disk persistence for a Zerber+R deployment.

What is persisted is exactly what an untrusted host durably stores: the
merged lists (ciphertext, group tag, TRS) — no keys, no plaintext —
plus the *public* setup artifacts a joining client needs (the merge plan
and the published RSTF model).  Group keys are deliberately **not**
serialised; they live in the trusted
:class:`~repro.crypto.keys.GroupKeyService`, which a deployment
reconstructs from its own secret.

Two dump kinds share one version-tagged JSON container:

* ``kind: "server"`` — a single :class:`~repro.core.server.ZerberRServer`
  (:func:`save_index` / :func:`load_index`).  Format v1 (the legacy,
  pre-replication dump without version counters or a ``kind`` tag) still
  loads byte-identically.
* ``kind: "cluster"`` — a whole
  :class:`~repro.core.cluster.ServerCluster` (:func:`save_cluster` /
  :func:`load_cluster`), including its replication logs; see
  :mod:`repro.persist.clusterstate`.

Format / recovery invariants (v2)
---------------------------------

1. **Atomicity.**  Every save writes a temp file in the target's
   directory and ``os.replace``\\ s it into place: an interrupted save
   leaves the previous dump intact, never a torn file
   (:mod:`repro.persist.atomic`).
2. **Versions restart nowhere.**  Each merged list's mutation counter
   and each replication log's ``(base_seq, head_seq]`` tail are part of
   the dump, so post-restart version stamps remain comparable with
   pre-restart state: ``head_seq`` continues from where the crashed
   process stopped, and invariant 3 of
   :mod:`repro.core.replication` (``base_seq <= min(applied)``) holds in
   the dump because it held in memory when the snapshot was taken.
3. **Acknowledged ops survive restarts.**  Recovery re-registers every
   replica at its *persisted* applied version; a replica behind the
   restored head gets its remaining log ops scheduled through the normal
   catch-up machinery, so a restarted lagged/paused/dead follower
   converges exactly as a live one would (one anti-entropy sweep bounds
   the wait) — it never silently restarts blank.
4. **Warm views are hints, not truth.**  Spilled readable views restore
   with the membership snapshot and list version they were built under;
   the first read re-checks both against the live key service and list,
   so a stale spill costs one rebuild and can never serve under revoked
   access rights.
5. **Corruption fails loudly.**  Decoders validate ids, shapes, log
   bounds and op payloads against the dump's own declarations and raise
   :class:`~repro.errors.ConfigurationError` naming the file and the
   offending value — nothing escapes as a raw ``KeyError`` or
   ``IndexError``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.rstf import RstfModel
from repro.core.server import ZerberRServer
from repro.crypto.keys import GroupKeyService
from repro.errors import ConfigurationError
from repro.index.merge import MergePlan
from repro.persist.atomic import atomic_write_text
from repro.persist.clusterstate import (
    DEFAULT_VIEW_SPILL,
    cluster_from_dict,
    cluster_to_dict,
    load_cluster,
    replication_op_from_dict,
    replication_op_to_dict,
    save_cluster,
)
from repro.persist.encoders import (
    FORMAT_VERSION,
    V1_FORMAT_VERSION,
    element_from_dict,
    element_to_dict,
    merge_plan_from_dict,
    merge_plan_to_dict,
    read_payload,
    rstf_model_from_dict,
    rstf_model_to_dict,
    server_from_dict,
    server_to_dict,
)

__all__ = [
    "FORMAT_VERSION",
    "V1_FORMAT_VERSION",
    "DEFAULT_VIEW_SPILL",
    "save_index",
    "load_index",
    "save_cluster",
    "load_cluster",
    "cluster_to_dict",
    "cluster_from_dict",
    "element_to_dict",
    "element_from_dict",
    "merge_plan_to_dict",
    "merge_plan_from_dict",
    "replication_op_to_dict",
    "replication_op_from_dict",
    "rstf_model_to_dict",
    "rstf_model_from_dict",
    "server_to_dict",
    "server_from_dict",
    "read_payload",
    "atomic_write_text",
]


def save_index(
    path: str | Path,
    server: ZerberRServer,
    merge_plan: MergePlan,
    rstf_model: RstfModel,
) -> None:
    """Atomically write the untrusted-host state plus public setup artifacts."""
    payload = {
        "format_version": FORMAT_VERSION,
        "kind": "server",
        "merge_plan": merge_plan_to_dict(merge_plan),
        "rstf_model": rstf_model_to_dict(rstf_model),
        "server": server_to_dict(server),
    }
    atomic_write_text(path, json.dumps(payload))


def load_index(
    path: str | Path, key_service: GroupKeyService
) -> tuple[ZerberRServer, MergePlan, RstfModel]:
    """Reload a saved single-server index against a (trusted) key service.

    The key service must already know the groups/principals the
    deployment uses; this function restores only the untrusted state.
    Reads the current v2 ``kind: "server"`` dumps and legacy v1 dumps
    alike (v1 carries no version counters — reloaded lists restart at
    version 1, exactly as every pre-v2 build behaved).
    """
    payload = read_payload(path)
    version = payload.get("format_version")
    if version not in (V1_FORMAT_VERSION, FORMAT_VERSION):
        raise ConfigurationError(
            f"unsupported index format version: {version!r} "
            f"(this build reads {V1_FORMAT_VERSION} and {FORMAT_VERSION})"
        )
    kind = payload.get("kind", "server")
    if kind != "server":
        raise ConfigurationError(
            f"{path}: not a single-server dump (kind={kind!r}); "
            "use repro.persist.load_cluster"
        )
    try:
        merge_plan = merge_plan_from_dict(payload["merge_plan"])
        rstf_model = rstf_model_from_dict(payload["rstf_model"])
        server = server_from_dict(payload["server"], key_service, source=path)
    except ConfigurationError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise ConfigurationError(
            f"{path}: corrupt index dump: {error!r}"
        ) from error
    return server, merge_plan, rstf_model
