"""Attack 2: infer query terms from observed request patterns (§4.1, §6.2).

"In case of a merged ordered posting list, the number of requests required
for obtaining top-k elements for a rare or a frequent term may differ. …
Alice could guess the term by observing the number of follow-up requests
required to fill the top-k results."

The adversary sits on the server and sees the fetch stream
(:class:`~repro.core.server.ObservedFetch`): principal, list id, offset,
count.  She reconstructs query *sessions* (an initial fetch at offset 0
plus its follow-ups) and compares each session's request count with the
per-term expectations she can compute from background df statistics
(Eq. 10/11).

§6.2's defence: in a BFM index all terms of a merged list have similar
frequencies, so expected request counts coincide and the observation
carries no signal.  :meth:`QueryObservationAttack.list_leakage` quantifies
the residual signal; the ablation benchmarks show it explode under
frequency-mixing merge schemes.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.protocol import ResponsePolicy
from repro.core.server import ObservedFetch


@dataclass(frozen=True)
class QuerySession:
    """One reconstructed query interaction against a merged list."""

    principal: str
    list_id: int
    num_requests: int
    total_elements: int


def extract_sessions(observations: Sequence[ObservedFetch]) -> list[QuerySession]:
    """Group a fetch stream into sessions.

    A fetch with ``offset == 0`` starts a new session for its
    (principal, list) pair; subsequent fetches with increasing offsets are
    its follow-ups.  This matches how the client library issues requests.
    """
    sessions: list[QuerySession] = []
    open_sessions: dict[tuple[str, int], list[ObservedFetch]] = {}
    for obs in observations:
        key = (obs.principal, obs.list_id)
        if obs.offset == 0:
            pending = open_sessions.pop(key, None)
            if pending is not None:
                sessions.append(_close(pending))
            open_sessions[key] = [obs]
        else:
            open_sessions.setdefault(key, []).append(obs)
    for pending in open_sessions.values():
        sessions.append(_close(pending))
    return sessions


def _close(fetches: list[ObservedFetch]) -> QuerySession:
    first = fetches[0]
    return QuerySession(
        principal=first.principal,
        list_id=first.list_id,
        num_requests=len(fetches),
        total_elements=sum(f.returned for f in fetches),
    )


class QueryObservationAttack:
    """Request-count analysis against merged lists.

    ``document_frequencies`` is the adversary's background df estimate for
    the terms of each list (Def. 1 allows her corpus statistics).
    """

    def __init__(self, document_frequencies: Mapping[str, int]) -> None:
        self._dfs = dict(document_frequencies)

    # -- expectations (Eq. 10/11 + the doubling protocol) -----------------------

    def expected_first_position(self, term: str, list_terms: Sequence[str]) -> float:
        """Eq. 10: expected index of a term's best element in the merged list."""
        df = self._dfs[term]
        if df <= 0:
            raise ValueError(f"term {term!r} has zero document frequency")
        total = sum(self._dfs[t] for t in list_terms)
        return total / df

    def expected_elements_needed(
        self, term: str, list_terms: Sequence[str], k: int
    ) -> float:
        """Eq. 11: elements to retrieve for the term's top-k."""
        if k < 1:
            raise ValueError("k must be >= 1")
        return k * self.expected_first_position(term, list_terms)

    def expected_requests(
        self, term: str, list_terms: Sequence[str], k: int, policy: ResponsePolicy
    ) -> int:
        """Requests the doubling protocol needs to cover Eq. 11's count."""
        needed = self.expected_elements_needed(term, list_terms, k)
        requests = 1
        while policy.total_after(requests) < needed:
            requests += 1
            if requests > 64:  # safety valve, mirrors the client's cap
                break
        return requests

    # -- leakage metrics -----------------------------------------------------------

    def list_leakage(
        self, list_terms: Sequence[str], k: int, policy: ResponsePolicy
    ) -> int:
        """Spread of expected request counts across a list's terms.

        0 means every merged term needs the same number of requests —
        observing the count tells Alice nothing (the BFM guarantee).  A
        positive spread partitions the terms into distinguishable classes.
        """
        counts = [
            self.expected_requests(term, list_terms, k, policy)
            for term in list_terms
        ]
        return max(counts) - min(counts)

    def identify_from_session(
        self,
        session: QuerySession,
        list_terms: Sequence[str],
        k: int,
        policy: ResponsePolicy,
    ) -> list[str]:
        """Terms of the list consistent with the observed request count.

        Alice's posterior support: the smaller the returned set, the more
        she learned.  With BFM merging this is (almost) the whole list.
        """
        return [
            term
            for term in list_terms
            if self.expected_requests(term, list_terms, k, policy)
            == session.num_requests
        ]

    def session_identification_rate(
        self,
        sessions_with_truth: Sequence[tuple[QuerySession, str]],
        list_terms_of: Mapping[int, Sequence[str]],
        k: int,
        policy: ResponsePolicy,
    ) -> float:
        """Expected probability of guessing the queried term per session.

        For each session Alice guesses uniformly among the consistent
        terms; the rate is ``mean(1/|consistent|)`` when the true term is
        consistent (else her structured guess failed and we score the
        uniform-over-list fallback).
        """
        if not sessions_with_truth:
            raise ValueError("no sessions to attack")
        total = 0.0
        for session, true_term in sessions_with_truth:
            terms = list(list_terms_of[session.list_id])
            consistent = self.identify_from_session(session, terms, k, policy)
            if true_term in consistent:
                total += 1.0 / len(consistent)
            else:
                total += 1.0 / len(terms) if terms else 0.0
        return total / len(sessions_with_truth)


def chance_identification_rate(list_terms_of: Mapping[int, Sequence[str]]) -> float:
    """Blind guessing baseline: mean of 1/|list| over lists."""
    if not list_terms_of:
        raise ValueError("no lists")
    return sum(1.0 / len(terms) for terms in list_terms_of.values() if terms) / len(
        list_terms_of
    )
