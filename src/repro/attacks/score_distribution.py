"""Attack 1: identify terms from stored relevance score values (§4.1).

"An adversary Alice could use relevance score distribution statistics to
extract specific features like score ranges, or score distribution
patterns for each particular term.  Alice could compare extracted features
with the relevance score distribution in the posting lists to find
correlations."

Two experiments, matching the §6.2 security argument:

* **List identification** (:func:`identification_accuracy`): each posting
  list exposes its score multiset; Alice matches it to her reference
  distributions (KS distance / KDE likelihood).  Against plain normalized
  TF this succeeds far above chance; against TRS every list looks like
  Uniform[0,1] and accuracy collapses to chance.
* **Element attribution inside a merged list**
  (:func:`element_attribution_accuracy`): given a merged list and the set
  of merged terms, Alice assigns each element to a term by score
  likelihood — the "undo the posting list merging" attack of §4.1.  With
  plain scores sorted in the list, head elements betray frequent terms;
  with TRS her posterior degenerates to the prior (the Def. 2 bound).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.attacks.background import BackgroundKnowledge
from repro.stats.uniformness import ks_distance


class ScoreDistributionAttack:
    """Alice's statistical toolkit against server-visible scores."""

    def __init__(self, background: BackgroundKnowledge) -> None:
        self.background = background

    def rank_candidates_ks(
        self, observed_scores: Sequence[float], candidates: Sequence[str]
    ) -> list[tuple[str, float]]:
        """Candidates ranked by ascending KS distance to the observation."""
        if len(observed_scores) == 0:
            raise ValueError("no observed scores")
        ranked = []
        for term in candidates:
            if not self.background.has_samples(term):
                continue
            distance = ks_distance(
                observed_scores, self.background.score_samples(term)
            )
            ranked.append((term, distance))
        ranked.sort(key=lambda kv: (kv[1], kv[0]))
        return ranked

    def identify(
        self, observed_scores: Sequence[float], candidates: Sequence[str]
    ) -> str | None:
        """Alice's best guess for which term produced *observed_scores*."""
        ranked = self.rank_candidates_ks(observed_scores, candidates)
        return ranked[0][0] if ranked else None

    def attribute_elements(
        self,
        observed_scores: Sequence[float],
        merged_terms: Sequence[str],
        priors: Mapping[str, float] | None = None,
    ) -> list[str]:
        """Assign each element of a merged list to one of *merged_terms*.

        Per-element maximum a-posteriori under the reference KDE densities
        (likelihood x prior).  Terms without reference samples fall back to
        prior-only scoring.
        """
        from repro.core.sigma import heuristic_sigma
        from repro.stats.gaussian import gaussian_sum_pdf

        scores = np.asarray(observed_scores, dtype=float)
        if scores.size == 0:
            raise ValueError("no observed scores")
        log_posteriors = np.full((len(merged_terms), scores.size), -np.inf)
        for i, term in enumerate(merged_terms):
            prior = (
                priors[term]
                if priors is not None
                else self.background.prior(term)
            )
            log_prior = np.log(max(prior, 1e-12))
            if self.background.has_samples(term):
                samples = np.asarray(self.background.score_samples(term))
                sigma = heuristic_sigma(samples)
                density = gaussian_sum_pdf(scores, samples, sigma)
                log_posteriors[i] = np.log(np.maximum(density, 1e-12)) + log_prior
            else:
                log_posteriors[i] = log_prior
        best = np.argmax(log_posteriors, axis=0)
        return [merged_terms[i] for i in best]


def identification_accuracy(
    visible_scores_by_term: Mapping[str, Sequence[float]],
    background: BackgroundKnowledge,
) -> float:
    """Top-1 accuracy of matching each list's scores to its true term.

    *visible_scores_by_term* maps the ground-truth term of each
    (unmerged) posting list to the scores the server exposes for it.  The
    candidate set is all keys, so chance level is ``1 / len(keys)``.
    """
    if not visible_scores_by_term:
        raise ValueError("nothing to attack")
    attack = ScoreDistributionAttack(background)
    candidates = sorted(visible_scores_by_term)
    correct = 0
    for true_term, scores in visible_scores_by_term.items():
        guess = attack.identify(scores, candidates)
        if guess == true_term:
            correct += 1
    return correct / len(visible_scores_by_term)


def element_attribution_accuracy(
    labelled_elements: Sequence[tuple[float, str]],
    merged_terms: Sequence[str],
    background: BackgroundKnowledge,
) -> float:
    """Accuracy of per-element term attribution inside one merged list.

    *labelled_elements* is the evaluation-side ground truth:
    ``(server_visible_score, true_term)`` per element.  Compare the result
    against the prior-proportional chance level
    ``max_t p_t / sum_t p_t`` (what Def. 2 allows).
    """
    if not labelled_elements:
        raise ValueError("empty merged list")
    attack = ScoreDistributionAttack(background)
    scores = [score for score, _ in labelled_elements]
    guesses = attack.attribute_elements(scores, merged_terms)
    correct = sum(
        1 for guess, (_, truth) in zip(guesses, labelled_elements) if guess == truth
    )
    return correct / len(labelled_elements)


def chance_attribution_level(
    merged_terms: Sequence[str], labelled_elements: Sequence[tuple[float, str]]
) -> float:
    """Best blind strategy: always guess the most common true term."""
    if not labelled_elements:
        raise ValueError("empty merged list")
    counts: dict[str, int] = {}
    for _, term in labelled_elements:
        counts[term] = counts.get(term, 0) + 1
    return max(counts.values()) / len(labelled_elements)
