"""Adversary models for the paper's threat model (§4.1, evaluated in §6.2).

Attack 1 — "Identify terms represented by the posting elements by analyzing
relevance score values stored in the index": :mod:`score_distribution`.

Attack 2 — "Determine query terms of other users by observing queries and
query results" (follow-up request counting): :mod:`query_observation`.

Both take :class:`~repro.attacks.background.BackgroundKnowledge` — the
B of Def. 1: corpus-level term statistics and reference score
distributions the adversary is assumed to possess.
"""

from repro.attacks.background import BackgroundKnowledge
from repro.attacks.score_distribution import (
    ScoreDistributionAttack,
    identification_accuracy,
    element_attribution_accuracy,
)
from repro.attacks.query_observation import (
    QuerySession,
    extract_sessions,
    QueryObservationAttack,
)

__all__ = [
    "BackgroundKnowledge",
    "ScoreDistributionAttack",
    "identification_accuracy",
    "element_attribution_accuracy",
    "QuerySession",
    "extract_sessions",
    "QueryObservationAttack",
]
