"""Adversary background knowledge B (paper §3.1).

r-confidentiality is defined *relative* to what the adversary already
knows: "an adversary's background knowledge of the document corpus or
general language statistics".  We model B as

* per-term occurrence priors ``p_t`` (normalized document frequency), and
* per-term reference score distributions (samples of normalized TF from a
  public or leaked reference corpus),

built from any document collection — typically a public corpus with the
same language statistics, or, worst case for the defender, the system's own
training set.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from repro.errors import UnknownTermError
from repro.text.analysis import DocumentStats
from repro.text.vocabulary import Vocabulary


class BackgroundKnowledge:
    """What Alice knows before looking at the index."""

    def __init__(
        self,
        priors: Mapping[str, float],
        score_samples: Mapping[str, list[float]],
    ) -> None:
        if not priors:
            raise ValueError("background priors are empty")
        self._priors = dict(priors)
        self._samples = {t: sorted(s) for t, s in score_samples.items() if s}

    @classmethod
    def from_documents(
        cls, documents: Iterable[DocumentStats]
    ) -> "BackgroundKnowledge":
        """Build B from a reference collection."""
        docs = list(documents)
        vocabulary = Vocabulary.from_documents(docs)
        priors = {t: vocabulary.probability(t) for t in vocabulary}
        samples: dict[str, list[float]] = {}
        for doc in docs:
            for term, tf in doc.counts.items():
                samples.setdefault(term, []).append(tf / doc.length)
        return cls(priors=priors, score_samples=samples)

    # -- accessors -----------------------------------------------------------

    def terms(self) -> set[str]:
        return set(self._priors)

    def prior(self, term: str) -> float:
        """``P(t in d | B)`` — the Def. 1 denominator."""
        p = self._priors.get(term)
        if p is None:
            raise UnknownTermError(term)
        return p

    def has_samples(self, term: str) -> bool:
        return term in self._samples

    def score_samples(self, term: str) -> list[float]:
        """Reference relevance-score samples for *term* (sorted)."""
        samples = self._samples.get(term)
        if samples is None:
            raise UnknownTermError(term)
        return list(samples)

    def score_log_likelihood(self, term: str, scores) -> float:
        """Log-likelihood of observed *scores* under the term's reference
        density (Gaussian-sum KDE with spacing-matched bandwidth).

        This is the adversary's statistical engine: she compares observed
        server-visible score distributions against her reference densities.
        """
        from repro.core.sigma import heuristic_sigma
        from repro.stats.gaussian import gaussian_sum_pdf

        samples = np.asarray(self.score_samples(term), dtype=float)
        sigma = heuristic_sigma(samples)
        density = gaussian_sum_pdf(np.asarray(scores, dtype=float), samples, sigma)
        # Floor the density: a zero-likelihood reference would veto a term
        # on one outlier, which makes the attack look *weaker* than it is.
        return float(np.sum(np.log(np.maximum(density, 1e-12))))
