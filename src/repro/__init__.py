"""Zerber+R — top-k retrieval from a confidential inverted index.

Reproduction of Zerr et al., "Zerber+R: Top-k Retrieval from a Confidential
Index", EDBT 2009.  The public API re-exports the pieces a downstream user
needs: build a :class:`ZerberRSystem` over a :class:`Corpus`, query it
through clients, and evaluate confidentiality/efficiency with the attack
and metric modules.

Quickstart::

    from repro import ZerberRSystem, SystemConfig, studip_like

    corpus = studip_like(num_documents=200)
    system = ZerberRSystem.build(corpus, SystemConfig(r=4.0))
    result = system.query("term000010", k=10)
    print(result.doc_ids(), result.trace.num_requests)
"""

from repro.errors import (
    AccessDeniedError,
    AuthenticationError,
    BackpressureError,
    ConfidentialityViolationError,
    ConfigurationError,
    CryptoError,
    IndexingError,
    ProtocolError,
    QuorumUnavailableError,
    QuorumWriteUnavailableError,
    ReproError,
    StaleEpochError,
    TrainingError,
    UnavailableError,
    UnknownListError,
    UnknownTermError,
)
from repro.corpus import (
    Corpus,
    Document,
    Query,
    QueryLog,
    QueryLogConfig,
    QueryLogGenerator,
    odp_like,
    studip_like,
    tiny_corpus,
)
from repro.core import (
    BackpressureSignal,
    BatchFetchRequest,
    BatchFetchResponse,
    BatchQueryTrace,
    ClientQuerySession,
    CoalescedBatchRequest,
    CoalescedBatchResponse,
    Coordinator,
    CoordinatorStats,
    FailoverEvent,
    HeatWeightedPlacement,
    LagModel,
    EventLoop,
    LeastLoadedReads,
    MultiQueryResult,
    PlacementPolicy,
    PrimaryReads,
    QueryResult,
    QueryTrace,
    ReadConsistency,
    ReadSelector,
    ReplicationStats,
    ResponsePolicy,
    RotatingReads,
    RoundRobinPlacement,
    Rstf,
    RstfModel,
    RstfTrainer,
    SystemConfig,
    WriteConsistency,
    ZerberRClient,
    ZerberRServer,
    ZerberRSystem,
)
from repro.core.rstf import TrainerConfig
from repro.core.cluster import ServerCluster
from repro.core.idf import BucketedIdf, aggregate_with_idf
from repro.persist import load_cluster, load_index, save_cluster, save_index
from repro.snippets import SnippetClient, SnippetStore
from repro.index import (
    MergePlan,
    OrdinaryInvertedIndex,
    bfm_merge,
    greedy_pairing_merge,
    random_merge,
)
from repro.text import Tokenizer, Vocabulary

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "ConfigurationError",
    "IndexingError",
    "UnknownTermError",
    "UnknownListError",
    "ConfidentialityViolationError",
    "CryptoError",
    "AuthenticationError",
    "AccessDeniedError",
    "ProtocolError",
    "BackpressureError",
    "UnavailableError",
    "QuorumUnavailableError",
    "QuorumWriteUnavailableError",
    "StaleEpochError",
    "TrainingError",
    # corpus
    "Corpus",
    "Document",
    "Query",
    "QueryLog",
    "QueryLogConfig",
    "QueryLogGenerator",
    "studip_like",
    "odp_like",
    "tiny_corpus",
    # core
    "ZerberRSystem",
    "SystemConfig",
    "ZerberRClient",
    "ZerberRServer",
    "QueryResult",
    "QueryTrace",
    "ResponsePolicy",
    "BatchFetchRequest",
    "BatchFetchResponse",
    "BatchQueryTrace",
    "CoalescedBatchRequest",
    "CoalescedBatchResponse",
    "BackpressureSignal",
    "ClientQuerySession",
    "Coordinator",
    "CoordinatorStats",
    "EventLoop",
    "MultiQueryResult",
    "PlacementPolicy",
    "RoundRobinPlacement",
    "HeatWeightedPlacement",
    "ReadSelector",
    "PrimaryReads",
    "RotatingReads",
    "LeastLoadedReads",
    "LagModel",
    "ReadConsistency",
    "WriteConsistency",
    "FailoverEvent",
    "ReplicationStats",
    "Rstf",
    "RstfModel",
    "RstfTrainer",
    "TrainerConfig",
    "ServerCluster",
    "BucketedIdf",
    "aggregate_with_idf",
    "save_index",
    "load_index",
    "save_cluster",
    "load_cluster",
    "SnippetStore",
    "SnippetClient",
    # index
    "MergePlan",
    "OrdinaryInvertedIndex",
    "bfm_merge",
    "random_merge",
    "greedy_pairing_merge",
    # text
    "Tokenizer",
    "Vocabulary",
    "__version__",
]
