"""Tokenisation of document text into index terms.

The paper indexes full text ("8,500 documents with 570,000 terms"); the
precise analyser is unspecified, so we provide a conventional IR tokenizer:
lower-casing, unicode-aware word splitting, optional stopword removal and
minimum token length.  All downstream components work on the token streams
this module produces, so the choice is encapsulated here.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

# Word characters incl. unicode letters/digits; apostrophes inside words kept
# ("don't" -> "don't") because enterprise text is full of contractions.
_TOKEN_RE = re.compile(r"[^\W_]+(?:'[^\W_]+)*", re.UNICODE)

# A small English stopword list.  The paper's corpora are German/English; we
# keep the list minimal because stopwords are exactly the frequent terms the
# merging scheme needs to reason about — removing too many would change the
# df distribution the experiments depend on.
DEFAULT_STOPWORDS: frozenset[str] = frozenset(
    """a an and are as at be by for from has he in is it its of on that the
    to was were will with""".split()
)


def simple_tokenize(text: str) -> list[str]:
    """Tokenise *text* with the default analyser (lowercase, no stopwords).

    >>> simple_tokenize("The imClone report, v2!")
    ['the', 'imclone', 'report', 'v2']
    """
    return [match.group(0).lower() for match in _TOKEN_RE.finditer(text)]


@dataclass(frozen=True)
class Tokenizer:
    """Configurable analyser turning raw text into index terms.

    Parameters
    ----------
    lowercase:
        Fold case before emitting tokens (default ``True``).
    stopwords:
        Terms to drop after case folding.  Empty by default; pass
        :data:`DEFAULT_STOPWORDS` for conventional English filtering.
    min_length / max_length:
        Bounds on emitted token length (inclusive).  Overlong tokens are
        usually base64 blobs or URLs that pollute the vocabulary.
    """

    lowercase: bool = True
    stopwords: frozenset[str] = field(default_factory=frozenset)
    min_length: int = 1
    max_length: int = 64

    def __post_init__(self) -> None:
        if self.min_length < 1:
            raise ValueError("min_length must be >= 1")
        if self.max_length < self.min_length:
            raise ValueError("max_length must be >= min_length")

    def tokens(self, text: str) -> Iterator[str]:
        """Yield index terms from *text* in document order."""
        for match in _TOKEN_RE.finditer(text):
            token = match.group(0)
            if self.lowercase:
                token = token.lower()
            if not self.min_length <= len(token) <= self.max_length:
                continue
            if token in self.stopwords:
                continue
            yield token

    def tokenize(self, text: str) -> list[str]:
        """Return index terms from *text* as a list."""
        return list(self.tokens(text))

    def tokenize_all(self, texts: Iterable[str]) -> list[list[str]]:
        """Tokenise a collection of texts, preserving order."""
        return [self.tokenize(text) for text in texts]
