"""Corpus-level vocabulary with document frequencies and term probabilities.

Zerber's merging scheme (Def. 2) needs, for every term ``t``, the probability
``p_t`` of occurrence in the corpus, "represented by its normalized document
frequency".  This module accumulates document frequencies over a collection
and exposes ``p_t = df(t) / N``.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Mapping

from repro.errors import UnknownTermError
from repro.text.analysis import DocumentStats


class Vocabulary:
    """Document-frequency table over a document collection.

    The vocabulary is mutable (documents can be added incrementally, matching
    the paper's collaborative-insert setting) but exposes a read-only mapping
    interface for statistics.
    """

    def __init__(self) -> None:
        self._df: Counter[str] = Counter()
        self._num_documents = 0
        self._total_terms = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def from_documents(cls, documents: Iterable[DocumentStats]) -> "Vocabulary":
        """Build a vocabulary from a collection of document statistics."""
        vocab = cls()
        for doc in documents:
            vocab.add_document(doc)
        return vocab

    def add_document(self, doc: DocumentStats) -> None:
        """Register one document's terms."""
        self._num_documents += 1
        self._total_terms += doc.length
        for term in doc.counts:
            self._df[term] += 1

    # -- statistics --------------------------------------------------------

    @property
    def num_documents(self) -> int:
        """Number of documents registered (``N``)."""
        return self._num_documents

    @property
    def num_terms(self) -> int:
        """Number of distinct terms."""
        return len(self._df)

    @property
    def total_term_occurrences(self) -> int:
        """Total token count over all registered documents."""
        return self._total_terms

    def document_frequency(self, term: str) -> int:
        """``n_d(t)``: number of documents containing *term* (0 if unseen)."""
        return self._df.get(term, 0)

    def probability(self, term: str) -> float:
        """``p_t``: normalized document frequency ``df(t) / N``.

        Raises :class:`UnknownTermError` for terms never seen, because a
        silent 0 would let merging code build lists that can never satisfy
        Def. 2.
        """
        if self._num_documents == 0:
            raise UnknownTermError(term)
        df = self._df.get(term)
        if df is None:
            raise UnknownTermError(term)
        return df / self._num_documents

    def probability_or_zero(self, term: str) -> float:
        """Like :meth:`probability` but returns 0.0 for unseen terms."""
        if self._num_documents == 0:
            return 0.0
        return self._df.get(term, 0) / self._num_documents

    def idf(self, term: str) -> float:
        """Inverse document frequency ``log(N / n_d(t))`` (Eq. 3).

        Provided for the ordinary-index baseline and for the multi-term
        accuracy study; Zerber+R itself deliberately avoids IDF (paper
        §3.2) because it leaks collection statistics.
        """
        import math

        df = self.document_frequency(term)
        if df == 0:
            raise UnknownTermError(term)
        return math.log(self._num_documents / df)

    def terms_by_frequency(self, descending: bool = True) -> list[str]:
        """All terms sorted by document frequency (ties broken by term)."""
        return [
            term
            for term, _ in sorted(
                self._df.items(),
                key=lambda item: (-item[1], item[0]) if descending else (item[1], item[0]),
            )
        ]

    def document_frequencies(self) -> Mapping[str, int]:
        """Read-only view of the df table."""
        return dict(self._df)

    # -- mapping protocol ----------------------------------------------------

    def __contains__(self, term: object) -> bool:
        return term in self._df

    def __iter__(self) -> Iterator[str]:
        return iter(self._df)

    def __len__(self) -> int:
        return len(self._df)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Vocabulary(num_documents={self._num_documents}, "
            f"num_terms={len(self._df)})"
        )
