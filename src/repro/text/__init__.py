"""Text processing substrate: tokenisation, term statistics, vocabulary."""

from repro.text.tokenizer import Tokenizer, simple_tokenize
from repro.text.analysis import (
    DocumentStats,
    normalized_tf,
    raw_tf,
    term_frequencies,
)
from repro.text.vocabulary import Vocabulary

__all__ = [
    "Tokenizer",
    "simple_tokenize",
    "DocumentStats",
    "normalized_tf",
    "raw_tf",
    "term_frequencies",
    "Vocabulary",
]
