"""Per-document term statistics: raw and normalized term frequency.

The paper's relevance score for a single-term query (Eq. 4) is the
*normalized term frequency*::

    rscore(q, d) = TF_q / |d|

where ``TF_q`` is the number of occurrences of ``q`` in ``d`` and ``|d|`` is
the document length in terms.  Everything the RSTF is trained on and
everything the server ranks by derives from the values computed here.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping
from dataclasses import dataclass


def term_frequencies(tokens: Iterable[str]) -> Counter[str]:
    """Count occurrences of every term in a token stream."""
    return Counter(tokens)


def raw_tf(tokens: Iterable[str], term: str) -> int:
    """Number of occurrences of *term* in the token stream."""
    return sum(1 for token in tokens if token == term)


def normalized_tf(tf: int, doc_length: int) -> float:
    """Normalized term frequency ``TF / |d|`` (Eq. 4).

    Raises :class:`ValueError` for a zero-length document — such documents
    contain no terms, so no posting element should ever be built for them.
    """
    if doc_length <= 0:
        raise ValueError("document length must be positive")
    if tf < 0:
        raise ValueError("term frequency must be non-negative")
    if tf > doc_length:
        raise ValueError("term frequency cannot exceed document length")
    return tf / doc_length


@dataclass(frozen=True)
class DocumentStats:
    """Immutable term statistics of a single document.

    Attributes
    ----------
    doc_id:
        Caller-chosen document identifier.
    counts:
        Term -> raw term frequency.
    length:
        Document length ``|d|`` in terms (the sum of all counts).
    """

    doc_id: str
    counts: Mapping[str, int]
    length: int

    @classmethod
    def from_tokens(cls, doc_id: str, tokens: Iterable[str]) -> "DocumentStats":
        """Build statistics from a token stream."""
        counts = term_frequencies(tokens)
        return cls(doc_id=doc_id, counts=dict(counts), length=sum(counts.values()))

    @classmethod
    def from_counts(cls, doc_id: str, counts: Mapping[str, int]) -> "DocumentStats":
        """Build statistics from precomputed term counts.

        Synthetic corpora produce counts directly (they never materialise
        token streams for speed); this constructor validates them.
        """
        for term, count in counts.items():
            if count <= 0:
                raise ValueError(f"count for term {term!r} must be positive")
        return cls(doc_id=doc_id, counts=dict(counts), length=sum(counts.values()))

    def tf(self, term: str) -> int:
        """Raw term frequency of *term* (0 if absent)."""
        return self.counts.get(term, 0)

    def rscore(self, term: str) -> float:
        """Relevance score of this document for a single-term query (Eq. 4)."""
        if self.length == 0:
            raise ValueError(f"document {self.doc_id!r} is empty")
        return self.counts.get(term, 0) / self.length

    def terms(self) -> set[str]:
        """The set of distinct terms occurring in the document."""
        return set(self.counts)

    def __len__(self) -> int:
        return self.length

    def __contains__(self, term: object) -> bool:
        return term in self.counts
