"""Order-preserving score mapping baseline (Swaminathan et al., StorageSS'07).

The related-work comparator of paper §7: relevance scores are passed
through an order-preserving transformation ("the idea of uniformly
distributing posting elements using an order preserving cryptographic
function was first discussed in [21]"), which supports server-side top-k —
but, per the paper's critique:

* "uniform distribution of posting elements alone does not hide the
  document frequency and thus allows an adversary to recover encrypted
  terms" — there is **no merging**, one visible posting list per
  (encrypted) term; and
* "the order preserving mapping function proposed in [21] currently does
  not support efficient index inserts and updates such that, at least in
  some cases, the posting list has to be completely rebuilt."

We model the mapping as the per-term empirical CDF frozen at build time
(rank -> (rank+0.5)/n): provably order-preserving and uniform over the
build-time scores.  An insert whose score falls outside the mapped support,
or that shifts ranks, invalidates the frozen mapping — counted as a rebuild
(the insert-cost metric the ablation reports).
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable

from repro.corpus.documents import Corpus
from repro.errors import UnknownTermError
from repro.text.analysis import DocumentStats


class OrderPreservingIndex:
    """Per-term order-preserving score mapping; no merging, visible df."""

    def __init__(self) -> None:
        # term -> build-time sorted scores (the frozen mapping support)
        self._support: dict[str, list[float]] = {}
        # term -> [(mapped_score, doc_id)] sorted descending by mapped score
        self._lists: dict[str, list[tuple[float, str]]] = {}
        self.rebuilds = 0

    @classmethod
    def build(cls, corpus: Corpus) -> "OrderPreservingIndex":
        index = cls()
        index._load(corpus.all_stats())
        return index

    def _load(self, documents: Iterable[DocumentStats]) -> None:
        raw: dict[str, list[tuple[float, str]]] = {}
        for doc in documents:
            for term, tf in doc.counts.items():
                raw.setdefault(term, []).append((tf / doc.length, doc.doc_id))
        for term, pairs in raw.items():
            scores = sorted(score for score, _ in pairs)
            self._support[term] = scores
            mapped = [
                (self._map(term, score), doc_id) for score, doc_id in pairs
            ]
            mapped.sort(key=lambda p: (-p[0], p[1]))
            self._lists[term] = mapped

    def _map(self, term: str, score: float) -> float:
        """Empirical-CDF mapping: mid-rank of *score* in the frozen support."""
        support = self._support[term]
        left = bisect.bisect_left(support, score)
        right = bisect.bisect_right(support, score)
        mid_rank = (left + right) / 2.0
        return (mid_rank + 0.5) / (len(support) + 1)

    # -- adversary-visible surface -------------------------------------------

    @property
    def num_terms(self) -> int:
        return len(self._lists)

    def visible_document_frequency(self, term: str) -> int:
        """df is fully exposed: one posting list per term (the critique)."""
        lst = self._lists.get(term)
        if lst is None:
            raise UnknownTermError(term)
        return len(lst)

    def visible_scores(self, term: str) -> list[float]:
        """Mapped scores in server order (uniform — but per-term lists)."""
        lst = self._lists.get(term)
        if lst is None:
            raise UnknownTermError(term)
        return [score for score, _ in lst]

    # -- retrieval ----------------------------------------------------------------

    def top_k(self, term: str, k: int) -> list[str]:
        """Server-side top-k by mapped score (this part works fine)."""
        if k < 1:
            raise ValueError("k must be >= 1")
        lst = self._lists.get(term)
        if lst is None:
            raise UnknownTermError(term)
        return [doc_id for _, doc_id in lst[:k]]

    # -- inserts (the inefficiency being modelled) ----------------------------------

    def insert(self, doc: DocumentStats) -> int:
        """Insert a document; returns how many term lists needed a rebuild.

        A new score inside the frozen support's range reuses the mapping
        (cheap); a score outside the support's range — or a first-ever
        score for an unseen term — forces re-freezing that term's mapping,
        i.e. a posting-list rebuild.
        """
        rebuilds_here = 0
        for term, tf in doc.counts.items():
            score = tf / doc.length
            support = self._support.get(term)
            if support is None or not support[0] <= score <= support[-1]:
                rebuilds_here += 1
                self._rebuild_term(term, score, doc.doc_id)
            else:
                mapped = self._map(term, score)
                lst = self._lists[term]
                # keep descending order
                keys = [-s for s, _ in lst]
                position = bisect.bisect_right(keys, -mapped)
                lst.insert(position, (mapped, doc.doc_id))
        self.rebuilds += rebuilds_here
        return rebuilds_here

    def _rebuild_term(self, term: str, score: float, doc_id: str) -> None:
        existing = [
            (self._unmap_placeholder(term, mapped), d)
            for mapped, d in self._lists.get(term, [])
        ]
        pairs = existing + [(score, doc_id)]
        scores = sorted(s for s, _ in pairs)
        self._support[term] = scores
        mapped = [(self._map(term, s), d) for s, d in pairs]
        mapped.sort(key=lambda p: (-p[0], p[1]))
        self._lists[term] = mapped

    def _unmap_placeholder(self, term: str, mapped: float) -> float:
        """Recover an approximate raw score from a frozen mapping.

        The real system would keep raw scores client-side; for the
        simulation, inverting the empirical CDF by nearest support point is
        exact for scores that were in the support when frozen.
        """
        support = self._support[term]
        index = min(
            range(len(support)),
            key=lambda i: abs((i + 0.5) / (len(support) + 1) - mapped),
        )
        return support[index]
