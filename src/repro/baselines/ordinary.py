"""The unprotected baseline: ordinary inverted index with server-side top-k.

Wraps :class:`~repro.index.inverted.OrdinaryInvertedIndex` in the same
query-with-trace interface as :class:`~repro.core.client.ZerberRClient`, so
the Fig. 11–13 benchmarks can compare traces one-to-one.  An ordinary index
answers a top-k query with exactly ``k`` elements in one request — its
QRatioeff is 1 by construction (Eq. 14's numeraire).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.client import QueryResult, RankedHit
from repro.core.protocol import QueryTrace
from repro.corpus.documents import Corpus
from repro.index.inverted import OrdinaryInvertedIndex

# Wire size of a plaintext posting element: doc id hash + score, the same
# 64-bit encoding the paper assumes for Zerber+R elements in §6.6.
PLAINTEXT_ELEMENT_BITS = 64


class OrdinarySearchSystem:
    """Plaintext search engine facade with trace-compatible queries."""

    def __init__(self, index: OrdinaryInvertedIndex) -> None:
        self._index = index

    @classmethod
    def build(cls, corpus: Corpus) -> "OrdinarySearchSystem":
        return cls(OrdinaryInvertedIndex.from_documents(corpus.all_stats()))

    @property
    def index(self) -> OrdinaryInvertedIndex:
        return self._index

    def query(self, term: str, k: int) -> QueryResult:
        """Exact top-k; one request, exactly min(k, df) elements shipped."""
        if k < 1:
            raise ValueError("k must be >= 1")
        elements = self._index.top_k(term, k)
        hits = tuple(
            RankedHit(doc_id=e.doc_id, rscore=e.rscore, group="") for e in elements
        )
        trace = QueryTrace(
            term=term,
            k=k,
            num_requests=1,
            elements_transferred=len(elements),
            bits_transferred=len(elements) * PLAINTEXT_ELEMENT_BITS,
            satisfied=len(elements) >= min(k, len(self._index.posting_list(term))),
        )
        return QueryResult(hits=hits, trace=trace)

    def query_multi(self, terms: Iterable[str], k: int) -> list[tuple[str, float]]:
        """TFxIDF multi-term top-k (Eq. 3) — the accuracy reference."""
        return self._index.top_k_multi(terms, k)
