"""μ-Serv-style probabilistic index (Bawa, Bayardo, Agrawal — VLDB 2003).

The paper's description (§3, §7): a probabilistic index "suppresses
statistical data introducing a controlled amount of uncertainty by
including false positive elements in the index"; it "does not support
centralized ranking at all", so result quality suffers — the
precision/confidentiality trade-off Zerber's encryption+merging design
avoids.

We model the index as term -> set of document ids, where each term's
posting set is padded with false positives so that an adversary reading the
index cannot tell which documents truly contain the term.  A query returns
the whole (unranked) posting set; the client downloads every referenced
document to filter and rank — both costs are what the benchmarks measure.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.corpus.documents import Corpus
from repro.errors import ConfigurationError, UnknownTermError
from repro.text.analysis import DocumentStats


@dataclass(frozen=True)
class MuServConfig:
    """False-positive policy.

    ``false_positive_rate`` f adds ``ceil(f * df(t))`` decoy documents to
    each term's posting set (sampled uniformly from non-containing
    documents).  f = 1.0 doubles every posting set, halving attack
    precision at double the bandwidth.
    """

    false_positive_rate: float = 1.0
    seed: int = 17

    def __post_init__(self) -> None:
        if self.false_positive_rate < 0:
            raise ConfigurationError("false_positive_rate must be >= 0")


@dataclass(frozen=True)
class MuServQueryOutcome:
    """Unranked result set plus quality/cost accounting."""

    doc_ids: tuple[str, ...]
    true_matches: tuple[str, ...]
    elements_transferred: int

    @property
    def precision(self) -> float:
        """Fraction of returned ids that truly contain the term."""
        if not self.doc_ids:
            return 1.0
        true = set(self.true_matches)
        return sum(1 for d in self.doc_ids if d in true) / len(self.doc_ids)


class MuServIndex:
    """Probabilistic document index with false positives, no ranking."""

    def __init__(self, config: MuServConfig | None = None) -> None:
        self.config = config if config is not None else MuServConfig()
        self._postings: dict[str, set[str]] = {}
        self._truth: dict[str, set[str]] = {}
        self._doc_ids: list[str] = []

    @classmethod
    def build(cls, corpus: Corpus, config: MuServConfig | None = None) -> "MuServIndex":
        index = cls(config)
        index._load(corpus.all_stats())
        return index

    def _load(self, documents: Iterable[DocumentStats]) -> None:
        docs = list(documents)
        self._doc_ids = [d.doc_id for d in docs]
        rng = np.random.default_rng(self.config.seed)
        for doc in docs:
            for term in doc.counts:
                self._truth.setdefault(term, set()).add(doc.doc_id)
        for term, true_set in sorted(self._truth.items()):
            padded = set(true_set)
            n_false = int(np.ceil(self.config.false_positive_rate * len(true_set)))
            candidates = [d for d in self._doc_ids if d not in true_set]
            if candidates and n_false > 0:
                chosen = rng.choice(
                    len(candidates), size=min(n_false, len(candidates)), replace=False
                )
                padded.update(candidates[i] for i in chosen)
            self._postings[term] = padded

    # -- index surface (what an adversary reading the server sees) -----------

    @property
    def num_terms(self) -> int:
        return len(self._postings)

    def visible_posting_set(self, term: str) -> set[str]:
        """The padded posting set stored server-side."""
        postings = self._postings.get(term)
        if postings is None:
            raise UnknownTermError(term)
        return set(postings)

    def visible_document_frequency(self, term: str) -> int:
        """df as the adversary sees it (inflated by false positives)."""
        return len(self.visible_posting_set(term))

    # -- querying ---------------------------------------------------------------

    def query(self, term: str) -> MuServQueryOutcome:
        """Return the unranked padded posting set (no top-k possible)."""
        postings = self.visible_posting_set(term)
        true = self._truth.get(term, set())
        return MuServQueryOutcome(
            doc_ids=tuple(sorted(postings)),
            true_matches=tuple(sorted(true)),
            elements_transferred=len(postings),
        )

    def query_top_k_cost(self, term: str, k: int) -> int:
        """Elements a client must fetch to assemble a top-k: the whole set.

        μ-Serv has no server-side ranking, so k does not reduce the
        transfer (returned for symmetry with the other systems' traces).
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        return len(self.visible_posting_set(term))
