"""Zerber (EDBT 2008) — the predecessor system Zerber+R improves on.

Zerber stores encrypted posting elements in r-confidential *merged* lists,
but "posting elements are placed randomly inside the merged posting list"
and carry **no** server-readable score.  Consequently "the complete lists
need to be retrieved by the querying client to obtain the top-k results"
(paper §3.1) — the bandwidth pathology Zerber+R's TRS fixes.

The implementation reuses the crypto, merging, and access-control
substrates; only the ordering discipline (random) and the query procedure
(download-everything, rank client-side) differ from Zerber+R.
"""

from __future__ import annotations

import numpy as np

from repro.core.client import QueryResult, RankedHit, skim_plaintexts
from repro.core.protocol import QueryTrace
from repro.corpus.documents import Corpus
from repro.crypto.cipher import StreamCipher
from repro.crypto.keys import GroupKeyService
from repro.errors import (
    AccessDeniedError,
    ConfigurationError,
    ProtocolError,
    UnknownListError,
    UnknownTermError,
)
from repro.index.merge import MergePlan, bfm_merge
from repro.index.postings import EncryptedPostingElement, MergedPostingList, PostingElement
from repro.text.vocabulary import Vocabulary


class ZerberServer:
    """Merged, randomly-ordered, access-controlled posting-list store."""

    def __init__(
        self,
        key_service: GroupKeyService,
        num_lists: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        if num_lists < 1:
            raise ProtocolError("num_lists must be >= 1")
        self._keys = key_service
        self._rng = rng if rng is not None else np.random.default_rng()
        self._lists: dict[int, MergedPostingList] = {
            list_id: MergedPostingList(list_id) for list_id in range(num_lists)
        }

    @property
    def num_lists(self) -> int:
        return len(self._lists)

    @property
    def num_elements(self) -> int:
        return sum(len(lst) for lst in self._lists.values())

    def _list(self, list_id: int) -> MergedPostingList:
        merged = self._lists.get(list_id)
        if merged is None:
            raise UnknownListError(list_id)
        return merged

    def insert(
        self, principal: str, list_id: int, element: EncryptedPostingElement
    ) -> None:
        """Accept an element from a group member; placement is random."""
        if element.trs is not None:
            raise ProtocolError("Zerber elements must not carry a plaintext score")
        if not self._keys.is_member(principal, element.group):
            raise AccessDeniedError(principal, element.group)
        self._list(list_id).add_random(element, self._rng)

    def download(self, principal: str, list_id: int) -> list[EncryptedPostingElement]:
        """Return the principal-readable portion of a whole merged list.

        This is Zerber's only retrieval primitive: no scores are visible,
        so no server-side pruning is possible.
        """
        merged = self._list(list_id)
        return [
            e
            for e in merged.elements
            if self._keys.is_member(principal, e.group)
        ]


class ZerberClient:
    """A group member querying a Zerber server (client-side ranking)."""

    def __init__(
        self,
        principal: str,
        key_service: GroupKeyService,
        server: ZerberServer,
        merge_plan: MergePlan,
    ) -> None:
        self.principal = principal
        self._keys = key_service
        self._server = server
        self._plan = merge_plan
        self._ciphers: dict[str, StreamCipher] = {}

    def _cipher(self, group: str) -> StreamCipher:
        cipher = self._ciphers.get(group)
        if cipher is None:
            cipher = self._keys.cipher_for(self.principal, group)
            self._ciphers[group] = cipher
        return cipher

    def query(self, term: str, k: int) -> QueryResult:
        """Download the whole merged list, decrypt, filter, rank locally."""
        if k < 1:
            raise ValueError("k must be >= 1")
        try:
            list_id = self._plan.list_of(term)
        except KeyError:
            raise UnknownTermError(term) from None
        elements = self._server.download(self.principal, list_id)
        trace = QueryTrace(
            term=term,
            k=k,
            num_requests=1,
            elements_transferred=len(elements),
            bits_transferred=sum(e.size_bits for e in elements),
        )
        # Zerber downloads the WHOLE merged list, so the skim is the
        # dominant client cost — batch it per group (the server already
        # filtered to groups this principal belongs to).
        plaintexts, _ = skim_plaintexts(elements, self._cipher)
        hits: list[RankedHit] = []
        for element, plaintext in zip(elements, plaintexts):
            if plaintext is None:
                continue
            posting = PostingElement.from_bytes(plaintext)
            if posting.term == term:
                hits.append(
                    RankedHit(
                        doc_id=posting.doc_id,
                        rscore=posting.rscore,
                        group=element.group,
                    )
                )
        hits.sort(key=lambda h: (-h.rscore, h.doc_id))
        trace.satisfied = len(hits) >= k or len(hits) > 0
        return QueryResult(hits=tuple(hits[:k]), trace=trace)


class ZerberSystem:
    """Fully assembled Zerber deployment (the EDBT 2008 baseline)."""

    def __init__(
        self,
        corpus: Corpus,
        vocabulary: Vocabulary,
        merge_plan: MergePlan,
        key_service: GroupKeyService,
        server: ZerberServer,
    ) -> None:
        self.corpus = corpus
        self.vocabulary = vocabulary
        self.merge_plan = merge_plan
        self.key_service = key_service
        self.server = server
        self._clients: dict[str, ZerberClient] = {}

    @classmethod
    def build(cls, corpus: Corpus, r: float = 4.0, seed: int = 41) -> "ZerberSystem":
        """Index *corpus* under BFM merging with parameter *r*."""
        if len(corpus) == 0:
            raise ConfigurationError("corpus is empty")
        stats = corpus.all_stats()
        vocabulary = Vocabulary.from_documents(stats)
        probabilities = {t: vocabulary.probability(t) for t in vocabulary}
        merge_plan = bfm_merge(probabilities, r)

        key_service = GroupKeyService()
        for group in sorted(corpus.groups()):
            key_service.ensure_group(group)
        key_service.register("superuser", set(corpus.groups()))
        server = ZerberServer(
            key_service, num_lists=merge_plan.num_lists, rng=np.random.default_rng(seed)
        )
        system = cls(corpus, vocabulary, merge_plan, key_service, server)
        system._index_corpus()
        return system

    def _index_corpus(self) -> None:
        for group in sorted(self.corpus.groups()):
            owner = f"owner:{group}"
            self.key_service.register(owner, {group})
            cipher = self.key_service.cipher_for(owner, group)
            # The key service owns THE nonce sequence per (owner, group) —
            # a private sequence here would restart the counter stream.
            nonces = self.key_service.nonce_sequence(owner, group)
            for doc in self.corpus.documents_in_group(group):
                doc_stats = self.corpus.stats(doc.doc_id)
                for term in sorted(doc_stats.counts):
                    plain = PostingElement(
                        term=term,
                        doc_id=doc_stats.doc_id,
                        tf=doc_stats.tf(term),
                        doc_length=doc_stats.length,
                    )
                    element = EncryptedPostingElement(
                        ciphertext=cipher.encrypt(plain.to_bytes(), nonces.next()),
                        group=group,
                        trs=None,
                    )
                    self.server.insert(owner, self.merge_plan.list_of(term), element)

    def client_for(self, principal: str) -> ZerberClient:
        client = self._clients.get(principal)
        if client is None:
            client = ZerberClient(
                principal=principal,
                key_service=self.key_service,
                server=self.server,
                merge_plan=self.merge_plan,
            )
            self._clients[principal] = client
        return client

    def query(self, term: str, k: int, principal: str = "superuser") -> QueryResult:
        return self.client_for(principal).query(term, k)
