"""Baseline systems the paper compares against or builds upon.

* :class:`OrdinarySearchSystem` — unprotected inverted index with exact
  server-side top-k (the efficiency yardstick).
* :class:`ZerberSystem` — Zerber (EDBT 2008): encrypted merged lists in
  random order; top-k only client-side after downloading whole lists.
* :class:`MuServIndex` — μ-Serv-style probabilistic index (Bawa et al.):
  false positives, no centralized ranking.
* :class:`OrderPreservingIndex` — order-preserving score mapping
  (Swaminathan et al.): per-term uniformisation without merging; leaks
  document frequency and needs rebuilds on insert.
"""

from repro.baselines.ordinary import OrdinarySearchSystem
from repro.baselines.zerber import ZerberClient, ZerberServer, ZerberSystem
from repro.baselines.mu_serv import MuServConfig, MuServIndex
from repro.baselines.ops_index import OrderPreservingIndex

__all__ = [
    "OrdinarySearchSystem",
    "ZerberSystem",
    "ZerberServer",
    "ZerberClient",
    "MuServConfig",
    "MuServIndex",
    "OrderPreservingIndex",
]
