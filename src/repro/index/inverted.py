"""Ordinary inverted index with server-side top-k (the efficiency yardstick).

This is the unprotected baseline of the paper: plaintext posting lists
sorted by relevance score, exact top-k by list pruning, TFxIDF (Eq. 3) for
multi-term queries.  Zerber+R's goal is to match this index's retrieval
behaviour (single-term queries are ranked identically) while leaking
nothing; the storage/bandwidth comparisons of §6.3–6.6 are against this
index.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterable

from repro.errors import UnknownTermError
from repro.index.postings import PostingElement, PostingList
from repro.text.analysis import DocumentStats
from repro.text.vocabulary import Vocabulary


class OrdinaryInvertedIndex:
    """Plaintext inverted index over :class:`DocumentStats`."""

    def __init__(self) -> None:
        self._lists: dict[str, PostingList] = {}
        self._vocabulary = Vocabulary()
        self._doc_lengths: dict[str, int] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def from_documents(cls, documents: Iterable[DocumentStats]) -> "OrdinaryInvertedIndex":
        index = cls()
        for doc in documents:
            index.add_document(doc)
        return index

    def add_document(self, doc: DocumentStats) -> None:
        """Index one document (ids must be unique)."""
        if doc.doc_id in self._doc_lengths:
            raise ValueError(f"document already indexed: {doc.doc_id!r}")
        if doc.length == 0:
            raise ValueError(f"document {doc.doc_id!r} is empty")
        self._doc_lengths[doc.doc_id] = doc.length
        self._vocabulary.add_document(doc)
        for term, tf in doc.counts.items():
            posting_list = self._lists.get(term)
            if posting_list is None:
                posting_list = PostingList(term)
                self._lists[term] = posting_list
            posting_list.add(
                PostingElement(
                    term=term, doc_id=doc.doc_id, tf=tf, doc_length=doc.length
                )
            )

    # -- statistics ----------------------------------------------------------

    @property
    def vocabulary(self) -> Vocabulary:
        return self._vocabulary

    @property
    def num_documents(self) -> int:
        return len(self._doc_lengths)

    @property
    def num_terms(self) -> int:
        return len(self._lists)

    @property
    def num_posting_elements(self) -> int:
        return sum(len(lst) for lst in self._lists.values())

    def posting_list(self, term: str) -> PostingList:
        """The posting list of *term* (raises for unknown terms)."""
        posting_list = self._lists.get(term)
        if posting_list is None:
            raise UnknownTermError(term)
        return posting_list

    def document_frequency(self, term: str) -> int:
        return self._vocabulary.document_frequency(term)

    # -- retrieval -----------------------------------------------------------

    def top_k(self, term: str, k: int) -> list[PostingElement]:
        """Exact single-term top-k by sorted-list pruning (paper Fig. 1)."""
        return self.posting_list(term).top_k(k)

    def top_k_multi(self, terms: Iterable[str], k: int) -> list[tuple[str, float]]:
        """Multi-term top-k with TFxIDF score aggregation (paper Eq. 3).

        Unknown terms contribute nothing (standard engine behaviour).
        Returns ``(doc_id, score)`` pairs in descending score order, ties
        broken by document id for determinism.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        scores: dict[str, float] = {}
        n = self.num_documents
        for term in terms:
            posting_list = self._lists.get(term)
            if posting_list is None or n == 0:
                continue
            idf = math.log(n / len(posting_list)) if len(posting_list) else 0.0
            for element in posting_list:
                scores[element.doc_id] = scores.get(element.doc_id, 0.0) + (
                    element.rscore * idf
                )
        best = heapq.nsmallest(k, scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return [(doc_id, score) for doc_id, score in best]

    def scores_for_term(self, term: str) -> list[float]:
        """All relevance scores of *term*, descending (RSTF training input)."""
        return [element.rscore for element in self.posting_list(term)]

    # -- storage accounting (for §6.3) ---------------------------------------

    def storage_score_slots(self) -> int:
        """Number of per-element score slots the index stores.

        The ordinary index stores exactly one relevance score per posting
        element; Zerber+R stores exactly one TRS per element.  §6.3's "no
        storage overhead" claim is the equality of these counts.
        """
        return self.num_posting_elements
