"""Posting-list merging schemes (paper §3.1, Def. 2).

A merge plan partitions the vocabulary into groups of terms; each group's
posting lists are merged into one server-side list.  Def. 2 requires, for
every merged list with term set ``S``::

    sum(p_t for t in S) >= 1 / r

where ``p_t`` is the term's normalized document frequency and ``r`` the
confidentiality parameter: an adversary's probability of attributing a
posting element to a specific term is amplified at most ``r``-fold.

Schemes:

* :func:`bfm_merge` — Breadth-First Merging (Zerber's BFM index, the one
  Zerber+R relies on in §5.2/§6.2): terms are taken in descending
  document-frequency order, so each merged list contains terms of *similar
  frequency*.  This is what makes follow-up request counts indistinguishable
  within a list.
* :func:`greedy_pairing_merge` — pairs frequent with rare terms (fills each
  list with the most frequent remaining term, then tops up with the rarest
  ones).  Confidential per Def. 2 but mixes frequencies — the ablation that
  shows why BFM matters for the query-observation attack.
* :func:`random_merge` — random term order, threshold grouping; the second
  ablation.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfidentialityViolationError, ConfigurationError


@dataclass(frozen=True)
class MergePlan:
    """A partition of the vocabulary into merged posting lists.

    Attributes
    ----------
    groups:
        ``groups[i]`` is the tuple of terms merged into list id ``i``.
    r:
        The confidentiality parameter the plan was built for.
    """

    groups: tuple[tuple[str, ...], ...]
    r: float

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for group in self.groups:
            if not group:
                raise ConfigurationError("empty merge group")
            for term in group:
                if term in seen:
                    raise ConfigurationError(f"term in two groups: {term!r}")
                seen.add(term)

    @property
    def num_lists(self) -> int:
        return len(self.groups)

    def list_of(self, term: str) -> int:
        """List id a term is merged into (raises KeyError for unknown terms)."""
        return self._term_to_list()[term]

    def _term_to_list(self) -> dict[str, int]:
        cached = getattr(self, "_cache", None)
        if cached is None:
            cached = {
                term: i for i, group in enumerate(self.groups) for term in group
            }
            object.__setattr__(self, "_cache", cached)
        return cached

    def terms_of(self, list_id: int) -> tuple[str, ...]:
        """Terms merged into *list_id*."""
        if not 0 <= list_id < len(self.groups):
            raise ConfigurationError(f"no such list id: {list_id}")
        return self.groups[list_id]

    def all_terms(self) -> set[str]:
        return set(self._term_to_list())

    def verify(self, probabilities: Mapping[str, float]) -> None:
        """Assert Def. 2 for every group; raises on violation.

        A group consisting of a *single* term is exempt when that term alone
        satisfies ``p_t >= 1/r`` (a sufficiently frequent term needs no
        merging — attributing an element to it amplifies nothing beyond r).
        """
        for i, group in enumerate(self.groups):
            mass = sum(probabilities[t] for t in group)
            if mass < 1.0 / self.r - 1e-12:
                raise ConfidentialityViolationError(
                    f"merged list {i} has term probability mass {mass:.6f} "
                    f"< 1/r = {1.0 / self.r:.6f}"
                )


def merged_list_confidentiality(
    terms: Sequence[str], probabilities: Mapping[str, float]
) -> float:
    """The effective r of a merged list: ``1 / sum(p_t)``.

    Smaller is more confidential; a list is r-confidential iff the returned
    value is <= r.
    """
    mass = sum(probabilities[t] for t in terms)
    if mass <= 0:
        raise ConfigurationError("term probability mass must be positive")
    return 1.0 / mass


def _threshold_groups(
    ordered_terms: Sequence[str],
    probabilities: Mapping[str, float],
    r: float,
) -> list[list[str]]:
    """Group consecutive terms until each group's mass reaches 1/r.

    The trailing group may fall short of the threshold; it is folded into
    the previous group (or, if it is the only group, kept — the caller's
    ``verify`` will flag genuinely infeasible inputs).
    """
    if r <= 1.0:
        raise ConfigurationError("r must be > 1 (r=1 means no amplification allowed)")
    threshold = 1.0 / r
    groups: list[list[str]] = []
    current: list[str] = []
    mass = 0.0
    for term in ordered_terms:
        current.append(term)
        mass += probabilities[term]
        if mass >= threshold:
            groups.append(current)
            current = []
            mass = 0.0
    if current:
        if groups:
            groups[-1].extend(current)
        else:
            groups.append(current)
    return groups


def bfm_merge(probabilities: Mapping[str, float], r: float) -> MergePlan:
    """Breadth-First Merging: descending-frequency grouping (Zerber's BFM).

    Terms are sorted by descending ``p_t`` (ties broken lexicographically
    for determinism) and grouped consecutively until each group satisfies
    Def. 2.  Consecutive grouping of the frequency ranking is what gives
    each merged list terms "of similar frequency distributions" (§5.2).
    """
    ordered = sorted(probabilities, key=lambda t: (-probabilities[t], t))
    groups = _threshold_groups(ordered, probabilities, r)
    return MergePlan(groups=tuple(tuple(g) for g in groups), r=r)


def random_merge(
    probabilities: Mapping[str, float], r: float, rng: np.random.Generator | None = None
) -> MergePlan:
    """Random-order threshold merging (ablation: destroys frequency locality)."""
    rng = rng if rng is not None else np.random.default_rng()
    ordered = sorted(probabilities)  # deterministic base order
    perm = rng.permutation(len(ordered))
    shuffled = [ordered[i] for i in perm]
    groups = _threshold_groups(shuffled, probabilities, r)
    return MergePlan(groups=tuple(tuple(g) for g in groups), r=r)


def greedy_pairing_merge(probabilities: Mapping[str, float], r: float) -> MergePlan:
    """Head-meets-tail merging (ablation: maximal frequency mixing).

    Repeatedly seeds a group with the most frequent remaining term, then
    tops it up with the *rarest* remaining terms until Def. 2 holds.  This
    satisfies r-confidentiality but merges very frequent with very rare
    terms — the configuration §6.2 warns about, where follow-up counts
    diverge between a list's terms.
    """
    if r <= 1.0:
        raise ConfigurationError("r must be > 1")
    threshold = 1.0 / r
    descending = sorted(probabilities, key=lambda t: (-probabilities[t], t))
    remaining = descending  # treated as a deque: head = frequent, tail = rare
    head = 0
    tail = len(remaining) - 1
    groups: list[list[str]] = []
    while head <= tail:
        group = [remaining[head]]
        mass = probabilities[remaining[head]]
        head += 1
        while mass < threshold and tail >= head:
            group.append(remaining[tail])
            mass += probabilities[remaining[tail]]
            tail -= 1
        groups.append(group)
    # Fold a trailing under-threshold group into its predecessor.
    if len(groups) >= 2:
        last_mass = sum(probabilities[t] for t in groups[-1])
        if last_mass < threshold:
            groups[-2].extend(groups.pop())
    return MergePlan(groups=tuple(tuple(g) for g in groups), r=r)
