"""Posting-list data structures.

Three element flavours appear in the reproduction:

* :class:`PostingElement` — the plaintext element of an ordinary inverted
  index (paper Fig. 1): document id, term, raw TF and document length, from
  which the relevance score (Eq. 4) derives.
* :class:`EncryptedPostingElement` — what Zerber/Zerber+R servers store
  (paper Fig. 2/3): an opaque ciphertext of the plaintext element, the
  owning group (for access control), and — only in Zerber+R — the plaintext
  *transformed relevance score* (TRS) used for server-side ranking.
* :class:`MergedPostingList` — a merged list (one per set of merged terms)
  keyed by an integer list id.
"""

from __future__ import annotations

import bisect
import json
import math
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class PostingElement:
    """Plaintext posting element: one (term, document) occurrence record."""

    term: str
    doc_id: str
    tf: int
    doc_length: int

    def __post_init__(self) -> None:
        if self.tf <= 0:
            raise ValueError("tf must be positive (absent terms have no element)")
        if self.doc_length < self.tf:
            raise ValueError("doc_length must be >= tf")

    @property
    def rscore(self) -> float:
        """Normalized term frequency ``TF / |d|`` (paper Eq. 4)."""
        return self.tf / self.doc_length

    # -- serialisation (what gets encrypted) --------------------------------

    def to_bytes(self) -> bytes:
        """Canonical byte encoding of the element (the encryption plaintext)."""
        payload = {
            "t": self.term,
            "d": self.doc_id,
            "f": self.tf,
            "l": self.doc_length,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "PostingElement":
        """Inverse of :meth:`to_bytes`."""
        payload = json.loads(data.decode())
        return cls(
            term=payload["t"],
            doc_id=payload["d"],
            tf=payload["f"],
            doc_length=payload["l"],
        )


@dataclass(frozen=True)
class EncryptedPostingElement:
    """Server-side posting element: ciphertext + plaintext ranking metadata.

    ``trs`` is ``None`` for plain Zerber (no server-side ranking) and a
    float in [0, 1] for Zerber+R.  The ciphertext hides term, document id,
    TF and document length; ``group`` is visible to the server because it
    enforces group-based access control (paper §2, §5.2).
    """

    ciphertext: bytes
    group: str
    trs: float | None = None

    def __post_init__(self) -> None:
        if self.trs is not None and not 0.0 <= self.trs <= 1.0:
            raise ValueError("TRS must lie in [0, 1]")

    @property
    def size_bits(self) -> int:
        """Wire size of the element in bits (for the §6.6 bandwidth model)."""
        overhead = 0 if self.trs is None else 64  # one double for the TRS
        return len(self.ciphertext) * 8 + overhead


class PostingList:
    """An ordinary (single-term) posting list, sorted by descending rscore."""

    def __init__(self, term: str, elements: Iterable[PostingElement] = ()) -> None:
        self.term = term
        self._elements: list[PostingElement] = []
        for element in elements:
            self.add(element)

    def add(self, element: PostingElement) -> None:
        """Insert an element, keeping descending-score order."""
        if element.term != self.term:
            raise ValueError(
                f"element term {element.term!r} does not match list term {self.term!r}"
            )
        # Binary search on (-rscore) keeps inserts O(log n) + O(n) shift; the
        # ordinary index is a baseline, so simplicity wins over a heap here.
        keys = [-e.rscore for e in self._elements]
        position = bisect.bisect_right(keys, -element.rscore)
        self._elements.insert(position, element)

    def top_k(self, k: int) -> list[PostingElement]:
        """The k highest-scored elements (fewer if the list is shorter)."""
        if k < 0:
            raise ValueError("k must be non-negative")
        return self._elements[:k]

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[PostingElement]:
        return iter(self._elements)


@dataclass
class MergedPostingList:
    """A merged posting list held by an untrusted server.

    ``elements`` ordering discipline depends on the system: Zerber keeps
    them randomly permuted; Zerber+R keeps them sorted by descending TRS.
    The list itself does not know which terms it merges — that mapping
    lives client-side (and in the merge plan used at setup time).

    ``version`` increments on every mutation so servers can cache derived
    views (e.g. per-principal readable sub-lists) safely.

    ``_neg_trs_keys`` is a position-parallel list of sort keys
    (``-trs``; TRS-less elements get ``+inf`` so they order after every
    real TRS).  Every mutator maintains the parallelism invariant —
    ``_neg_trs_keys[i] == sort_key(elements[i])`` for all ``i`` — so the
    binary searches in :meth:`add_sorted_by_trs` and the position-paired
    deletes in :meth:`pop_at` never act on stale keys.
    """

    list_id: int
    elements: list[EncryptedPostingElement] = field(default_factory=list)
    version: int = 0
    _neg_trs_keys: list[float] = field(default_factory=list, repr=False)

    @staticmethod
    def sort_key(element: EncryptedPostingElement) -> float:
        """The descending-TRS sort key; TRS-less elements sort last."""
        return -element.trs if element.trs is not None else math.inf

    def keys_in_sync(self) -> bool:
        """Whether the key list mirrors ``elements`` position-for-position."""
        return self._neg_trs_keys == [self.sort_key(e) for e in self.elements]

    def add_sorted_by_trs(self, element: EncryptedPostingElement) -> int:
        """Insert keeping descending-TRS order (Zerber+R discipline).

        Returns the insertion position.  (Derived per-principal views
        re-derive their own position with a bisect on their filtered key
        list — a merged-list position is not valid there.)
        """
        if element.trs is None:
            raise ValueError("element has no TRS; use add_random() instead")
        position = bisect.bisect_right(self._neg_trs_keys, -element.trs)
        self._neg_trs_keys.insert(position, -element.trs)
        self.elements.insert(position, element)
        self.version += 1
        return position

    def bulk_load_sorted_by_trs(
        self, elements: Iterable[EncryptedPostingElement]
    ) -> None:
        """Add many elements at once, re-sorting a single time.

        Equivalent to repeated :meth:`add_sorted_by_trs` but O(n log n)
        total; used when a whole corpus is indexed at setup time.
        """
        incoming = list(elements)
        if any(e.trs is None for e in incoming):
            raise ValueError("all bulk-loaded elements must carry a TRS")
        self.elements.extend(incoming)
        self.elements.sort(key=self.sort_key)
        self._neg_trs_keys = [self.sort_key(e) for e in self.elements]
        self.version += 1

    def add_random(self, element: EncryptedPostingElement, rng) -> int:
        """Insert at a uniformly random position (Zerber discipline).

        Maintains the key/element parallelism invariant (a random insert
        can break global *sortedness* — that is inherent to the Zerber
        discipline — but the keys never desync positionally, so later
        position-paired deletes stay correct).  Returns the position.
        """
        position = int(rng.integers(0, len(self.elements) + 1))
        self._neg_trs_keys.insert(position, self.sort_key(element))
        self.elements.insert(position, element)
        self.version += 1
        return position

    def find_by_ciphertext(
        self, ciphertext: bytes
    ) -> tuple[int, EncryptedPostingElement] | None:
        """Locate the element with *ciphertext* in one scan.

        Returns ``(position, element)`` or ``None``; lets callers inspect
        the element (e.g. check its group tag) before committing to a
        removal without a second O(list) pass.
        """
        for position, element in enumerate(self.elements):
            if element.ciphertext == ciphertext:
                return position, element
        return None

    def pop_at(self, position: int) -> EncryptedPostingElement:
        """Remove and return the element at *position*, key kept in step."""
        element = self.elements.pop(position)
        del self._neg_trs_keys[position]
        self.version += 1
        return element

    def remove_by_ciphertext(self, ciphertext: bytes) -> EncryptedPostingElement | None:
        """Remove the element with *ciphertext*; returns it, or ``None``.

        Ciphertexts are unique (nonce-bound), so at most one element
        matches.  Used by the deletion protocol: the owner presents the
        receipt it kept from the insert.
        """
        found = self.find_by_ciphertext(ciphertext)
        if found is None:
            return None
        position, _ = found
        return self.pop_at(position)

    def clear(self) -> None:
        """Drop every element (shard migration hands the list elsewhere)."""
        self.elements.clear()
        self._neg_trs_keys.clear()
        self.version += 1

    def slice(self, start: int, count: int) -> list[EncryptedPostingElement]:
        """Elements ``[start, start+count)`` in server order."""
        if start < 0 or count < 0:
            raise ValueError("start and count must be non-negative")
        return self.elements[start : start + count]

    @property
    def size_bits(self) -> int:
        """Total wire size of the list in bits."""
        return sum(element.size_bits for element in self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self) -> Iterator[EncryptedPostingElement]:
        return iter(self.elements)
