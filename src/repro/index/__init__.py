"""Inverted-index substrate: postings, ordinary index, merging schemes."""

from repro.index.postings import (
    PostingElement,
    EncryptedPostingElement,
    PostingList,
    MergedPostingList,
)
from repro.index.inverted import OrdinaryInvertedIndex
from repro.index.merge import (
    MergePlan,
    bfm_merge,
    random_merge,
    greedy_pairing_merge,
    merged_list_confidentiality,
)

__all__ = [
    "PostingElement",
    "EncryptedPostingElement",
    "PostingList",
    "MergedPostingList",
    "OrdinaryInvertedIndex",
    "MergePlan",
    "bfm_merge",
    "random_merge",
    "greedy_pairing_merge",
    "merged_list_confidentiality",
]
