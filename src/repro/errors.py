"""Exception hierarchy for the Zerber+R reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  The sub-hierarchy mirrors the package
layout: indexing, cryptography/access control, protocol, and configuration
errors are distinguishable because they typically call for different
handling (a :class:`AccessDeniedError` is an authorization outcome, not a
bug; a :class:`ConfidentialityViolationError` is a safety check firing).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An invalid parameter or parameter combination was supplied."""


class IndexError_(ReproError):
    """Base class for indexing errors.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``repro.IndexingError``.
    """


IndexingError = IndexError_


class UnknownTermError(IndexError_):
    """A term was looked up that no posting list contains."""

    def __init__(self, term: str) -> None:
        super().__init__(f"term not present in the index: {term!r}")
        self.term = term


class UnknownListError(IndexError_):
    """A merged posting list id was requested that does not exist."""

    def __init__(self, list_id: int) -> None:
        super().__init__(f"merged posting list does not exist: {list_id}")
        self.list_id = list_id


class ConfidentialityViolationError(ReproError):
    """An operation would violate the configured r-confidentiality bound."""


class CryptoError(ReproError):
    """Base class for encryption/decryption failures."""


class AuthenticationError(CryptoError):
    """Ciphertext failed its integrity check (wrong key or tampering)."""


class AccessDeniedError(CryptoError):
    """The principal lacks the group membership needed for an operation."""

    def __init__(self, principal: str, group: str) -> None:
        super().__init__(f"principal {principal!r} is not a member of group {group!r}")
        self.principal = principal
        self.group = group


class ProtocolError(ReproError):
    """A malformed or out-of-order client/server protocol interaction."""


class UnavailableError(ProtocolError):
    """Every replica of a merged posting list is down.

    Carries the list id so routing layers (cluster, coordinator) can say
    *which* list became unreachable; subclasses :class:`ProtocolError` so
    callers treating replica exhaustion as a protocol failure keep working.
    """

    def __init__(self, list_id: int, num_replicas: int) -> None:
        super().__init__(
            f"all {num_replicas} replica(s) of list {list_id} are down"
        )
        self.list_id = list_id
        self.num_replicas = num_replicas


def _replica_roster(
    live_replicas: tuple[int, ...],
    down_replicas: tuple[int, ...],
    paused_replicas: tuple[int, ...],
) -> str:
    """``live: [..]; down: [..]; paused: [..]`` — the fault-triage roster."""
    parts = [f"live: {list(live_replicas)}", f"down: {list(down_replicas)}"]
    if paused_replicas:
        parts.append(f"paused: {list(paused_replicas)}")
    return "; ".join(parts)


class QuorumUnavailableError(UnavailableError):
    """A quorum read could not consult a majority of a list's replicas.

    Unlike the base :class:`UnavailableError` (no replica live at all),
    *some* replicas may be up — just fewer than the ``needed`` majority,
    so a version-max-across-majority read cannot be answered honestly.
    The message and attributes name the exact replica roster — which
    servers were live, down and paused — so a fault can be triaged from
    the error alone.
    """

    def __init__(
        self,
        list_id: int,
        num_replicas: int,
        needed: int,
        live_replicas: tuple[int, ...],
        down_replicas: tuple[int, ...] = (),
        paused_replicas: tuple[int, ...] = (),
    ) -> None:
        ProtocolError.__init__(
            self,
            f"quorum read of list {list_id} needs {needed} of "
            f"{num_replicas} replicas live, only {len(live_replicas)} up "
            f"({_replica_roster(live_replicas, down_replicas, paused_replicas)})",
        )
        self.list_id = list_id
        self.num_replicas = num_replicas
        self.needed = needed
        self.live_replicas = live_replicas
        self.down_replicas = down_replicas
        self.paused_replicas = paused_replicas

    @property
    def live(self) -> int:
        """Number of live replicas (kept for pre-roster handlers)."""
        return len(self.live_replicas)


class QuorumWriteUnavailableError(QuorumUnavailableError):
    """A QUORUM/ALL write could not reach its required ack count.

    Raised *before* the primary is mutated or anything is logged, so a
    refused write is a clean no-op: not acknowledged, nothing to lose.
    ``needed`` is the required ack count (W); acks come from the primary
    plus followers reachable by the replication log (live and unpaused).
    """

    def __init__(
        self,
        list_id: int,
        num_replicas: int,
        needed: int,
        live_replicas: tuple[int, ...],
        down_replicas: tuple[int, ...] = (),
        paused_replicas: tuple[int, ...] = (),
    ) -> None:
        ProtocolError.__init__(
            self,
            f"write to list {list_id} needs {needed} ack(s) from "
            f"{num_replicas} replicas, only "
            f"{len(live_replicas)} reachable "
            f"({_replica_roster(live_replicas, down_replicas, paused_replicas)})",
        )
        self.list_id = list_id
        self.num_replicas = num_replicas
        self.needed = needed
        self.live_replicas = live_replicas
        self.down_replicas = down_replicas
        self.paused_replicas = paused_replicas


class BackpressureError(ProtocolError):
    """A coordinator shed a session at admission (queue or credits full).

    Raised by :meth:`~repro.core.router.Coordinator.submit` when real
    backpressure is configured (``max_queue_depth`` /
    ``credits_per_principal``) and admitting the session would exceed a
    bound.  The shed happens *before* admission, so nothing was
    acknowledged and nothing is lost — the caller retries no earlier
    than ``signal.retry_after_ticks`` virtual ticks later.  ``signal``
    is the :class:`~repro.core.protocol.BackpressureSignal` a fronting
    RPC layer would ship back to the client.
    """

    def __init__(self, signal: object) -> None:
        super().__init__(
            f"session shed at admission ({getattr(signal, 'reason', '?')}: "
            f"depth {getattr(signal, 'queue_depth', '?')} at limit "
            f"{getattr(signal, 'limit', '?')}); retry after "
            f"{getattr(signal, 'retry_after_ticks', '?')} tick(s)"
        )
        self.signal = signal

    @property
    def retry_after_ticks(self) -> int:
        return int(getattr(self.signal, "retry_after_ticks", 1))


class StaleEpochError(ProtocolError):
    """An envelope was routed under an outdated placement epoch.

    Raised by :meth:`~repro.core.cluster.ServerCluster.serve_envelope`
    when a rebalance or failover election bumped the epoch after the
    envelope was routed.  The coordinator catches this and re-routes the
    in-flight slices under the current placement instead of failing the
    scheduling tick.
    """

    def __init__(self, envelope_epoch: int, current_epoch: int) -> None:
        super().__init__(
            f"envelope routed under placement epoch {envelope_epoch}, "
            f"cluster is at {current_epoch}"
        )
        self.envelope_epoch = envelope_epoch
        self.current_epoch = current_epoch


class TrainingError(ReproError):
    """RSTF training failed (e.g. empty training set for a term)."""
