"""Result snippets: the second half of a §6.6 query response.

The paper prices a top-10 answer as posting elements *plus* "document
snippets [that] arrive in XML format … about 250 B including XML
formatting", and notes that "further optimization can be achieved by
adding search result checksums and caching them on the client (defined in
HTTP 1.0)".

This module implements that pipeline on the untrusted server:

* :class:`SnippetStore` — holds **encrypted** snippets keyed by an opaque
  snippet id = PRF(doc id) under the group key, so the server learns
  neither document identities nor snippet contents;
* checksum-conditional fetches — the client sends the checksum of the
  version it has cached; the server replies "not modified" (checksum
  match) with no body, or ships the encrypted snippet;
* :class:`SnippetClient` — resolves a query's doc ids to snippet ids,
  maintains the cache, and accounts transferred bytes for the §6.6 model.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable
from dataclasses import dataclass

from repro.crypto.cipher import NonceSequence, StreamCipher
from repro.crypto.keys import GroupKeyService
from repro.crypto.prf import Prf, derive_key
from repro.errors import AccessDeniedError

CHECKSUM_SIZE = 8  # bytes on the wire per conditional request

# Default snippet body size, the paper's constant (bytes incl. markup).
DEFAULT_SNIPPET_BYTES = 250


def _snippet_id(group_key: bytes, doc_id: str) -> bytes:
    """Opaque per-document snippet key: PRF(doc id) under the group key."""
    return Prf(derive_key(group_key, "snippet-id")).evaluate(doc_id.encode())[:16]


def _checksum(ciphertext: bytes) -> bytes:
    # Unkeyed public checksum over ciphertext only (the HTTP-1.0-style
    # revalidation tag §6.6) — no key material involved, so the raw hash
    # is deliberate, not a key-separation hazard.
    return hashlib.sha256(ciphertext).digest()[:CHECKSUM_SIZE]  # zlint: disable=crypto-construct


@dataclass(frozen=True)
class SnippetResponse:
    """One conditional-fetch outcome."""

    ciphertext: bytes | None  # None = "not modified", client cache is fresh
    checksum: bytes
    transferred_bytes: int


class SnippetStore:
    """Untrusted server-side snippet storage with conditional fetches."""

    def __init__(self, key_service: GroupKeyService) -> None:
        self._keys = key_service
        # snippet id -> (group, ciphertext, checksum)
        self._snippets: dict[bytes, tuple[str, bytes, bytes]] = {}

    @property
    def num_snippets(self) -> int:
        return len(self._snippets)

    def put(self, principal: str, group: str, snippet_id: bytes, ciphertext: bytes) -> None:
        """Store one encrypted snippet (group membership enforced)."""
        if not self._keys.is_member(principal, group):
            raise AccessDeniedError(principal, group)
        self._snippets[snippet_id] = (group, ciphertext, _checksum(ciphertext))

    def fetch(
        self, principal: str, snippet_id: bytes, cached_checksum: bytes | None = None
    ) -> SnippetResponse | None:
        """Conditional fetch: returns ``None`` for unknown/unreadable ids.

        With a matching *cached_checksum* the body is omitted ("not
        modified"); only the checksum travels.
        """
        entry = self._snippets.get(snippet_id)
        if entry is None:
            return None
        group, ciphertext, checksum = entry
        if not self._keys.is_member(principal, group):
            return None
        if cached_checksum is not None and cached_checksum == checksum:
            return SnippetResponse(
                ciphertext=None, checksum=checksum, transferred_bytes=CHECKSUM_SIZE
            )
        return SnippetResponse(
            ciphertext=ciphertext,
            checksum=checksum,
            transferred_bytes=len(ciphertext) + CHECKSUM_SIZE,
        )


class SnippetClient:
    """Group member publishing and fetching snippets with a local cache."""

    def __init__(
        self, principal: str, key_service: GroupKeyService, store: SnippetStore
    ) -> None:
        self.principal = principal
        self._keys = key_service
        self._store = store
        self._ciphers: dict[str, StreamCipher] = {}
        # snippet id -> (checksum, plaintext) — the HTTP-1.0-style cache.
        self._cache: dict[bytes, tuple[bytes, bytes]] = {}
        self.bytes_transferred = 0

    def _cipher(self, group: str) -> StreamCipher:
        cipher = self._ciphers.get(group)
        if cipher is None:
            cipher = self._keys.cipher_for(self.principal, group)
            self._ciphers[group] = cipher
        return cipher

    def _nonce_sequence(self, group: str) -> NonceSequence:
        # The key service owns THE sequence per (principal, group): a
        # second SnippetClient for the same principal must continue one
        # counter stream, never restart it — a restart reuses nonces on
        # different plaintexts (XOR-keystream break).
        return self._keys.nonce_sequence(self.principal, group)

    def snippet_id(self, group: str, doc_id: str) -> bytes:
        """The opaque id both publisher and readers derive for a document."""
        return _snippet_id(self._keys.group_key(self.principal, group), doc_id)

    # -- publishing ------------------------------------------------------------

    def publish(self, group: str, doc_id: str, snippet_text: str) -> bytes:
        """Encrypt and upload a document's snippet; returns its id."""
        snippet_id = self.snippet_id(group, doc_id)
        ciphertext = self._cipher(group).encrypt(
            snippet_text.encode(), self._nonce_sequence(group).next()
        )
        self._store.put(self.principal, group, snippet_id, ciphertext)
        return snippet_id

    # -- fetching ----------------------------------------------------------------

    def fetch(self, group: str, doc_id: str) -> str | None:
        """Fetch (or revalidate) one snippet; ``None`` if unavailable."""
        snippet_id = self.snippet_id(group, doc_id)
        cached = self._cache.get(snippet_id)
        response = self._store.fetch(
            self.principal,
            snippet_id,
            cached_checksum=cached[0] if cached else None,
        )
        if response is None:
            return None
        self.bytes_transferred += response.transferred_bytes
        if response.ciphertext is None:
            assert cached is not None
            return cached[1].decode()
        plaintext = self._cipher(group).try_decrypt(response.ciphertext)
        if plaintext is None:
            return None
        self._cache[snippet_id] = (response.checksum, plaintext)
        return plaintext.decode()

    def fetch_many(self, hits: Iterable[tuple[str, str]]) -> list[str | None]:
        """Fetch snippets for ``(group, doc_id)`` pairs (a top-k result).

        Returns exactly what one :meth:`fetch` per pair would, but each
        distinct pair is fetched from the store once (duplicates in a
        result page share the response instead of re-transferring it) and
        the ciphertexts that do arrive are decrypted in one
        :meth:`~repro.crypto.cipher.StreamCipher.try_decrypt_many` batch
        per group — a top-k response's snippet skim costs one cipher call
        per group, not one per document.
        """
        hits = list(hits)
        results: list[str | None] = [None] * len(hits)
        # distinct (group, doc_id) -> result indices wanting it
        wanted: dict[tuple[str, str], list[int]] = {}
        for index, pair in enumerate(hits):
            wanted.setdefault(pair, []).append(index)
        # group -> [(result indices, snippet id, new checksum, ciphertext)]
        pending: dict[str, list[tuple[list[int], bytes, bytes, bytes]]] = {}
        for (group, doc_id), indices in wanted.items():
            snippet_id = self.snippet_id(group, doc_id)
            cached = self._cache.get(snippet_id)
            response = self._store.fetch(
                self.principal,
                snippet_id,
                cached_checksum=cached[0] if cached else None,
            )
            if response is None:
                continue
            self.bytes_transferred += response.transferred_bytes
            if response.ciphertext is None:
                assert cached is not None
                for index in indices:
                    results[index] = cached[1].decode()
            else:
                pending.setdefault(group, []).append(
                    (indices, snippet_id, response.checksum, response.ciphertext)
                )
        for group, items in pending.items():
            plaintexts = self._cipher(group).try_decrypt_many(
                [ciphertext for _, _, _, ciphertext in items]
            )
            for (indices, snippet_id, checksum, _), plaintext in zip(
                items, plaintexts
            ):
                if plaintext is None:
                    continue
                self._cache[snippet_id] = (checksum, plaintext)
                for index in indices:
                    results[index] = plaintext.decode()
        return results
