"""On-disk persistence for a Zerber+R deployment.

The index server's state is exactly what an untrusted host would store:
the merged lists (ciphertext, group tag, TRS) — no keys, no plaintext.
Alongside it we persist the *public* setup artifacts a joining client
needs: the merge plan (term -> list id) and the published RSTF model.
Group keys are deliberately **not** serialised; they live in the trusted
:class:`~repro.crypto.keys.GroupKeyService`, which a deployment
reconstructs from its own secret.

Format: a single JSON document (version-tagged), ciphertexts base64.
JSON keeps the dump debuggable and dependency-free; the format is
stable across releases via the ``format_version`` field.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path

from repro.core.rstf import Rstf, RstfModel
from repro.core.server import ZerberRServer
from repro.crypto.keys import GroupKeyService
from repro.errors import ConfigurationError
from repro.index.merge import MergePlan
from repro.index.postings import EncryptedPostingElement

FORMAT_VERSION = 1


# -- encoders ----------------------------------------------------------------


def merge_plan_to_dict(plan: MergePlan) -> dict:
    return {"r": plan.r, "groups": [list(group) for group in plan.groups]}


def merge_plan_from_dict(data: dict) -> MergePlan:
    return MergePlan(
        groups=tuple(tuple(group) for group in data["groups"]), r=float(data["r"])
    )


def rstf_model_to_dict(model: RstfModel) -> dict:
    return {
        term: {
            "mus": list(model.get(term).mus),
            "sigma": model.get(term).sigma,
            "kind": model.get(term).kind,
        }
        for term in sorted(model.terms())
    }


def rstf_model_from_dict(data: dict) -> RstfModel:
    return RstfModel(
        {
            term: Rstf(
                mus=tuple(entry["mus"]),
                sigma=float(entry["sigma"]),
                kind=entry["kind"],
            )
            for term, entry in data.items()
        }
    )


def server_to_dict(server: ZerberRServer) -> dict:
    lists = {}
    for list_id in range(server.num_lists):
        merged = server._lists[list_id]
        if not merged.elements:
            continue
        lists[str(list_id)] = [
            {
                "c": base64.b64encode(element.ciphertext).decode(),
                "g": element.group,
                "t": element.trs,
            }
            for element in merged.elements
        ]
    return {"num_lists": server.num_lists, "lists": lists}


def server_from_dict(data: dict, key_service: GroupKeyService) -> ZerberRServer:
    server = ZerberRServer(key_service, num_lists=int(data["num_lists"]))
    for list_id_str, elements in data["lists"].items():
        list_id = int(list_id_str)
        merged = server._lists[list_id]
        merged.bulk_load_sorted_by_trs(
            EncryptedPostingElement(
                ciphertext=base64.b64decode(entry["c"]),
                group=entry["g"],
                trs=entry["t"],
            )
            for entry in elements
        )
    return server


# -- top-level save/load --------------------------------------------------------


def save_index(
    path: str | Path,
    server: ZerberRServer,
    merge_plan: MergePlan,
    rstf_model: RstfModel,
) -> None:
    """Write the untrusted-host state plus public setup artifacts."""
    payload = {
        "format_version": FORMAT_VERSION,
        "merge_plan": merge_plan_to_dict(merge_plan),
        "rstf_model": rstf_model_to_dict(rstf_model),
        "server": server_to_dict(server),
    }
    Path(path).write_text(json.dumps(payload))


def load_index(
    path: str | Path, key_service: GroupKeyService
) -> tuple[ZerberRServer, MergePlan, RstfModel]:
    """Reload a saved index against a (trusted) key service.

    The key service must already know the groups/principals the
    deployment uses; this function restores only the untrusted state.
    """
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported index format version: {version!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    merge_plan = merge_plan_from_dict(payload["merge_plan"])
    rstf_model = rstf_model_from_dict(payload["rstf_model"])
    server = server_from_dict(payload["server"], key_service)
    return server, merge_plan, rstf_model
