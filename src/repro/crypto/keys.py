"""Group key management and access control (paper §2, §5.2).

Collaboration groups each own a symmetric master key.  The
:class:`GroupKeyService` models the trusted key-distribution component the
paper assumes (it is *not* the untrusted index server): it registers
groups, enrols principals, and hands a group's key only to its members.
The index server itself never sees keys — it checks membership claims via
:meth:`GroupKeyService.is_member` (authentication is out of the paper's
scope and modelled as reliable).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.crypto.cipher import NonceSequence, StreamCipher
from repro.crypto.prf import Prf, derive_key
from repro.errors import AccessDeniedError, ConfigurationError


@dataclass
class Principal:
    """A user identity with group memberships."""

    name: str
    groups: set[str] = field(default_factory=set)


class GroupKeyService:
    """Registry of groups, keys, and memberships.

    Keys are derived deterministically from a service master secret so that
    simulations are reproducible; a deployment would generate them randomly.
    """

    def __init__(self, master_secret: bytes | None = None) -> None:
        if master_secret is None:
            master_secret = hashlib.sha256(b"repro-zerber-default-secret").digest()
        if len(master_secret) < 16:
            raise ConfigurationError("master secret must be at least 16 bytes")
        self._master = master_secret
        self._groups: dict[str, bytes] = {}
        self._principals: dict[str, Principal] = {}
        self._nonce_sequences: dict[tuple[str, str], NonceSequence] = {}
        # Hot-path object caches: building a StreamCipher (two subkey
        # derivations plus hash key schedules) or an unseen-term Prf per
        # call would dominate the skim path.  Membership is re-checked on
        # every lookup, so a hit can never outlive a revocation; entries
        # are additionally dropped on enroll/revoke (belt and braces).
        self._ciphers: dict[tuple[str, str], StreamCipher] = {}
        self._unseen_prfs: dict[tuple[str, str], Prf] = {}

    # -- groups --------------------------------------------------------------

    def create_group(self, group: str) -> None:
        """Register a group and derive its master key."""
        if group in self._groups:
            raise ConfigurationError(f"group already exists: {group!r}")
        self._groups[group] = derive_key(self._master, f"group:{group}")

    def ensure_group(self, group: str) -> None:
        """Create *group* if it does not exist yet."""
        if group not in self._groups:
            self.create_group(group)

    def groups(self) -> set[str]:
        return set(self._groups)

    # -- principals ------------------------------------------------------------

    def register(self, name: str, groups: set[str] | None = None) -> Principal:
        """Register a principal, enrolling it in *groups* (created on demand)."""
        if name in self._principals:
            raise ConfigurationError(f"principal already exists: {name!r}")
        principal = Principal(name=name)
        self._principals[name] = principal
        for group in groups or set():
            self.enroll(name, group)
        return principal

    def enroll(self, name: str, group: str) -> None:
        """Add a principal to a group."""
        principal = self._principal(name)
        self.ensure_group(group)
        principal.groups.add(group)
        self._invalidate(name, group)

    def revoke(self, name: str, group: str) -> None:
        """Remove a principal from a group."""
        principal = self._principal(name)
        principal.groups.discard(group)
        self._invalidate(name, group)

    def _invalidate(self, name: str, group: str) -> None:
        """Drop cached crypto objects of one (principal, group) pair."""
        self._ciphers.pop((name, group), None)
        self._unseen_prfs.pop((name, group), None)

    def _principal(self, name: str) -> Principal:
        principal = self._principals.get(name)
        if principal is None:
            raise ConfigurationError(f"unknown principal: {name!r}")
        return principal

    def is_member(self, name: str, group: str) -> bool:
        """Membership check the index server performs before serving data."""
        principal = self._principals.get(name)
        return principal is not None and group in principal.groups

    def memberships(self, name: str) -> set[str]:
        """All groups of a principal."""
        return set(self._principal(name).groups)

    def membership_snapshot(self, name: str) -> frozenset[str]:
        """Current memberships as an immutable set; empty for unknowns.

        Servers compare snapshots to detect enroll/revoke between two
        requests (cached per-principal state must not outlive a
        revocation), so unlike :meth:`memberships` this never raises.
        """
        principal = self._principals.get(name)
        return frozenset(principal.groups) if principal is not None else frozenset()

    # -- key handout -------------------------------------------------------------

    def group_key(self, principal: str, group: str) -> bytes:
        """The group master key, released only to members."""
        if not self.is_member(principal, group):
            raise AccessDeniedError(principal, group)
        return self._groups[group]

    def cipher_for(self, principal: str, group: str) -> StreamCipher:
        """THE ready-to-use cipher of a member of *group* — cached.

        Membership is checked on EVERY call, not just the cache miss, so a
        revoked principal loses access immediately; the cached
        :class:`StreamCipher` itself is stateless (nonces are
        caller-supplied), so sharing it across calls is safe.
        """
        if not self.is_member(principal, group):
            raise AccessDeniedError(principal, group)
        cache_key = (principal, group)
        cipher = self._ciphers.get(cache_key)
        if cipher is None:
            cipher = StreamCipher(self._groups[group])
            self._ciphers[cache_key] = cipher
        return cipher

    def nonce_sequence(self, principal: str, group: str) -> NonceSequence:
        """THE nonce sequence of a (member, group) pair — a singleton.

        A principal's nonces are ``PRF(counter)`` under a key derived only
        from the group key and the principal's name, so two independent
        :class:`NonceSequence` instances would restart the counter and
        reuse nonces on different plaintexts — an XOR-stream
        confidentiality break.  The key service (shared by every client of
        a deployment) therefore owns one cached sequence per pair; clients
        must draw nonces from here instead of building their own.
        """
        # Membership is checked on EVERY call, not just the cache miss: a
        # revoked principal must lose access immediately (cached state
        # never outlives a revocation).  The cache entry itself survives a
        # revoke so that a later re-enroll resumes the counter instead of
        # restarting it.
        if not self.is_member(principal, group):
            raise AccessDeniedError(principal, group)
        cache_key = (principal, group)
        sequence = self._nonce_sequences.get(cache_key)
        if sequence is None:
            sequence = NonceSequence(
                self.group_key(principal, group), label=f"nonce:{principal}"
            )
            self._nonce_sequences[cache_key] = sequence
        return sequence

    def unseen_term_prf(self, principal: str, group: str) -> Prf:
        """The keyed PRF members use to assign TRS to training-unseen terms.

        Keyed per group so that adversaries cannot precompute the TRS of
        candidate terms, but shared by all members so concurrent inserts of
        the same term agree (paper §5.1.1).  Cached per (principal, group)
        with membership re-checked every call, like :meth:`cipher_for`.
        """
        if not self.is_member(principal, group):
            raise AccessDeniedError(principal, group)
        cache_key = (principal, group)
        prf = self._unseen_prfs.get(cache_key)
        if prf is None:
            prf = Prf(derive_key(self._groups[group], "unseen-trs"))
            self._unseen_prfs[cache_key] = prf
        return prf
