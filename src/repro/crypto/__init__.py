"""Cryptography substrate: PRF, authenticated stream cipher, group keys.

The paper treats posting-element encryption as a black box ("Zerber stores
ranking information as well as term and document identifiers within each
posting element in an encrypted form").  No external crypto package is
installable offline, so we build a PRF-based authenticated stream cipher on
``hmac``/``hashlib`` from the standard library.  It exercises exactly the
code path the paper needs — encrypt on insert, decrypt + integrity-check on
query, random-looking incompressible ciphertext (§6.6) — and must not be
mistaken for an audited production cipher.

The layer is tuned for the fetch hot path: precomputed hash states, a
one-squeeze XOF keystream, batch skims and bounded caches — see
:mod:`repro.crypto.prf` and :mod:`repro.crypto.cipher` for the perf model.
"""

from repro.crypto.prf import Prf, XofKeystream, derive_key
from repro.crypto.cipher import (
    NonceSequence,
    StreamCipher,
    cipher_for_key,
    encrypt,
    decrypt,
)
from repro.crypto.keys import GroupKeyService, Principal

__all__ = [
    "Prf",
    "XofKeystream",
    "derive_key",
    "StreamCipher",
    "NonceSequence",
    "cipher_for_key",
    "encrypt",
    "decrypt",
    "GroupKeyService",
    "Principal",
]
