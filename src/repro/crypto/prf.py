"""HMAC-SHA256 pseudo-random function and key derivation."""

from __future__ import annotations

import hashlib
import hmac

DIGEST_SIZE = hashlib.sha256().digest_size  # 32 bytes


class Prf:
    """A keyed PRF: ``F_key(message) -> 32 bytes`` via HMAC-SHA256."""

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise ValueError("PRF key must be at least 16 bytes")
        self._key = key

    def evaluate(self, message: bytes) -> bytes:
        """The PRF output block for *message*."""
        return hmac.new(self._key, message, hashlib.sha256).digest()

    def evaluate_int(self, message: bytes, modulus: int) -> int:
        """PRF output reduced modulo *modulus* (for pseudo-random indices)."""
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        return int.from_bytes(self.evaluate(message), "big") % modulus

    def evaluate_unit(self, message: bytes) -> float:
        """PRF output mapped to [0, 1) with 53-bit precision.

        Used for the deterministic pseudo-random TRS of terms unseen at
        training time (paper §5.1.1): the same term always maps to the same
        TRS, so concurrent inserting clients agree without coordination.
        """
        block = self.evaluate(message)
        mantissa = int.from_bytes(block[:8], "big") >> 11  # top 53 bits
        return mantissa / float(1 << 53)

    def keystream(self, nonce: bytes, length: int) -> bytes:
        """*length* pseudo-random bytes bound to *nonce* (counter mode)."""
        if length < 0:
            raise ValueError("length must be non-negative")
        blocks = []
        counter = 0
        produced = 0
        while produced < length:
            block = self.evaluate(nonce + counter.to_bytes(8, "big"))
            blocks.append(block)
            produced += len(block)
            counter += 1
        return b"".join(blocks)[:length]


def derive_key(master_key: bytes, label: str) -> bytes:
    """Derive an independent subkey from *master_key* for *label*.

    Used to separate the encryption key, the MAC key, and the
    unseen-term-TRS key of a group from one master secret.
    """
    if len(master_key) < 16:
        raise ValueError("master key must be at least 16 bytes")
    return hmac.new(master_key, b"derive:" + label.encode(), hashlib.sha256).digest()
