"""HMAC-SHA256 pseudo-random function and key derivation.

Performance model: a fresh ``hmac.new(key, ...)`` pays the HMAC key
schedule (masking the key with ipad/opad and compressing both 64-byte
blocks) on every call, plus the ``hmac`` module's per-object overhead.  A
:class:`Prf` therefore precomputes the two keyed SHA-256 states once at
construction and answers every :meth:`evaluate` from ``.copy()`` of those
states — six C-level hashlib calls per PRF block, no re-keying, byte
identical to ``hmac.new(key, message, sha256).digest()``.
:meth:`keystream` additionally absorbs the nonce into a third state that
is copied per counter block, and produces exactly the requested length
(single-block requests — the common case for posting elements — take a
no-join fast path).
"""

from __future__ import annotations

import hashlib

DIGEST_SIZE = hashlib.sha256().digest_size  # 32 bytes
_BLOCK_SIZE = 64  # SHA-256 compression block, the HMAC pad width
_IPAD = bytes(b ^ 0x36 for b in range(256))
_OPAD = bytes(b ^ 0x5C for b in range(256))


class Prf:
    """A keyed PRF: ``F_key(message) -> 32 bytes`` via HMAC-SHA256."""

    __slots__ = ("_inner", "_outer")

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise ValueError("PRF key must be at least 16 bytes")
        # Standard HMAC key schedule, done exactly once: long keys are
        # hashed down, short keys zero-padded to the compression block.
        if len(key) > _BLOCK_SIZE:
            key = hashlib.sha256(key).digest()
        padded = key.ljust(_BLOCK_SIZE, b"\x00")
        self._inner = hashlib.sha256(padded.translate(_IPAD))
        self._outer = hashlib.sha256(padded.translate(_OPAD))

    def evaluate(self, message: bytes) -> bytes:
        """The PRF output block for *message*."""
        inner = self._inner.copy()
        inner.update(message)
        outer = self._outer.copy()
        outer.update(inner.digest())
        return outer.digest()

    def evaluate_int(self, message: bytes, modulus: int) -> int:
        """PRF output reduced modulo *modulus* (for pseudo-random indices)."""
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        return int.from_bytes(self.evaluate(message), "big") % modulus

    def evaluate_unit(self, message: bytes) -> float:
        """PRF output mapped to [0, 1) with 53-bit precision.

        Used for the deterministic pseudo-random TRS of terms unseen at
        training time (paper §5.1.1): the same term always maps to the same
        TRS, so concurrent inserting clients agree without coordination.
        """
        block = self.evaluate(message)
        mantissa = int.from_bytes(block[:8], "big") >> 11  # top 53 bits
        return mantissa / float(1 << 53)

    def keystream(self, nonce: bytes, length: int) -> bytes:
        """*length* pseudo-random bytes bound to *nonce* (counter mode).

        Block ``i`` is ``HMAC(key, nonce || i)`` — identical bytes to the
        straight-line loop, but generated from precomputed hash states
        (the nonce is absorbed once, each block costs two state copies and
        two short updates) with the trailing block trimmed before joining,
        so exactly *length* bytes are materialised.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        if length == 0:
            return b""
        outer = self._outer
        if length <= DIGEST_SIZE:
            # Single-block fast path: no seeded-state copy, no join.
            inner = self._inner.copy()
            inner.update(nonce + b"\x00\x00\x00\x00\x00\x00\x00\x00")
            out = outer.copy()
            out.update(inner.digest())
            block = out.digest()
            return block if length == DIGEST_SIZE else block[:length]
        seeded = self._inner.copy()
        seeded.update(nonce)
        seeded_copy = seeded.copy
        outer_copy = outer.copy
        num_blocks = -(-length // DIGEST_SIZE)
        parts = []
        append = parts.append
        for counter in range(num_blocks):
            inner = seeded_copy()
            inner.update(counter.to_bytes(8, "big"))
            out = outer_copy()
            out.update(inner.digest())
            append(out.digest())
        tail = length - (num_blocks - 1) * DIGEST_SIZE
        if tail != DIGEST_SIZE:
            parts[-1] = parts[-1][:tail]
        return b"".join(parts)


class XofKeystream:
    """Arbitrary-length keystream from a prefix-keyed SHAKE-256 sponge.

    ``keystream(nonce, n)`` squeezes ``SHAKE-256(key || nonce)`` to *n*
    bytes — the whole stream comes out of ONE extendable-output digest
    call instead of one HMAC invocation per 32 bytes, which is what makes
    the decrypt-skim hot path fast.  The key is absorbed once at
    construction; each call copies the keyed state and absorbs the nonce.
    A secret-prefix sponge is a PRF for fixed-length keys (the KMAC
    construction minus its encoding frills); callers must pass a
    fixed-width key such as a :func:`derive_key` output so the key/nonce
    boundary is unambiguous.
    """

    KEY_SIZE = DIGEST_SIZE  # fixed width keeps the key || nonce split sound

    __slots__ = ("_state",)

    def __init__(self, key: bytes) -> None:
        if len(key) != self.KEY_SIZE:
            raise ValueError(f"XOF keystream key must be {self.KEY_SIZE} bytes")
        self._state = hashlib.shake_256(key)

    def keystream(self, nonce: bytes, length: int) -> bytes:
        """*length* pseudo-random bytes bound to *nonce*, one squeeze."""
        if length < 0:
            raise ValueError("length must be non-negative")
        state = self._state.copy()
        state.update(nonce)
        return state.digest(length)


def derive_key(master_key: bytes, label: str) -> bytes:
    """Derive an independent subkey from *master_key* for *label*.

    Used to separate the encryption key, the MAC key, and the
    unseen-term-TRS key of a group from one master secret.
    """
    if len(master_key) < 16:
        raise ValueError("master key must be at least 16 bytes")
    return Prf(master_key).evaluate(b"derive:" + label.encode())
