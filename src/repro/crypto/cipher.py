"""Authenticated counter-mode stream cipher over the HMAC PRF.

Wire format of a ciphertext::

    nonce (16 bytes) || body (len(plaintext) bytes) || tag (16 bytes)

``body = plaintext XOR keystream(nonce)``; the tag is a truncated
HMAC-SHA256 over ``nonce || body`` under an independent MAC subkey, checked
on decryption (wrong-key or tampered ciphertexts raise
:class:`~repro.errors.AuthenticationError` instead of yielding garbage — a
querying client must be able to tell "not my group's element" apart from
data corruption).
"""

from __future__ import annotations

import hmac as _hmac

from repro.crypto.prf import Prf, derive_key
from repro.errors import AuthenticationError

NONCE_SIZE = 16
TAG_SIZE = 16


class StreamCipher:
    """Encrypt/decrypt byte strings under one group master key."""

    def __init__(self, master_key: bytes) -> None:
        self._enc = Prf(derive_key(master_key, "enc"))
        self._mac = Prf(derive_key(master_key, "mac"))

    def encrypt(self, plaintext: bytes, nonce: bytes) -> bytes:
        """Encrypt *plaintext*; *nonce* must be unique per message.

        Nonces are caller-supplied (16 bytes) so that tests and simulations
        stay deterministic; :class:`NonceSequence` provides a safe default.
        """
        if len(nonce) != NONCE_SIZE:
            raise ValueError(f"nonce must be {NONCE_SIZE} bytes")
        stream = self._enc.keystream(nonce, len(plaintext))
        body = bytes(p ^ s for p, s in zip(plaintext, stream))
        tag = self._mac.evaluate(nonce + body)[:TAG_SIZE]
        return nonce + body + tag

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Decrypt and authenticate; raises :class:`AuthenticationError`."""
        if len(ciphertext) < NONCE_SIZE + TAG_SIZE:
            raise AuthenticationError("ciphertext too short")
        nonce = ciphertext[:NONCE_SIZE]
        body = ciphertext[NONCE_SIZE:-TAG_SIZE]
        tag = ciphertext[-TAG_SIZE:]
        expected = self._mac.evaluate(nonce + body)[:TAG_SIZE]
        if not _hmac.compare_digest(tag, expected):
            raise AuthenticationError("ciphertext failed integrity check")
        stream = self._enc.keystream(nonce, len(body))
        return bytes(b ^ s for b, s in zip(body, stream))

    def try_decrypt(self, ciphertext: bytes) -> bytes | None:
        """Decrypt, returning ``None`` instead of raising on auth failure.

        The querying client uses this to skim merged lists containing
        elements of groups it cannot read.
        """
        try:
            return self.decrypt(ciphertext)
        except AuthenticationError:
            return None


class NonceSequence:
    """Deterministic unique nonces: ``PRF(counter)`` under a nonce subkey.

    Each inserting client owns one sequence; uniqueness holds as long as a
    (client key, counter) pair is never reused, which the monotonically
    increasing counter guarantees within a process.
    """

    def __init__(self, master_key: bytes, label: str = "nonce") -> None:
        self._prf = Prf(derive_key(master_key, label))
        self._counter = 0

    def next(self) -> bytes:
        nonce = self._prf.evaluate(self._counter.to_bytes(8, "big"))[:NONCE_SIZE]
        self._counter += 1
        return nonce


def encrypt(master_key: bytes, plaintext: bytes, nonce: bytes) -> bytes:
    """One-shot helper around :class:`StreamCipher`."""
    return StreamCipher(master_key).encrypt(plaintext, nonce)


def decrypt(master_key: bytes, ciphertext: bytes) -> bytes:
    """One-shot helper around :class:`StreamCipher`."""
    return StreamCipher(master_key).decrypt(ciphertext)
