"""Authenticated counter-mode stream cipher over the crypto substrate.

Wire format of a ciphertext::

    nonce (16 bytes) || body (len(plaintext) bytes) || tag (16 bytes)

``body = plaintext XOR keystream(nonce)``; the tag is a truncated
HMAC-SHA256 over ``nonce || body`` under an independent MAC subkey, checked
on decryption (wrong-key or tampered ciphertexts raise
:class:`~repro.errors.AuthenticationError` instead of yielding garbage — a
querying client must be able to tell "not my group's element" apart from
data corruption).

Performance model — this cipher sits on the fetch hot path (a querying
client skims every readable element of every fetched slice), so every
layer of the per-element cost is flattened:

* the keystream is one :class:`~repro.crypto.prf.XofKeystream` squeeze
  (``SHAKE-256(enc_subkey || nonce)`` expanded to the body length in a
  single C call) instead of one HMAC invocation per 32 bytes;
* the XOR is a single arbitrary-precision integer operation
  (``int.from_bytes(a) ^ int.from_bytes(b)``), three C-level calls instead
  of one Python iteration per byte;
* the MAC answers from precomputed HMAC states
  (:class:`~repro.crypto.prf.Prf`), so no key schedule is re-run per tag;
* both subkey derivations happen once in ``__init__``, and the
  module-level one-shot :func:`encrypt`/:func:`decrypt` helpers keep a
  bounded cache of ciphers keyed by master key instead of re-deriving
  subkeys per call;
* :meth:`StreamCipher.try_decrypt_many` skims a whole fetched slice in
  one call with the verify/decrypt plumbing inlined, amortising the
  per-element attribute lookups and call dispatch;
* a bounded decrypt memo (ciphertext -> verified plaintext) makes
  re-skims of hot elements O(dict lookup): the paper's Zipf workload
  fetches the same head slices over and over (every concurrent query
  shares the hot terms), and a ciphertext is immutable — same bytes,
  same plaintext, so serving a memoised verified result is sound.  The
  memo lives inside the per-group cipher, which principals only obtain
  through the membership-checked key service.
"""

from __future__ import annotations

from collections.abc import Iterable
from functools import lru_cache
from hmac import compare_digest as _compare_digest

from repro.crypto.prf import Prf, XofKeystream, derive_key
from repro.errors import AuthenticationError

NONCE_SIZE = 16
TAG_SIZE = 16


class StreamCipher:
    """Encrypt/decrypt byte strings under one group master key.

    ``memo_capacity`` bounds the decrypt memo (entries, FIFO-evicted in
    halves); ``0`` disables memoisation entirely.

    ``memo_hits`` counts skim decrypts answered straight from the memo
    — a plain attribute (one integer add on the hit path) that the
    client's telemetry instruments read and difference, so the cipher
    itself stays free of any registry dependency.
    """

    __slots__ = ("_enc", "_mac", "_memo", "_memo_capacity", "memo_hits")

    DEFAULT_MEMO_CAPACITY = 8192

    def __init__(
        self, master_key: bytes, memo_capacity: int = DEFAULT_MEMO_CAPACITY
    ) -> None:
        if len(master_key) < 16:
            raise ValueError("master key must be at least 16 bytes")
        if memo_capacity < 0:
            raise ValueError("memo_capacity must be non-negative")
        self._enc = XofKeystream(derive_key(master_key, "enc"))
        self._mac = Prf(derive_key(master_key, "mac"))
        self._memo: dict[bytes, bytes] = {}
        self._memo_capacity = memo_capacity
        self.memo_hits = 0

    def _memoise(self, ciphertext: bytes, plaintext: bytes) -> None:
        """Remember a *verified* decryption, evicting oldest when full."""
        memo = self._memo
        if len(memo) >= self._memo_capacity:
            # Drop the oldest half in one sweep (dicts iterate in
            # insertion order); amortised O(1) per store, no per-hit
            # bookkeeping on the fast path.
            for stale in list(memo)[: self._memo_capacity // 2 + 1]:
                del memo[stale]
        memo[ciphertext] = plaintext

    def encrypt(self, plaintext: bytes, nonce: bytes) -> bytes:
        """Encrypt *plaintext*; *nonce* must be unique per message.

        Nonces are caller-supplied (16 bytes) so that tests and simulations
        stay deterministic; :class:`NonceSequence` provides a safe default.
        """
        if len(nonce) != NONCE_SIZE:
            raise ValueError(f"nonce must be {NONCE_SIZE} bytes")
        size = len(plaintext)
        stream = self._enc.keystream(nonce, size)
        body = (
            int.from_bytes(plaintext, "big") ^ int.from_bytes(stream, "big")
        ).to_bytes(size, "big")
        tag = self._mac.evaluate(nonce + body)[:TAG_SIZE]
        return nonce + body + tag

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Decrypt and authenticate; raises :class:`AuthenticationError`."""
        if len(ciphertext) < NONCE_SIZE + TAG_SIZE:
            raise AuthenticationError("ciphertext too short")
        expected = self._mac.evaluate(ciphertext[:-TAG_SIZE])[:TAG_SIZE]
        if not _compare_digest(ciphertext[-TAG_SIZE:], expected):
            raise AuthenticationError("ciphertext failed integrity check")
        body = ciphertext[NONCE_SIZE:-TAG_SIZE]
        size = len(body)
        stream = self._enc.keystream(ciphertext[:NONCE_SIZE], size)
        return (
            int.from_bytes(body, "big") ^ int.from_bytes(stream, "big")
        ).to_bytes(size, "big")

    def try_decrypt(self, ciphertext: bytes) -> bytes | None:
        """Decrypt, returning ``None`` instead of raising on auth failure.

        The querying client uses this to skim merged lists containing
        elements of groups it cannot read.
        """
        cached = self._memo.get(ciphertext)
        if cached is not None:
            self.memo_hits += 1
            return cached
        try:
            plaintext = self.decrypt(ciphertext)
        except AuthenticationError:
            return None
        if self._memo_capacity:
            self._memoise(ciphertext, plaintext)
        return plaintext

    def try_decrypt_many(
        self, ciphertexts: Iterable[bytes]
    ) -> list[bytes | None]:
        """Skim a batch: one entry per input, ``None`` where auth fails.

        Semantically ``[self.try_decrypt(c) for c in ciphertexts]``, but
        the verify/decrypt plumbing is inlined against the precomputed
        hash states (package-private access into the PRF layer) so a
        fetched slice is skimmed without per-element call overhead, and
        re-skimmed hot elements are served straight from the memo.
        """
        mac_inner = self._mac._inner
        mac_outer = self._mac._outer
        xof_copy = self._enc._state.copy
        compare = _compare_digest
        from_bytes = int.from_bytes
        floor = NONCE_SIZE + TAG_SIZE
        memo = self._memo
        memo_get = memo.get
        memoise = self._memo_capacity > 0
        out: list[bytes | None] = []
        append = out.append
        hits = 0  # batch-local tally; one attribute add after the loop
        for ciphertext in ciphertexts:
            cached = memo_get(ciphertext)
            if cached is not None:
                hits += 1
                append(cached)
                continue
            if len(ciphertext) < floor:
                append(None)
                continue
            inner = mac_inner.copy()
            inner.update(ciphertext[:-TAG_SIZE])
            outer = mac_outer.copy()
            outer.update(inner.digest())
            if not compare(ciphertext[-TAG_SIZE:], outer.digest()[:TAG_SIZE]):
                append(None)
                continue
            body = ciphertext[NONCE_SIZE:-TAG_SIZE]
            size = len(body)
            xof = xof_copy()
            xof.update(ciphertext[:NONCE_SIZE])
            plaintext = (
                from_bytes(body, "big") ^ from_bytes(xof.digest(size), "big")
            ).to_bytes(size, "big")
            if memoise:
                self._memoise(ciphertext, plaintext)
            append(plaintext)
        self.memo_hits += hits
        return out

    def decrypt_many(self, ciphertexts: Iterable[bytes]) -> list[bytes]:
        """Decrypt a batch, raising on the first authentication failure.

        For callers that *own* every ciphertext (no skimming); anything
        unreadable is data corruption, not somebody else's element.
        """
        plaintexts = self.try_decrypt_many(ciphertexts)
        for plaintext in plaintexts:
            if plaintext is None:
                raise AuthenticationError("ciphertext failed integrity check")
        return plaintexts  # type: ignore[return-value]


class NonceSequence:
    """Deterministic unique nonces: ``PRF(counter)`` under a nonce subkey.

    Each inserting client owns one sequence; uniqueness holds as long as a
    (client key, counter) pair is never reused, which the monotonically
    increasing counter guarantees within a process.
    """

    def __init__(self, master_key: bytes, label: str = "nonce") -> None:
        self._prf = Prf(derive_key(master_key, label))
        self._counter = 0

    def next(self) -> bytes:
        nonce = self._prf.evaluate(self._counter.to_bytes(8, "big"))[:NONCE_SIZE]
        self._counter += 1
        return nonce


@lru_cache(maxsize=1024)
def cipher_for_key(master_key: bytes) -> StreamCipher:
    """THE cipher for *master_key* — cached, since ciphers are stateless.

    A :class:`StreamCipher` carries no per-message state (nonces are
    caller-supplied), so one shared instance per key is safe and saves the
    two subkey derivations plus the hash key schedules on every one-shot
    call.  The cache is bounded; a deployment has a handful of group keys.
    """
    return StreamCipher(master_key)


def encrypt(master_key: bytes, plaintext: bytes, nonce: bytes) -> bytes:
    """One-shot helper around a cached :class:`StreamCipher`."""
    return cipher_for_key(master_key).encrypt(plaintext, nonce)


def decrypt(master_key: bytes, ciphertext: bytes) -> bytes:
    """One-shot helper around a cached :class:`StreamCipher`."""
    return cipher_for_key(master_key).decrypt(ciphertext)
