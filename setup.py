"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so PEP 517/660
editable installs fail with "invalid command 'bdist_wheel'".  Providing a
setup.py (and omitting ``[build-system]`` from pyproject.toml) lets pip fall
back to ``setup.py develop``, which works without wheel.  All metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
