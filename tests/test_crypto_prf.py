"""Unit tests for the HMAC PRF and key derivation."""

import pytest

from repro.crypto.prf import DIGEST_SIZE, Prf, derive_key

KEY = b"0123456789abcdef0123456789abcdef"


class TestPrf:
    def test_deterministic(self):
        prf = Prf(KEY)
        assert prf.evaluate(b"msg") == prf.evaluate(b"msg")

    def test_message_sensitivity(self):
        prf = Prf(KEY)
        assert prf.evaluate(b"a") != prf.evaluate(b"b")

    def test_key_sensitivity(self):
        assert Prf(KEY).evaluate(b"m") != Prf(KEY[::-1]).evaluate(b"m")

    def test_output_size(self):
        assert len(Prf(KEY).evaluate(b"m")) == DIGEST_SIZE

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            Prf(b"short")

    def test_evaluate_int_range(self):
        prf = Prf(KEY)
        for i in range(50):
            value = prf.evaluate_int(str(i).encode(), 7)
            assert 0 <= value < 7

    def test_evaluate_int_invalid_modulus(self):
        with pytest.raises(ValueError):
            Prf(KEY).evaluate_int(b"m", 0)

    def test_evaluate_unit_range(self):
        prf = Prf(KEY)
        values = [prf.evaluate_unit(str(i).encode()) for i in range(200)]
        assert all(0.0 <= v < 1.0 for v in values)

    def test_evaluate_unit_spread(self):
        # Outputs should look uniform — at least hit both halves often.
        prf = Prf(KEY)
        values = [prf.evaluate_unit(str(i).encode()) for i in range(200)]
        low = sum(1 for v in values if v < 0.5)
        assert 60 < low < 140

    def test_keystream_length(self):
        prf = Prf(KEY)
        assert len(prf.keystream(b"nonce", 100)) == 100
        assert len(prf.keystream(b"nonce", 0)) == 0

    def test_keystream_prefix_property(self):
        prf = Prf(KEY)
        assert prf.keystream(b"n", 64)[:32] == prf.keystream(b"n", 32)

    def test_keystream_nonce_sensitivity(self):
        prf = Prf(KEY)
        assert prf.keystream(b"n1", 32) != prf.keystream(b"n2", 32)

    def test_keystream_negative_length(self):
        with pytest.raises(ValueError):
            Prf(KEY).keystream(b"n", -1)


class TestDeriveKey:
    def test_label_separation(self):
        assert derive_key(KEY, "enc") != derive_key(KEY, "mac")

    def test_deterministic(self):
        assert derive_key(KEY, "x") == derive_key(KEY, "x")

    def test_output_usable_as_prf_key(self):
        Prf(derive_key(KEY, "sub"))

    def test_short_master_rejected(self):
        with pytest.raises(ValueError):
            derive_key(b"tiny", "x")
