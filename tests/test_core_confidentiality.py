"""Unit tests for r-confidentiality auditing (Def. 1 & 2)."""

import pytest

from repro.core.confidentiality import (
    attribution_probabilities,
    audit_merge_plan,
    probability_amplification,
    require_r_confidential,
)
from repro.errors import ConfidentialityViolationError
from repro.index.merge import MergePlan


class TestAmplification:
    def test_ratio(self):
        assert probability_amplification(0.1, 0.4) == pytest.approx(4.0)

    def test_no_amplification(self):
        assert probability_amplification(0.2, 0.2) == pytest.approx(1.0)

    def test_invalid_prior(self):
        with pytest.raises(ValueError):
            probability_amplification(0.0, 0.5)

    def test_invalid_posterior(self):
        with pytest.raises(ValueError):
            probability_amplification(0.5, 1.5)


class TestAttribution:
    def test_proportional_to_priors(self):
        post = attribution_probabilities(["a", "b"], {"a": 0.3, "b": 0.1})
        assert post["a"] == pytest.approx(0.75)
        assert post["b"] == pytest.approx(0.25)

    def test_sums_to_one(self):
        post = attribution_probabilities(
            ["a", "b", "c"], {"a": 0.2, "b": 0.05, "c": 0.15}
        )
        assert sum(post.values()) == pytest.approx(1.0)

    def test_amplification_equals_inverse_mass(self):
        probs = {"a": 0.3, "b": 0.1}
        post = attribution_probabilities(["a", "b"], probs)
        for term in probs:
            assert probability_amplification(probs[term], post[term]) == pytest.approx(
                1 / 0.4
            )

    def test_zero_mass_rejected(self):
        with pytest.raises(ValueError):
            attribution_probabilities(["a"], {"a": 0.0})


class TestAudit:
    PROBS = {"a": 0.3, "b": 0.1, "c": 0.05, "d": 0.25}

    def test_confidential_plan(self):
        plan = MergePlan(groups=(("a", "b"), ("c", "d")), r=4.0)
        audit = audit_merge_plan(plan, self.PROBS)
        assert audit.is_confidential
        assert audit.violating_lists() == []

    def test_amplification_values(self):
        plan = MergePlan(groups=(("a", "b"), ("c", "d")), r=4.0)
        audit = audit_merge_plan(plan, self.PROBS)
        assert audit.per_list_amplification[0] == pytest.approx(1 / 0.4)
        assert audit.per_list_amplification[1] == pytest.approx(1 / 0.3)
        assert audit.max_amplification == pytest.approx(1 / 0.3)

    def test_violating_plan_detected(self):
        plan = MergePlan(groups=(("c",),), r=4.0)  # mass 0.05 -> amp 20
        audit = audit_merge_plan(plan, self.PROBS)
        assert not audit.is_confidential
        assert audit.violating_lists() == [0]

    def test_require_raises(self):
        plan = MergePlan(groups=(("c",),), r=4.0)
        with pytest.raises(ConfidentialityViolationError):
            require_r_confidential(plan, self.PROBS)

    def test_require_passes(self):
        plan = MergePlan(groups=(("a", "b", "c", "d"),), r=2.0)
        require_r_confidential(plan, self.PROBS)

    def test_boundary_exact_r(self):
        # mass exactly 1/r should pass (Def. 2 uses >=).
        plan = MergePlan(groups=(("a", "b"),), r=2.5)
        audit = audit_merge_plan(plan, {"a": 0.3, "b": 0.1})
        assert audit.is_confidential
