"""CLI tests for the telemetry subcommands: metrics, trace, cluster-status."""

import json

import pytest

from repro.cli import main


class TestMetricsCommand:
    def test_json_covers_every_metric_family(self, capsys):
        assert main(["metrics"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["schema_version"] == 1
        families = {name.split("_", 1)[0] for name in record["metrics"]}
        assert {
            "coordinator",
            "cluster",
            "replication",
            "views",
            "crypto",
            "persist",
        } <= families
        assert record["monitor"]["samples"], "monitor window came back empty"

    def test_scripted_workload_actually_exercises_the_paths(self, capsys):
        assert main(["metrics"]) == 0
        record = json.loads(capsys.readouterr().out)
        metrics = record["metrics"]

        def total(name):
            return sum(
                entry["value"] for entry in metrics[name]["series"]
            )

        assert total("cluster_reads_total") > 0
        assert total("cluster_writes_total") > 0
        assert total("replication_elections_total") >= 1
        assert total("crypto_skim_elements_total") > 0
        assert total("persist_snapshots_total") >= 1
        read_labels = {
            entry["labels"]["consistency"]
            for entry in metrics["cluster_reads_total"]["series"]
        }
        assert {"one", "primary", "quorum"} <= read_labels

    def test_text_format(self, capsys):
        assert main(["metrics", "--format", "text"]) == 0
        out = capsys.readouterr().out
        assert "cluster_reads_total" in out
        assert "replication_ack_latency_ticks" in out

    def test_output_file(self, tmp_path):
        path = tmp_path / "metrics.json"
        assert main(["metrics", "--output", str(path)]) == 0
        record = json.loads(path.read_text())
        assert record["schema_version"] == 1


class TestTraceCommand:
    def test_text_shows_the_full_span_chain(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        for name in ("query", "coalesce", "envelope", "serve", "skim"):
            assert name in out, f"span {name!r} missing from trace output"

    def test_json_tree_is_nested(self, capsys):
        assert main(["trace", "--format", "json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["root"]["name"] == "query"
        assert record["root"]["children"], "root span has no children"


@pytest.fixture(scope="module")
def snapshot_file(tmp_path_factory, docs_dir):
    path = tmp_path_factory.mktemp("snap") / "cluster.json"
    code = main(
        [
            "snapshot",
            "--input",
            str(docs_dir),
            "--output",
            str(path),
            "--servers",
            "3",
            "--replication",
            "2",
            "--lag",
            "2",
        ]
    )
    assert code == 0
    return path


@pytest.fixture(scope="module")
def docs_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("docs")
    group = root / "alpha"
    group.mkdir()
    (group / "a1.txt").write_text("reactor calibration reactor dosing")
    (group / "a2.txt").write_text("dosing budget meeting notes calibration")
    return root


class TestClusterStatusCommand:
    def test_prints_per_server_state(self, snapshot_file, capsys):
        assert main(["cluster-status", "--snapshot", str(snapshot_file)]) == 0
        out = capsys.readouterr().out
        assert "servers" in out
        assert "server 0" in out
        assert "failover history" in out

    def test_missing_snapshot_errors(self, capsys, tmp_path):
        code = main(["cluster-status", "--snapshot", str(tmp_path / "nope.json")])
        assert code != 0
