"""Unit tests for the bandwidth/efficiency metrics (Eq. 12–14)."""

import pytest

from repro.core.protocol import BatchQueryTrace, QueryTrace, ResponsePolicy
from repro.evalmetrics.bandwidth import (
    average_bandwidth_overhead,
    average_num_requests,
    average_round_trips,
    batched_request_reduction,
    total_server_requests,
    efficiency_at_percentile,
    efficiency_curve,
    query_efficiency,
    satisfied_fraction,
    total_response_size,
)


def _trace(k, transferred, requests=1, satisfied=True):
    return QueryTrace(
        term="t",
        k=k,
        num_requests=requests,
        elements_transferred=transferred,
        satisfied=satisfied,
    )


class TestAggregates:
    def test_total_response_size_eq12(self):
        policy = ResponsePolicy(initial_size=10)
        assert total_response_size(policy, 3) == 70

    def test_avbo_eq13(self):
        traces = [_trace(10, 10), _trace(10, 30)]
        assert average_bandwidth_overhead(traces) == pytest.approx(2.0)

    def test_average_requests(self):
        traces = [_trace(10, 10, requests=1), _trace(10, 30, requests=3)]
        assert average_num_requests(traces) == pytest.approx(2.0)

    def test_query_efficiency_eq14(self):
        assert query_efficiency(_trace(10, 40)) == pytest.approx(0.25)

    def test_satisfied_fraction(self):
        traces = [_trace(10, 10), _trace(10, 10, satisfied=False)]
        assert satisfied_fraction(traces) == pytest.approx(0.5)

    def test_empty_traces_rejected(self):
        with pytest.raises(ValueError):
            average_bandwidth_overhead([])
        with pytest.raises(ValueError):
            average_num_requests([])
        with pytest.raises(ValueError):
            efficiency_curve([])
        with pytest.raises(ValueError):
            satisfied_fraction([])


class TestCurve:
    def test_descending(self):
        traces = [_trace(10, 100), _trace(10, 10), _trace(10, 20)]
        curve = efficiency_curve(traces)
        assert curve == sorted(curve, reverse=True)
        assert curve[0] == pytest.approx(1.0)

    def test_percentile_lookup(self):
        curve = [1.0, 0.5, 0.2, 0.1]
        assert efficiency_at_percentile(curve, 0) == 1.0
        assert efficiency_at_percentile(curve, 50) == 0.2
        assert efficiency_at_percentile(curve, 100) == 0.1

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            efficiency_at_percentile([], 50)
        with pytest.raises(ValueError):
            efficiency_at_percentile([1.0], 101)


def _batch_trace(rounds, subfetches):
    return BatchQueryTrace(
        terms=("a", "b"),
        k=10,
        num_rounds=rounds,
        num_subfetches=subfetches,
    )


class TestBatchedAccounting:
    def test_total_server_requests_mixed_population(self):
        traces = [_trace(10, 10, requests=3), _batch_trace(2, 6)]
        # The single-term trace issued 3 calls; the batched session 2.
        assert total_server_requests(traces) == 5

    def test_average_round_trips(self):
        traces = [_batch_trace(2, 6), _batch_trace(4, 4)]
        assert average_round_trips(traces) == pytest.approx(3.0)

    def test_reduction_fraction(self):
        traces = [_batch_trace(2, 6), _batch_trace(2, 2)]
        # 4 rounds carried 8 slices: half the round-trips disappeared.
        assert batched_request_reduction(traces) == pytest.approx(0.5)

    def test_single_term_sessions_save_nothing(self):
        traces = [_batch_trace(3, 3)]
        assert batched_request_reduction(traces) == pytest.approx(0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            total_server_requests([])
        with pytest.raises(ValueError):
            average_round_trips([])
        with pytest.raises(ValueError):
            batched_request_reduction([])
