"""Unit tests for the adversary background-knowledge model."""

import pytest

from repro.attacks.background import BackgroundKnowledge
from repro.errors import UnknownTermError
from repro.text.analysis import DocumentStats


def _doc(doc_id, counts):
    return DocumentStats.from_counts(doc_id, counts)


@pytest.fixture(scope="module")
def background():
    return BackgroundKnowledge.from_documents(
        [
            _doc("d1", {"common": 5, "rare": 1, "filler": 4}),
            _doc("d2", {"common": 2, "filler": 8}),
            _doc("d3", {"common": 1, "filler": 9}),
        ]
    )


class TestConstruction:
    def test_priors_are_normalized_df(self, background):
        assert background.prior("common") == pytest.approx(1.0)
        assert background.prior("rare") == pytest.approx(1 / 3)

    def test_unknown_term_raises(self, background):
        with pytest.raises(UnknownTermError):
            background.prior("zzz")
        with pytest.raises(UnknownTermError):
            background.score_samples("zzz")

    def test_samples_sorted(self, background):
        samples = background.score_samples("common")
        assert samples == sorted(samples)
        assert len(samples) == 3

    def test_empty_priors_rejected(self):
        with pytest.raises(ValueError):
            BackgroundKnowledge(priors={}, score_samples={})

    def test_has_samples(self, background):
        assert background.has_samples("rare")
        assert not background.has_samples("zzz")


class TestLikelihood:
    def test_own_distribution_scores_higher(self, background):
        common_scores = background.score_samples("common")
        ll_own = background.score_log_likelihood("common", common_scores)
        ll_other = background.score_log_likelihood("rare", common_scores)
        assert ll_own > ll_other

    def test_finite_for_outliers(self, background):
        ll = background.score_log_likelihood("common", [0.999])
        assert ll > float("-inf")
