"""Tests for the score-distribution attack — the §6.2 claim in miniature:
the attack beats chance on plain normalized-TF scores and collapses to
chance on TRS values."""

import numpy as np
import pytest

from repro.attacks.background import BackgroundKnowledge
from repro.attacks.score_distribution import (
    ScoreDistributionAttack,
    chance_attribution_level,
    element_attribution_accuracy,
    identification_accuracy,
)
from repro.core.rstf import RstfTrainer, TrainerConfig


@pytest.fixture(scope="module")
def synthetic_world():
    """Three terms with distinct score distributions + reference samples.

    Returns (background, observed_by_term): observations drawn from the
    same distributions as the references but with an independent seed —
    the realistic case where the adversary's corpus resembles the indexed
    one without being identical.
    """
    rng_ref = np.random.default_rng(10)
    rng_obs = np.random.default_rng(20)
    dists = {
        "head": lambda r, n: r.beta(1.5, 30, n),   # stopword-like, low scores
        "body": lambda r, n: r.beta(3, 12, n),     # topical mid-frequency
        "tail": lambda r, n: r.beta(6, 6, n),      # specific, high scores
    }
    priors = {"head": 0.9, "body": 0.3, "tail": 0.05}
    references = {t: f(rng_ref, 300).tolist() for t, f in dists.items()}
    observed = {t: f(rng_obs, 200).tolist() for t, f in dists.items()}
    background = BackgroundKnowledge(priors=priors, score_samples=references)
    return background, observed


class TestListIdentification:
    def test_plain_scores_identified(self, synthetic_world):
        background, observed = synthetic_world
        accuracy = identification_accuracy(observed, background)
        assert accuracy == 1.0  # three cleanly separated distributions

    def test_trs_defeats_identification(self, synthetic_world):
        background, observed = synthetic_world
        trainer = RstfTrainer(TrainerConfig(sigma_strategy="heuristic"))
        model = trainer.train_from_scores(
            {t: background.score_samples(t) for t in observed}
        )
        transformed = {
            t: model.get(t).transform(np.asarray(s)).tolist()
            for t, s in observed.items()
        }
        # After the RSTF every list looks Uniform[0,1]: KS distances to all
        # references are equal up to noise, so accuracy ~ chance (1/3).
        accuracy = identification_accuracy(transformed, background)
        assert accuracy <= 2 / 3

    def test_empty_observation_rejected(self, synthetic_world):
        background, _ = synthetic_world
        attack = ScoreDistributionAttack(background)
        with pytest.raises(ValueError):
            attack.identify([], ["head"])

    def test_identify_returns_none_without_candidates(self, synthetic_world):
        background, observed = synthetic_world
        attack = ScoreDistributionAttack(background)
        assert attack.identify(observed["head"], ["unknown-term"]) is None


class TestElementAttribution:
    def _merged(self, observed, terms, rng):
        labelled = [
            (score, term) for term in terms for score in observed[term]
        ]
        rng.shuffle(labelled)
        return labelled

    def test_plain_scores_beaten_only_by_distribution_gap(self, synthetic_world):
        background, observed = synthetic_world
        rng = np.random.default_rng(30)
        labelled = self._merged(observed, ["head", "tail"], rng)
        accuracy = element_attribution_accuracy(
            labelled, ["head", "tail"], background
        )
        chance = chance_attribution_level(["head", "tail"], labelled)
        assert accuracy > chance + 0.15  # the merge is undone

    def test_attribute_elements_shape(self, synthetic_world):
        background, observed = synthetic_world
        attack = ScoreDistributionAttack(background)
        guesses = attack.attribute_elements(
            observed["head"][:10], ["head", "tail"]
        )
        assert len(guesses) == 10
        assert set(guesses) <= {"head", "tail"}

    def test_trs_reduces_attribution_to_prior(self, synthetic_world):
        background, observed = synthetic_world
        trainer = RstfTrainer(TrainerConfig(sigma_strategy="heuristic"))
        model = trainer.train_from_scores(
            {t: background.score_samples(t) for t in observed}
        )
        transformed = {
            t: model.get(t).transform(np.asarray(s)).tolist()
            for t, s in observed.items()
        }
        # Adversary knows only the TRS values; her references transformed
        # through the same public RSTFs are all ~Uniform[0,1].
        trs_background = BackgroundKnowledge(
            priors={"head": 0.9, "tail": 0.05},
            score_samples={
                t: model.get(t).transform(
                    np.asarray(background.score_samples(t))
                ).tolist()
                for t in ("head", "tail")
            },
        )
        rng = np.random.default_rng(31)
        labelled = self._merged(transformed, ["head", "tail"], rng)
        accuracy = element_attribution_accuracy(
            labelled, ["head", "tail"], trs_background
        )
        chance = chance_attribution_level(["head", "tail"], labelled)
        assert accuracy <= chance + 0.10  # no better than the prior guess

    def test_empty_list_rejected(self, synthetic_world):
        background, _ = synthetic_world
        with pytest.raises(ValueError):
            element_attribution_accuracy([], ["head"], background)
        with pytest.raises(ValueError):
            chance_attribution_level(["head"], [])
