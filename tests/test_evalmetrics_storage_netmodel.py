"""Unit tests for storage accounting (§6.3) and the network model (§6.6)."""

import pytest

from repro.evalmetrics.netmodel import COMPETITOR_RESPONSE_KB, NetworkModel
from repro.evalmetrics.storage import compare_storage


class TestStorage:
    def test_score_slots_equal(self, system, ordinary_index):
        report = compare_storage(ordinary_index, system.server)
        # §6.3: one score slot per element in both systems.
        assert report.score_slots_per_element_ordinary == pytest.approx(1.0)
        assert report.score_slots_per_element_zerber_r == pytest.approx(1.0)

    def test_same_element_counts(self, system, ordinary_index):
        report = compare_storage(ordinary_index, system.server)
        assert report.ordinary_elements == report.zerber_r_elements

    def test_no_ranking_overhead(self, system, ordinary_index):
        report = compare_storage(ordinary_index, system.server)
        assert report.ranking_overhead_bits_per_element == 0.0


class TestNetworkModel:
    MODEL = NetworkModel()

    def test_paper_constants_reproduced(self):
        # 85 elements/term @64 bits = 5440 bits ≈ 0.66 KB (paper: ~0.7 KB).
        assert self.MODEL.per_term_response_kb(85) == pytest.approx(0.664, abs=0.01)

    def test_snippets_kb(self):
        # 10 snippets * 250 B ≈ 2.44 KB (paper: ~2.5 KB).
        assert self.MODEL.snippets_kb(10) == pytest.approx(2.44, abs=0.01)

    def test_total_near_paper_3_5kb(self):
        # The paper reports ≈3.5 KB; its own components (0.7 KB * 2.4 terms
        # + 2.5 KB snippets) sum to ≈4.2 KB, so we assert the 3–4.5 KB band.
        total = self.MODEL.total_response_kb(85, 10)
        assert 3.0 < total < 4.5

    def test_queries_per_second_at_least_paper_750(self):
        # The paper quotes ~750 queries/s including processing overhead; a
        # pure link-bandwidth bound must be at least that.
        assert self.MODEL.queries_per_second(85) >= 750

    def test_modem_download_under_a_second(self):
        assert self.MODEL.modem_seconds(85, 10) < 1.0

    def test_comparison_table_zerber_wins(self):
        rows = dict(self.MODEL.comparison_table(85, 10))
        assert rows["Zerber+R"] < COMPETITOR_RESPONSE_KB["Google"]
        assert set(rows) == {"Zerber+R", "Google", "Altavista", "Yahoo"}

    def test_validation(self):
        with pytest.raises(ValueError):
            self.MODEL.per_term_response_kb(-1)
        with pytest.raises(ValueError):
            self.MODEL.snippets_kb(0)
        with pytest.raises(ValueError):
            self.MODEL.queries_per_second(0)
