"""Unit tests for the ordinary-search baseline wrapper."""

import pytest

from repro.baselines.ordinary import OrdinarySearchSystem


@pytest.fixture(scope="module")
def search(corpus):
    return OrdinarySearchSystem.build(corpus)


class TestQuery:
    def test_one_request_exactly_k(self, search, frequent_term):
        result = search.query(frequent_term, k=10)
        assert result.trace.num_requests == 1
        assert result.trace.elements_transferred == 10

    def test_efficiency_is_one(self, search, frequent_term):
        result = search.query(frequent_term, k=10)
        assert result.trace.query_efficiency() == pytest.approx(1.0)

    def test_rare_term_fewer_elements(self, search, rare_term):
        result = search.query(rare_term, k=10)
        assert result.trace.elements_transferred == 1
        assert len(result.hits) == 1

    def test_order_matches_index(self, search, frequent_term):
        expected = [
            e.doc_id for e in search.index.top_k(frequent_term, 5)
        ]
        assert search.query(frequent_term, k=5).doc_ids() == expected

    def test_invalid_k(self, search, frequent_term):
        with pytest.raises(ValueError):
            search.query(frequent_term, k=0)

    def test_multi_term_delegates(self, search, frequent_term, medium_term):
        results = search.query_multi([frequent_term, medium_term], k=5)
        assert len(results) <= 5
        scores = [s for _, s in results]
        assert scores == sorted(scores, reverse=True)
