"""Drift guards and targeted cases for the ``obs-discipline`` rule.

The checker mirrors the metric catalog statically (zlint imports nothing
from the runtime packages); these tests pin the mirror to the live
catalog and the stats-mirror counters to the live dataclasses, so either
side drifting fails CI instead of silently opening the namespace.
"""

import dataclasses

from repro.analysis import analyze_source
from repro.analysis.checkers.obs import CATALOG_METRIC_NAMES
from repro.core.replication import ReplicationStats
from repro.core.router import CoordinatorStats
from repro.core.views import ViewStats
from repro.obs.registry import (
    CATALOG_BY_NAME,
    COORDINATOR_STAT_FIELDS,
    REPLICATION_STAT_FIELDS,
    VIEW_STAT_FIELDS,
)


def _lint(source: str, module: str):
    return analyze_source(source, module=module, rules=["obs-discipline"])


class TestMirrorDriftGuards:
    def test_checker_mirror_matches_the_live_catalog(self):
        assert CATALOG_METRIC_NAMES == set(CATALOG_BY_NAME)

    def test_every_coordinator_stats_field_is_mirrored(self):
        fields = {f.name for f in dataclasses.fields(CoordinatorStats)}
        assert fields == set(COORDINATOR_STAT_FIELDS)
        for field in fields:
            assert f"coordinator_{field}_total" in CATALOG_BY_NAME

    def test_every_replication_stats_field_is_mirrored(self):
        fields = {f.name for f in dataclasses.fields(ReplicationStats)}
        # max_staleness_seen is a high-water mark -> mirrored as a gauge.
        assert fields == set(REPLICATION_STAT_FIELDS) | {"max_staleness_seen"}
        for field in REPLICATION_STAT_FIELDS:
            assert f"replication_{field}_total" in CATALOG_BY_NAME
        assert "replication_max_staleness" in CATALOG_BY_NAME

    def test_every_view_stats_field_is_mirrored(self):
        fields = {f.name for f in dataclasses.fields(ViewStats)}
        assert fields == set(VIEW_STAT_FIELDS)
        for field in fields:
            assert f"views_{field}_total" in CATALOG_BY_NAME


class TestCatalogNameSubRule:
    """The literal-name check applies outside repro.core too."""

    def test_undeclared_literal_name_fires(self):
        findings = _lint(
            "def wire(registry):\n"
            "    return registry.counter('made_up_total')\n",
            module="repro.obs.instruments",
        )
        assert [f.rule for f in findings] == ["obs-discipline"]
        assert "made_up_total" in findings[0].message

    def test_catalog_literal_is_clean(self):
        findings = _lint(
            "def wire(registry):\n"
            "    return registry.counter('cluster_reads_total')\n",
            module="repro.obs.instruments",
        )
        assert findings == []

    def test_dynamic_names_allowed_only_inside_repro_obs(self):
        source = (
            "def wire(registry, name):\n"
            "    return registry.histogram(name)\n"
        )
        assert _lint(source, module="repro.obs.instruments") == []
        findings = _lint(source, module="repro.persist.fixture_mod")
        assert [f.rule for f in findings] == ["obs-discipline"]
        assert "non-literal" in findings[0].message

    def test_bare_function_named_counter_is_not_instrument_creation(self):
        findings = _lint(
            "def counter(x):\n"
            "    return x\n"
            "def use():\n"
            "    return counter('anything')\n",
            module="repro.persist.fixture_mod",
        )
        assert findings == []


class TestCoreSubRules:
    def test_span_inside_with_is_sanctioned(self):
        findings = _lint(
            "def serve(tracer):\n"
            "    with tracer.span('serve') as span:\n"
            "        span.annotate(ok=True)\n",
            module="repro.core.fixture_mod",
        )
        assert findings == []

    def test_span_outside_with_fires_even_when_assigned(self):
        findings = _lint(
            "def serve(tracer):\n"
            "    span = tracer.span('serve')\n"
            "    return span\n",
            module="repro.core.fixture_mod",
        )
        assert [f.rule for f in findings] == ["obs-discipline"]

    def test_begin_and_end_trace_are_exempt(self):
        findings = _lint(
            "def session(tracer):\n"
            "    trace_id = tracer.begin_trace('query')\n"
            "    tracer.end_trace(trace_id)\n",
            module="repro.core.fixture_mod",
        )
        assert findings == []

    def test_rule_is_scoped(self):
        source = "print('telemetry by stdout')\n"
        assert _lint(source, module="repro.core.cluster")
        assert _lint(source, module="repro.cli") == []
        assert _lint(source, module="bare_fixture") == []
