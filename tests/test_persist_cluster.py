"""Crash-recovery tests for whole-cluster persistence (format v2).

The restart-amnesia contract: a cluster snapshotted mid-replication —
nonzero lag, paused followers, down servers, whatever — and reloaded
must (a) serve byte-identical PRIMARY-consistency results immediately,
and (b) converge every replica to the acknowledged (list-backed
reference) state through the *existing* catch-up machinery: resumed
followers drain their persisted backlog; one anti-entropy sweep bounds
the wait.  No acknowledged op may be lost across the restart.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cluster import ServerCluster
from repro.core.protocol import FetchRequest
from repro.crypto.keys import GroupKeyService
from repro.errors import ConfigurationError, UnavailableError
from repro.index.postings import EncryptedPostingElement
from repro.persist import load_cluster, save_cluster

NUM_LISTS = 3
NUM_SERVERS = 4
REPLICATION = 2

OPCODES = (
    "insert",
    "insert",
    "insert",
    "delete",
    "tick",
    "fail",
    "restore",
    "pause",
    "resume",
    "fetch",
)


def _keys():
    svc = GroupKeyService(master_secret=b"f" * 32)
    svc.register("u", {"g"})
    return svc


def _cluster(lag=2, **kwargs):
    return ServerCluster(
        _keys(),
        num_lists=NUM_LISTS,
        num_servers=NUM_SERVERS,
        replication=REPLICATION,
        lag=lag,
        **kwargs,
    )


class _Reference:
    """List-backed reference: the acknowledged state of every list."""

    def __init__(self):
        self.lists: dict[int, list[EncryptedPostingElement]] = {
            lid: [] for lid in range(NUM_LISTS)
        }

    def insert(self, list_id, element):
        self.lists[list_id].append(element)

    def delete(self, list_id, ciphertext):
        self.lists[list_id] = [
            e for e in self.lists[list_id] if e.ciphertext != ciphertext
        ]

    def expected_order(self, list_id):
        return [
            e.ciphertext
            for e in sorted(self.lists[list_id], key=lambda e: -e.trs)
        ]


def _run_ops(cluster, ops, ref=None, counter_start=0):
    """Drive the cluster; mirror acknowledged writes into the reference."""
    ref = ref if ref is not None else _Reference()
    receipts: list[tuple[int, bytes]] = []
    counter = counter_start
    for opcode, r in ops:
        if opcode == "insert":
            list_id = r % NUM_LISTS
            counter += 1
            element = EncryptedPostingElement(
                ciphertext=b"el-%05d" % counter,
                group="g",
                trs=(counter % 997) / 1000.0,
            )
            try:
                cluster.insert("u", list_id, element)
            except UnavailableError:
                continue
            ref.insert(list_id, element)
            receipts.append((list_id, element.ciphertext))
        elif opcode == "delete":
            if not receipts:
                continue
            list_id, ciphertext = receipts[r % len(receipts)]
            try:
                if cluster.delete_element("u", list_id, ciphertext):
                    ref.delete(list_id, ciphertext)
            except UnavailableError:
                continue
        elif opcode == "tick":
            cluster.replication_tick()
        elif opcode == "fail":
            cluster.fail_server(r % NUM_SERVERS)
        elif opcode == "restore":
            cluster.restore_server(r % NUM_SERVERS)
        elif opcode == "pause":
            cluster.pause_follower(r % NUM_SERVERS)
        elif opcode == "resume":
            cluster.resume_follower(r % NUM_SERVERS)
        elif opcode == "kill_primary":
            cluster.fail_server(cluster.replicas_of(r % NUM_LISTS)[0])
        elif opcode == "fetch":
            try:
                cluster.fetch(
                    FetchRequest(principal="u", list_id=r % NUM_LISTS, offset=0, count=5),
                    consistency="one",
                )
            except UnavailableError:
                continue
    return ref, counter


def _reload(cluster, tmp_path, name="cluster.json"):
    """Snapshot the cluster and recover it into a fresh key service."""
    path = tmp_path / name
    from repro.index.merge import MergePlan
    from repro.core.rstf import RstfModel

    plan = MergePlan(groups=tuple((f"t{i}",) for i in range(NUM_LISTS)), r=2.0)
    save_cluster(path, cluster, plan, RstfModel({}))
    restored, plan2, _ = load_cluster(path, _keys())
    assert plan2 == plan
    return restored, path


def _assert_converged(cluster, ref):
    """Heal everything, one anti-entropy sweep, compare every replica."""
    for server_index in range(NUM_SERVERS):
        cluster.restore_server(server_index)
        cluster.resume_follower(server_index)
    cluster.replication_manager.anti_entropy_sweep()
    assert cluster.replication_backlog() == {}, "sweep left stale replicas"
    for list_id in range(NUM_LISTS):
        expected = ref.expected_order(list_id)
        head = cluster.primary_version(list_id)
        for server_index in cluster.replicas_of(list_id):
            assert cluster.applied_version(list_id, server_index) == head
            got = [
                e.ciphertext
                for e in cluster.server(server_index).export_list(list_id)
            ]
            assert got == expected, (
                f"replica {server_index} of list {list_id} diverged"
            )


def _lagged_snapshot_cluster():
    """A deterministic mid-replication cluster: backlog + paused follower."""
    cluster = _cluster(lag=3, anti_entropy_every=50)
    ref = _Reference()
    paused = cluster.replicas_of(0)[1]
    cluster.pause_follower(paused)
    counter = 0
    for round_ in range(4):
        for list_id in range(NUM_LISTS):
            counter += 1
            element = EncryptedPostingElement(
                ciphertext=b"seed-%03d" % counter, group="g", trs=counter / 100.0
            )
            cluster.insert("u", list_id, element)
            ref.insert(list_id, element)
        cluster.replication_tick()
    return cluster, ref, paused


class TestLaggedSnapshotRecovery:
    def test_backlog_and_versions_survive_restart(self, tmp_path):
        cluster, ref, paused = _lagged_snapshot_cluster()
        before = cluster.replication_backlog()
        assert before, "scenario must snapshot mid-replication"
        versions_before = {
            lid: cluster.primary_version(lid) for lid in range(NUM_LISTS)
        }
        restored, _ = _reload(cluster, tmp_path)
        assert restored.replication_backlog() == before
        assert {
            lid: restored.primary_version(lid) for lid in range(NUM_LISTS)
        } == versions_before
        assert restored.replication_manager.is_paused(paused)
        assert restored.placement_table() == cluster.placement_table()
        assert restored.placement_epoch == cluster.placement_epoch
        for list_id in range(NUM_LISTS):
            for server_index in restored.replicas_of(list_id):
                assert restored.applied_version(
                    list_id, server_index
                ) == cluster.applied_version(list_id, server_index)
                assert restored.server(server_index).list_version(
                    list_id
                ) == cluster.server(server_index).list_version(list_id)

    def test_primary_reads_identical_after_restart(self, tmp_path):
        cluster, ref, _ = _lagged_snapshot_cluster()
        restored, _ = _reload(cluster, tmp_path)
        for list_id in range(NUM_LISTS):
            request = FetchRequest(
                principal="u", list_id=list_id, offset=0, count=10
            )
            original = cluster.fetch(request, consistency="primary")
            recovered = restored.fetch(request, consistency="primary")
            assert [e.ciphertext for e in recovered.elements] == [
                e.ciphertext for e in original.elements
            ]
            assert recovered.replica_version == original.replica_version
            assert [
                e.ciphertext for e in recovered.elements
            ] == ref.expected_order(list_id)[:10]

    def test_one_anti_entropy_sweep_converges_after_restart(self, tmp_path):
        cluster, ref, _ = _lagged_snapshot_cluster()
        restored, _ = _reload(cluster, tmp_path)
        _assert_converged(restored, ref)

    def test_paused_follower_backlog_drains_through_normal_ticks(self, tmp_path):
        """The persisted backlog converges through lag-driven delivery
        alone — recovery schedules it, ticks drain it."""
        cluster, ref, paused = _lagged_snapshot_cluster()
        restored, _ = _reload(cluster, tmp_path)
        restored.resume_follower(paused)
        ticks = restored.run_replication_until_quiet()
        assert restored.replication_backlog() == {}
        assert ticks > 0
        for list_id in range(NUM_LISTS):
            for server_index in restored.replicas_of(list_id):
                got = [
                    e.ciphertext
                    for e in restored.server(server_index).export_list(list_id)
                ]
                assert got == ref.expected_order(list_id)

    def test_writes_continue_past_restored_versions(self, tmp_path):
        cluster, ref, paused = _lagged_snapshot_cluster()
        restored, _ = _reload(cluster, tmp_path)
        head_before = restored.primary_version(0)
        element = EncryptedPostingElement(
            ciphertext=b"post-restart", group="g", trs=0.999
        )
        restored.insert("u", 0, element)
        ref.insert(0, element)
        assert restored.primary_version(0) == head_before + 1
        _assert_converged(restored, ref)

    def test_down_server_stays_down_after_restart(self, tmp_path):
        cluster, ref, _ = _lagged_snapshot_cluster()
        victim = cluster.replicas_of(1)[1]
        cluster.fail_server(victim)
        restored, _ = _reload(cluster, tmp_path)
        assert not restored.is_alive(victim)
        restored.restore_server(victim)
        _assert_converged(restored, ref)


class TestFuzzedCrashRecovery:
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(OPCODES), st.integers(0, 10**6)),
            max_size=80,
        ),
        lag=st.integers(0, 4),
        split=st.integers(0, 80),
    )
    @settings(max_examples=40, deadline=None)
    def test_snapshot_mid_soup_loses_no_acknowledged_op(self, ops, lag, split):
        """Crash at an arbitrary point of a fault soup: snapshot, reload,
        run the *rest* of the soup against the recovered cluster, heal,
        sweep once, and require exact convergence to the reference."""
        cluster = _cluster(lag=lag)
        ref, counter = _run_ops(cluster, ops[:split])
        with tempfile.TemporaryDirectory() as tmp:
            restored, _ = _reload(cluster, Path(tmp))
        ref, _ = _run_ops(restored, ops[split:], ref=ref, counter_start=counter)
        _assert_converged(restored, ref)

    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(OPCODES), st.integers(0, 10**6)),
            max_size=60,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_double_restart_is_stable(self, ops):
        """Snapshot → reload → snapshot → reload reproduces the same
        durable state (recovery is idempotent)."""
        cluster = _cluster(lag=3)
        ref, _ = _run_ops(cluster, ops)
        with tempfile.TemporaryDirectory() as tmp:
            once, path_a = _reload(cluster, Path(tmp), "a.json")
            twice, path_b = _reload(once, Path(tmp), "b.json")
            assert json.loads(path_a.read_text()) == json.loads(
                path_b.read_text()
            )
        assert twice.replication_backlog() == once.replication_backlog()
        _assert_converged(twice, ref)


class TestFailoverStatePersistence:
    """Promotion state (format-v2 extension) survives crash/restore."""

    def _elected(self):
        """A cluster snapshotted mid-failover: election done, victim down."""
        cluster = _cluster(lag=2, failover_after=2, write_consistency="quorum")
        ref = _Reference()
        counter = 0
        for list_id in range(NUM_LISTS):
            counter += 1
            element = EncryptedPostingElement(
                ciphertext=b"fo-%03d" % counter, group="g", trs=counter / 100.0
            )
            cluster.insert("u", list_id, element)
            ref.insert(list_id, element)
        cluster.run_replication_until_quiet()
        victim = cluster.replicas_of(0)[0]
        cluster.fail_server(victim)
        for _ in range(3):
            cluster.replication_tick()
        assert cluster.failover_history(), "scenario needs an election"
        return cluster, ref, victim

    def test_recovery_lands_on_elected_primary(self, tmp_path):
        cluster, ref, victim = self._elected()
        elected = cluster.replicas_of(0)[0]
        assert elected != victim
        restored, _ = _reload(cluster, tmp_path)
        assert restored.replicas_of(0)[0] == elected
        assert restored.failover_history() == cluster.failover_history()
        assert restored.unreachable_since() == cluster.unreachable_since()
        assert restored.write_consistency == cluster.write_consistency
        assert restored.failover_after == cluster.failover_after
        assert restored.placement_epoch == cluster.placement_epoch
        # The recovered cluster acknowledges writes at the elected
        # primary (the healed old primary counts toward W again).
        restored.restore_server(victim)
        element = EncryptedPostingElement(
            ciphertext=b"post-failover", group="g", trs=0.999
        )
        restored.insert("u", 0, element, consistency="quorum")
        ref.insert(0, element)
        assert restored.replicas_of(0)[0] == elected  # no flap-back
        _assert_converged(restored, ref)

    def test_pending_timer_survives_restart(self, tmp_path):
        """A restart taken mid-outage, before the election fired, must
        not reset the unreachability clock: the recovered cluster elects
        on schedule."""
        cluster = _cluster(lag=1, failover_after=3)
        victim = cluster.replicas_of(0)[0]
        cluster.fail_server(victim)
        cluster.replication_tick()  # timer starts, threshold not reached
        assert victim in cluster.unreachable_since()
        assert cluster.failover_history() == []
        restored, _ = _reload(cluster, tmp_path)
        assert restored.unreachable_since() == cluster.unreachable_since()
        restored.replication_tick()
        restored.replication_tick()
        restored.replication_tick()
        assert restored.failover_history(), "restored timer did not fire"
        assert restored.replicas_of(0)[0] != victim

    def test_plain_v2_dump_without_failover_keys_loads(self, tmp_path):
        """Dumps written before the consistency-matrix extension carry no
        write_consistency/failover keys; they must load with defaults."""
        cluster, _, _ = _lagged_snapshot_cluster()
        restored, path = _reload(cluster, tmp_path)
        payload = json.loads(path.read_text())
        payload["cluster"].pop("write_consistency", None)
        payload["cluster"].pop("failover", None)
        path.write_text(json.dumps(payload))
        old_style, _, _ = load_cluster(path, _keys())
        from repro.core.replication import WriteConsistency

        assert old_style.write_consistency is WriteConsistency.ONE
        assert old_style.failover_after is None
        assert old_style.failover_history() == []
        assert old_style.unreachable_since() == {}

    def test_unknown_timer_server_rejected(self, tmp_path):
        cluster, _, _ = self._elected()
        restored, path = _reload(cluster, tmp_path)
        payload = json.loads(path.read_text())
        payload["cluster"]["failover"]["unreachable_since"] = {"42": 1}
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="42"):
            load_cluster(path, _keys())

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(OPCODES + ("kill_primary", "tick", "tick")),
                st.integers(0, 10**6),
            ),
            max_size=80,
        ),
        split=st.integers(0, 80),
    )
    @settings(max_examples=40, deadline=None)
    def test_crash_point_fuzz_preserves_promotions(self, ops, split):
        """Crash at an arbitrary point of a failover-heavy soup: the
        recovered cluster keeps its elected primaries and audit trail,
        finishes the soup, and converges with no acknowledged op lost."""
        cluster = _cluster(lag=2, failover_after=2)
        ref, counter = _run_ops(cluster, ops[:split])
        placement_before = cluster.placement_table()
        history_before = cluster.failover_history()
        with tempfile.TemporaryDirectory() as tmp:
            restored, _ = _reload(cluster, Path(tmp))
        assert restored.placement_table() == placement_before
        assert restored.failover_history() == history_before
        ref, _ = _run_ops(restored, ops[split:], ref=ref, counter_start=counter)
        _assert_converged(restored, ref)


class TestViewSpill:
    def _warmed(self):
        cluster, ref, _ = _lagged_snapshot_cluster()
        # Converge first so the served views are fresh at snapshot time.
        for s in range(NUM_SERVERS):
            cluster.resume_follower(s)
        cluster.run_replication_until_quiet()
        for list_id in range(NUM_LISTS):
            cluster.fetch(
                FetchRequest(principal="u", list_id=list_id, offset=0, count=5)
            )
        return cluster, ref

    def test_restored_views_serve_without_rebuild(self, tmp_path):
        cluster, ref = self._warmed()
        restored, _ = _reload(cluster, tmp_path)
        stats = restored.view_stats()
        assert stats.warm_restores >= NUM_LISTS
        for list_id in range(NUM_LISTS):
            response = restored.fetch(
                FetchRequest(principal="u", list_id=list_id, offset=0, count=5)
            )
            assert [e.ciphertext for e in response.elements] == (
                ref.expected_order(list_id)[:5]
            )
        stats = restored.view_stats()
        assert stats.full_builds == 0, "warm restart paid a rebuild"
        assert stats.hits >= NUM_LISTS

    def test_spill_disabled_still_correct(self, tmp_path):
        cluster, ref = self._warmed()
        path = tmp_path / "cold.json"
        from repro.index.merge import MergePlan
        from repro.core.rstf import RstfModel

        plan = MergePlan(groups=tuple((f"t{i}",) for i in range(NUM_LISTS)), r=2.0)
        save_cluster(path, cluster, plan, RstfModel({}), spill_views=0)
        restored, _, _ = load_cluster(path, _keys())
        assert restored.view_stats().warm_restores == 0
        response = restored.fetch(
            FetchRequest(principal="u", list_id=0, offset=0, count=5)
        )
        assert [e.ciphertext for e in response.elements] == (
            ref.expected_order(0)[:5]
        )
        assert restored.view_stats().full_builds >= 1

    def test_misordered_spill_positions_are_skipped(self, tmp_path):
        """Reordered/duplicated positions mean a damaged spill: the view
        must be rebuilt from the list, never installed mis-ordered."""
        cluster, ref = self._warmed()
        path = tmp_path / "misordered.json"
        from repro.index.merge import MergePlan
        from repro.core.rstf import RstfModel

        plan = MergePlan(groups=tuple((f"t{i}",) for i in range(NUM_LISTS)), r=2.0)
        save_cluster(path, cluster, plan, RstfModel({}))
        payload = json.loads(path.read_text())
        for server_data in payload["cluster"]["servers"]:
            for view in server_data["views"]:
                view["positions"] = list(reversed(view["positions"]))
        path.write_text(json.dumps(payload))
        restored, _, _ = load_cluster(path, _keys())
        for list_id in range(NUM_LISTS):
            response = restored.fetch(
                FetchRequest(principal="u", list_id=list_id, offset=0, count=5)
            )
            assert [e.ciphertext for e in response.elements] == (
                ref.expected_order(list_id)[:5]
            ), "mis-ordered spill leaked into a served slice"

    def test_revocation_beats_warm_view(self, tmp_path):
        """A membership change between snapshot and restore must win:
        the spilled view may not serve under stale access rights."""
        cluster, _ = self._warmed()
        path = tmp_path / "revoked.json"
        from repro.index.merge import MergePlan
        from repro.core.rstf import RstfModel

        plan = MergePlan(groups=tuple((f"t{i}",) for i in range(NUM_LISTS)), r=2.0)
        save_cluster(path, cluster, plan, RstfModel({}))
        service = GroupKeyService(master_secret=b"f" * 32)
        service.register("u", set())  # same principal, no memberships
        restored, _, _ = load_cluster(path, service)
        response = restored.fetch(
            FetchRequest(principal="u", list_id=0, offset=0, count=5)
        )
        assert response.elements == ()


class TestCorruptClusterDumps:
    def _dump(self, tmp_path):
        cluster, _, _ = _lagged_snapshot_cluster()
        restored, path = _reload(cluster, tmp_path)
        return path

    def test_unknown_log_list_id_is_named(self, tmp_path):
        path = self._dump(tmp_path)
        payload = json.loads(path.read_text())
        logs = payload["cluster"]["replication_state"]["logs"]
        logs["99"] = logs.pop(next(iter(logs)))
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match=r"99"):
            load_cluster(path, _keys())

    def test_log_without_applied_versions(self, tmp_path):
        path = self._dump(tmp_path)
        payload = json.loads(path.read_text())
        state = payload["cluster"]["replication_state"]
        state["applied"].pop(next(iter(state["applied"])))
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="applied"):
            load_cluster(path, _keys())

    def test_op_missing_payload(self, tmp_path):
        path = self._dump(tmp_path)
        payload = json.loads(path.read_text())
        logs = payload["cluster"]["replication_state"]["logs"]
        entry = next(iter(logs.values()))
        assert entry["ops"], "scenario must retain log ops"
        entry["ops"][0].pop("e", None)
        entry["ops"][0].pop("c", None)
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match=str(path)):
            load_cluster(path, _keys())

    def test_gapped_log_run_rejected(self, tmp_path):
        path = self._dump(tmp_path)
        payload = json.loads(path.read_text())
        logs = payload["cluster"]["replication_state"]["logs"]
        entry = next(iter(logs.values()))
        assert entry["ops"], "scenario must retain log ops"
        del entry["ops"][0]
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="contiguous"):
            load_cluster(path, _keys())

    def test_view_record_missing_principal(self, tmp_path):
        cluster, _ = TestViewSpill()._warmed()
        restored, path = _reload(cluster, tmp_path)
        payload = json.loads(path.read_text())
        views = next(
            s["views"] for s in payload["cluster"]["servers"] if s["views"]
        )
        views[0].pop("principal")
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match=str(path)):
            load_cluster(path, _keys())

    def test_non_integer_paused_entry(self, tmp_path):
        path = self._dump(tmp_path)
        payload = json.loads(path.read_text())
        payload["cluster"]["replication_state"]["paused"] = ["two"]
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match=str(path)):
            load_cluster(path, _keys())

    def test_truncated_file_names_path(self, tmp_path):
        path = self._dump(tmp_path)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(ConfigurationError, match=str(path)):
            load_cluster(path, _keys())

    def test_server_dump_rejected_by_load_cluster(self, tmp_path):
        from repro.persist import save_index
        from repro.core.server import ZerberRServer
        from repro.index.merge import MergePlan
        from repro.core.rstf import RstfModel

        path = tmp_path / "server.json"
        save_index(
            path,
            ZerberRServer(_keys(), num_lists=2),
            MergePlan(groups=(("a",), ("b",)), r=2.0),
            RstfModel({}),
        )
        with pytest.raises(ConfigurationError, match="load_index"):
            load_cluster(path, _keys())
