"""Shared fixtures: small deterministic corpora and assembled systems.

Session-scoped where construction is expensive; tests must not mutate the
shared systems (tests that insert or otherwise mutate build their own).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import OrdinaryInvertedIndex, SystemConfig, ZerberRSystem
from repro.corpus import tiny_corpus
from repro.corpus.synthetic import SyntheticCorpusConfig, SyntheticCorpusGenerator


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def corpus():
    """The standard small test corpus (60 docs, 4 groups)."""
    return tiny_corpus()


@pytest.fixture(scope="session")
def micro_corpus():
    """An even smaller corpus for expensive per-test construction."""
    config = SyntheticCorpusConfig(
        num_documents=25,
        vocabulary_size=150,
        num_groups=3,
        topic_vocabulary_size=30,
        doc_length_median=50.0,
        doc_length_sigma=0.4,
        min_doc_length=10,
        max_doc_length=200,
        seed=99,
        name="micro",
    )
    return SyntheticCorpusGenerator(config).generate()


@pytest.fixture(scope="session")
def ordinary_index(corpus):
    return OrdinaryInvertedIndex.from_documents(corpus.all_stats())


@pytest.fixture(scope="session")
def system(corpus):
    """A fully indexed Zerber+R system over the test corpus (read-only!)."""
    return ZerberRSystem.build(corpus, SystemConfig(r=4.0, seed=5))


@pytest.fixture(scope="session")
def frequent_term(ordinary_index):
    """A high-df term of the test corpus."""
    return ordinary_index.vocabulary.terms_by_frequency()[0]


@pytest.fixture(scope="session")
def medium_term(ordinary_index):
    """A mid-df term (df >= 5) of the test corpus."""
    terms = ordinary_index.vocabulary.terms_by_frequency()
    return terms[len(terms) // 4]


@pytest.fixture(scope="session")
def rare_term(ordinary_index):
    """A df==1 term of the test corpus."""
    vocab = ordinary_index.vocabulary
    for term in reversed(vocab.terms_by_frequency()):
        if vocab.document_frequency(term) == 1:
            return term
    raise RuntimeError("test corpus has no df==1 term")
