"""Unit tests for group key management and access control."""

import pytest

from repro.crypto.keys import GroupKeyService
from repro.errors import AccessDeniedError, ConfigurationError


@pytest.fixture()
def service():
    svc = GroupKeyService(master_secret=b"m" * 32)
    svc.create_group("g1")
    svc.create_group("g2")
    svc.register("alice", {"g1"})
    svc.register("bob", {"g1", "g2"})
    return svc


class TestGroups:
    def test_groups_listed(self, service):
        assert service.groups() == {"g1", "g2"}

    def test_duplicate_group_rejected(self, service):
        with pytest.raises(ConfigurationError):
            service.create_group("g1")

    def test_ensure_group_idempotent(self, service):
        service.ensure_group("g1")
        service.ensure_group("g3")
        assert "g3" in service.groups()

    def test_short_master_secret_rejected(self):
        with pytest.raises(ConfigurationError):
            GroupKeyService(master_secret=b"tiny")


class TestPrincipals:
    def test_membership(self, service):
        assert service.is_member("alice", "g1")
        assert not service.is_member("alice", "g2")

    def test_unknown_principal_not_member(self, service):
        assert not service.is_member("mallory", "g1")

    def test_duplicate_principal_rejected(self, service):
        with pytest.raises(ConfigurationError):
            service.register("alice")

    def test_register_creates_groups_on_demand(self, service):
        service.register("carol", {"brand-new"})
        assert service.is_member("carol", "brand-new")

    def test_enroll_and_revoke(self, service):
        service.enroll("alice", "g2")
        assert service.is_member("alice", "g2")
        service.revoke("alice", "g2")
        assert not service.is_member("alice", "g2")

    def test_enroll_unknown_principal(self, service):
        with pytest.raises(ConfigurationError):
            service.enroll("nobody", "g1")

    def test_memberships(self, service):
        assert service.memberships("bob") == {"g1", "g2"}


class TestKeyHandout:
    def test_member_gets_key(self, service):
        key = service.group_key("alice", "g1")
        assert len(key) == 32

    def test_non_member_denied(self, service):
        with pytest.raises(AccessDeniedError):
            service.group_key("alice", "g2")

    def test_same_key_for_all_members(self, service):
        assert service.group_key("alice", "g1") == service.group_key("bob", "g1")

    def test_different_groups_different_keys(self, service):
        assert service.group_key("bob", "g1") != service.group_key("bob", "g2")

    def test_deterministic_across_instances(self):
        a = GroupKeyService(master_secret=b"s" * 32)
        a.register("u", {"g"})
        b = GroupKeyService(master_secret=b"s" * 32)
        b.register("u", {"g"})
        assert a.group_key("u", "g") == b.group_key("u", "g")

    def test_cipher_for_member(self, service):
        cipher = service.cipher_for("alice", "g1")
        nonce = b"n" * 16
        assert cipher.decrypt(cipher.encrypt(b"x", nonce)) == b"x"

    def test_cipher_for_non_member_denied(self, service):
        with pytest.raises(AccessDeniedError):
            service.cipher_for("alice", "g2")

    def test_cipher_for_is_cached(self, service):
        assert service.cipher_for("alice", "g1") is service.cipher_for(
            "alice", "g1"
        )

    def test_cipher_cache_does_not_outlive_revocation(self, service):
        service.cipher_for("bob", "g2")  # warm the cache
        service.revoke("bob", "g2")
        with pytest.raises(AccessDeniedError):
            service.cipher_for("bob", "g2")
        # Re-enrolling restores access and yields a working cipher again.
        service.enroll("bob", "g2")
        cipher = service.cipher_for("bob", "g2")
        nonce = b"n" * 16
        assert cipher.decrypt(cipher.encrypt(b"x", nonce)) == b"x"

    def test_cached_ciphers_interoperate_across_members(self, service):
        nonce = b"n" * 16
        ciphertext = service.cipher_for("alice", "g1").encrypt(b"shared", nonce)
        assert service.cipher_for("bob", "g1").decrypt(ciphertext) == b"shared"

    def test_unseen_term_prf_is_cached(self, service):
        assert service.unseen_term_prf("alice", "g1") is service.unseen_term_prf(
            "alice", "g1"
        )

    def test_unseen_term_prf_cache_does_not_outlive_revocation(self, service):
        service.unseen_term_prf("bob", "g2")
        service.revoke("bob", "g2")
        with pytest.raises(AccessDeniedError):
            service.unseen_term_prf("bob", "g2")

    def test_nonce_sequence_is_singleton_per_member(self, service):
        """Two lookups share one counter — nonces never restart at 0."""
        a = service.nonce_sequence("alice", "g1")
        first = a.next()
        b = service.nonce_sequence("alice", "g1")
        assert b is a
        assert b.next() != first

    def test_nonce_sequence_member_and_group_separated(self, service):
        assert service.nonce_sequence("alice", "g1") is not service.nonce_sequence(
            "bob", "g1"
        )
        assert service.nonce_sequence("bob", "g1") is not service.nonce_sequence(
            "bob", "g2"
        )

    def test_nonce_sequence_requires_membership(self, service):
        with pytest.raises(AccessDeniedError):
            service.nonce_sequence("alice", "g2")

    def test_nonce_sequence_denied_after_revocation(self, service):
        before = service.nonce_sequence("bob", "g2")
        before.next()
        service.revoke("bob", "g2")
        with pytest.raises(AccessDeniedError):
            service.nonce_sequence("bob", "g2")
        # Re-enrolling resumes the counter rather than restarting it.
        service.enroll("bob", "g2")
        after = service.nonce_sequence("bob", "g2")
        assert after is before

    def test_unseen_term_prf_shared_within_group(self, service):
        prf_a = service.unseen_term_prf("alice", "g1")
        prf_b = service.unseen_term_prf("bob", "g1")
        assert prf_a.evaluate_unit(b"term") == prf_b.evaluate_unit(b"term")

    def test_unseen_term_prf_group_separated(self, service):
        prf_1 = service.unseen_term_prf("bob", "g1")
        prf_2 = service.unseen_term_prf("bob", "g2")
        assert prf_1.evaluate_unit(b"term") != prf_2.evaluate_unit(b"term")
