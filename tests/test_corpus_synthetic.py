"""Tests for the synthetic corpus generator — including the distributional
shape claims the Fig. 4/5 substitution rests on."""

import numpy as np
import pytest

from repro.corpus.synthetic import (
    SyntheticCorpusConfig,
    SyntheticCorpusGenerator,
    odp_like,
    studip_like,
    tiny_corpus,
)
from repro.stats.distributions import fit_power_law
from repro.text.vocabulary import Vocabulary


class TestConfigValidation:
    def test_defaults_valid(self):
        SyntheticCorpusConfig()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"num_documents": 0},
            {"vocabulary_size": 1},
            {"num_groups": 0},
            {"num_groups": 10_000},
            {"topic_vocabulary_size": 0},
            {"topic_weight": 1.0},
            {"min_doc_length": 0},
            {"max_doc_length": 5},
        ],
    )
    def test_invalid_configs_rejected(self, overrides):
        base = dict(num_documents=50, vocabulary_size=100, min_doc_length=10)
        base.update(overrides)
        with pytest.raises(ValueError):
            SyntheticCorpusConfig(**base)


class TestGeneration:
    @pytest.fixture(scope="class")
    def corpus(self):
        return tiny_corpus(seed=8)

    def test_document_count(self, corpus):
        assert len(corpus) == 60

    def test_deterministic(self):
        a = tiny_corpus(seed=5)
        b = tiny_corpus(seed=5)
        assert a.stats(a.doc_ids()[0]).counts == b.stats(b.doc_ids()[0]).counts

    def test_seed_changes_output(self):
        a = tiny_corpus(seed=5)
        b = tiny_corpus(seed=6)
        assert any(
            a.stats(i).counts != b.stats(i).counts
            for i in a.doc_ids()
            if i in b
        )

    def test_lengths_within_bounds(self, corpus):
        for doc_id in corpus.doc_ids():
            assert 10 <= corpus.stats(doc_id).length <= 400

    def test_groups_assigned(self, corpus):
        assert corpus.groups() <= {f"group-{i:03d}" for i in range(4)}

    def test_counts_positive(self, corpus):
        for doc_id in corpus.doc_ids():
            assert all(c > 0 for c in corpus.stats(doc_id).counts.values())


class TestDistributionalShape:
    """The substitution criteria of DESIGN.md §4."""

    @pytest.fixture(scope="class")
    def corpus(self):
        return studip_like(num_documents=400, vocabulary_size=4000, seed=21)

    @pytest.fixture(scope="class")
    def vocabulary(self, corpus):
        return Vocabulary.from_documents(corpus.all_stats())

    def test_df_head_is_zipf_like(self, vocabulary):
        dfs = sorted(
            (vocabulary.document_frequency(t) for t in vocabulary), reverse=True
        )
        ranks = np.arange(1, min(len(dfs), 200) + 1, dtype=float)
        fit = fit_power_law(ranks, np.array(dfs[:200], dtype=float))
        assert fit.slope < -0.1  # decreasing
        assert fit.r_squared > 0.7  # roughly linear in log-log

    def test_raw_tf_power_law_for_frequent_term(self, corpus, vocabulary):
        term = vocabulary.terms_by_frequency()[0]
        tfs = [
            corpus.stats(d).tf(term)
            for d in corpus.doc_ids()
            if corpus.stats(d).tf(term) > 0
        ]
        values, counts = np.unique(tfs, return_counts=True)
        assert len(values) >= 5
        fit = fit_power_law(values.astype(float), counts.astype(float))
        assert fit.slope < -0.3  # heavy-tailed, decreasing in log-log

    def test_frequent_vs_rare_df_separation(self, vocabulary):
        ordered = vocabulary.terms_by_frequency()
        frequent_df = vocabulary.document_frequency(ordered[0])
        rare_df = vocabulary.document_frequency(ordered[-1])
        assert frequent_df > 20 * max(rare_df, 1)


class TestPresets:
    def test_studip_like_shape(self):
        corpus = studip_like(num_documents=100, vocabulary_size=1000, num_groups=5)
        assert len(corpus) == 100
        assert corpus.name == "studip"

    def test_odp_like_shape(self):
        corpus = odp_like(num_documents=100, vocabulary_size=1000, num_groups=10)
        assert len(corpus) == 100
        assert corpus.name == "odp"

    def test_odp_docs_longer_on_average(self):
        studip = studip_like(num_documents=150, vocabulary_size=1500, num_groups=5)
        odp = odp_like(num_documents=150, vocabulary_size=1500, num_groups=5)
        mean_studip = np.mean([studip.stats(d).length for d in studip.doc_ids()])
        mean_odp = np.mean([odp.stats(d).length for d in odp.doc_ids()])
        assert mean_odp > mean_studip
